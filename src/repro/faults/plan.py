"""Scripted, counted fault injection for the shard backends.

The harness is deliberately dumb: a :class:`FaultPlan` holds an ordered
list of :class:`Fault` records, each keyed to a hook *site* (``dispatch``
or ``gather``), an optional shard filter, and an occurrence window — the
fault fires on matching events number ``after + 1`` through
``after + times``, counted per fault. Backends call the two hooks only
when a plan is bound (``if self._fault_plan is not None:``), so the
absent-plan cost is one attribute test.

Actions:

* ``raise`` — the hook raises the configured exception before the real
  I/O happens (e.g. a dispatch that fails with ``BrokenPipeError``),
* ``kill`` — the hook returns ``"kill"`` and the backend murders the
  shard worker *after* delivering the message, so "kill worker k after
  batch N" leaves the worker dead with batch N applied,
* ``delay`` — the hook invokes the plan's ``sleep`` for the configured
  seconds before the gather; with an injected fake sleep this advances a
  fake clock past a supervision deadline without any real waiting.

Plans round-trip through JSON (:meth:`FaultPlan.to_spec` /
:meth:`FaultPlan.from_spec`) so the CLI can load one from the
``REPRO_FAULT_PLAN`` environment variable (inline JSON or a file path)
inside a serve subprocess — that is how the CI chaos job scripts a
worker kill mid-stream.
"""

from __future__ import annotations

import builtins
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Tuple

__all__ = ["Fault", "FaultPlan", "tear_journal_tail"]

_SITES = ("dispatch", "gather")
_ACTIONS = ("raise", "kill", "delay")


@dataclass
class Fault:
    """One scripted failure: where, what, and on which occurrences."""

    site: str
    action: str
    shard: Optional[int] = None
    after: int = 0
    times: int = 1
    operation: Optional[str] = None
    exception: type = BrokenPipeError
    seconds: float = 0.0
    seen: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.site not in _SITES:
            raise ValueError(f"unknown fault site {self.site!r}; expected one of {_SITES}")
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; expected one of {_ACTIONS}")
        if self.after < 0 or self.times < 1:
            raise ValueError("fault occurrence window must have after >= 0 and times >= 1")
        if not (isinstance(self.exception, type) and issubclass(self.exception, BaseException)):
            raise ValueError(f"fault exception must be an exception type, got {self.exception!r}")
        if self.seconds < 0:
            raise ValueError("fault delay seconds must be >= 0")

    def matches(self, shard: int, operation: Optional[str]) -> bool:
        if self.shard is not None and self.shard != shard:
            return False
        if self.operation is not None and self.operation != operation:
            return False
        return True

    def fires(self) -> bool:
        """Count one matching event; True when it falls in the window."""
        self.seen += 1
        return self.after < self.seen <= self.after + self.times

    def to_spec(self) -> dict:
        spec = {
            "site": self.site,
            "action": self.action,
            "after": self.after,
            "times": self.times,
        }
        if self.shard is not None:
            spec["shard"] = self.shard
        if self.operation is not None:
            spec["operation"] = self.operation
        if self.action == "raise":
            spec["exception"] = self.exception.__name__
        if self.action == "delay":
            spec["seconds"] = self.seconds
        return spec

    @classmethod
    def from_spec(cls, spec: dict) -> "Fault":
        exception = spec.get("exception", "BrokenPipeError")
        if isinstance(exception, str):
            resolved = getattr(builtins, exception, None)
            if not (isinstance(resolved, type) and issubclass(resolved, BaseException)):
                raise ValueError(f"fault spec names unknown exception {exception!r}")
            exception = resolved
        return cls(
            site=spec["site"],
            action=spec["action"],
            shard=spec.get("shard"),
            after=int(spec.get("after", 0)),
            times=int(spec.get("times", 1)),
            operation=spec.get("operation"),
            exception=exception,
            seconds=float(spec.get("seconds", 0.0)),
        )


class FaultPlan:
    """An ordered script of :class:`Fault` records plus the hook API.

    The two hook methods are the whole backend-facing surface:

    * :meth:`on_dispatch` — called once per shard message send; raises
      the scripted exception for ``raise`` faults, returns ``"kill"``
      when the worker should be murdered after the send.
    * :meth:`on_gather` — called once per shard reply wait; applies
      ``delay`` faults via the plan's ``sleep`` and raises ``raise``
      faults scripted at the gather site.
    """

    def __init__(
        self,
        faults: Optional[List[Fault]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.faults: List[Fault] = list(faults or ())
        self.sleep = sleep
        self._log = None

    def bind_log(self, log) -> None:
        """Attach an event log; fired drills then document themselves
        (site, action, shard, operation, occurrence) so chaos runs can
        assert the injection → recovery trail on ``GET /logs``."""
        self._log = log

    def _log_fired(self, fault: Fault, shard: int,
                   operation: Optional[str]) -> None:
        if self._log is None:
            return
        self._log.emit(
            "fault_injected",
            level="warning",
            site=fault.site,
            action=fault.action,
            shard=shard,
            operation=operation,
            occurrence=fault.seen,
        )

    # -- chainable constructors -------------------------------------------

    def kill_worker(self, shard: int, after_batches: int = 1) -> "FaultPlan":
        """Kill ``shard``'s worker right after its ``after_batches``-th
        ingest dispatch is delivered (the batch is applied, then death)."""
        if after_batches < 1:
            raise ValueError("after_batches must be >= 1")
        self.faults.append(
            Fault(
                site="dispatch",
                action="kill",
                shard=shard,
                after=after_batches - 1,
                operation="ingest",
            )
        )
        return self

    def fail_dispatch(
        self,
        shard: Optional[int] = None,
        exception: type = BrokenPipeError,
        after: int = 0,
        times: int = 1,
        operation: Optional[str] = None,
    ) -> "FaultPlan":
        """Raise ``exception`` on matching dispatches ``after+1 ..
        after+times`` instead of sending."""
        self.faults.append(
            Fault(
                site="dispatch",
                action="raise",
                shard=shard,
                after=after,
                times=times,
                operation=operation,
                exception=exception,
            )
        )
        return self

    def fail_gather(
        self,
        shard: Optional[int] = None,
        exception: type = EOFError,
        after: int = 0,
        times: int = 1,
    ) -> "FaultPlan":
        """Raise ``exception`` while waiting on matching shard replies."""
        self.faults.append(
            Fault(site="gather", action="raise", shard=shard, after=after, times=times, exception=exception)
        )
        return self

    def delay_gather(
        self,
        shard: Optional[int] = None,
        seconds: float = 0.0,
        after: int = 0,
        times: int = 1,
    ) -> "FaultPlan":
        """Sleep ``seconds`` (via the plan's injected ``sleep``) before
        matching gathers — the deterministic way to breach a deadline."""
        self.faults.append(
            Fault(site="gather", action="delay", shard=shard, after=after, times=times, seconds=seconds)
        )
        return self

    # -- backend hooks ----------------------------------------------------

    def on_dispatch(self, shard: int, operation: str) -> Optional[str]:
        verdict = None
        for fault in self.faults:
            if fault.site != "dispatch" or not fault.matches(shard, operation):
                continue
            if not fault.fires():
                continue
            self._log_fired(fault, shard, operation)
            if fault.action == "raise":
                raise fault.exception(
                    f"injected {fault.exception.__name__} on {operation!r} dispatch to shard {shard}"
                )
            if fault.action == "kill":
                verdict = "kill"
        return verdict

    def on_gather(self, shard: int, operation: Optional[str] = None) -> None:
        for fault in self.faults:
            if fault.site != "gather" or not fault.matches(shard, operation):
                continue
            if not fault.fires():
                continue
            self._log_fired(fault, shard, operation)
            if fault.action == "delay":
                self.sleep(fault.seconds)
            elif fault.action == "raise":
                raise fault.exception(
                    f"injected {fault.exception.__name__} gathering from shard {shard}"
                )

    # -- bookkeeping ------------------------------------------------------

    def reset(self) -> None:
        """Rewind every fault's occurrence counter (new run, same script)."""
        for fault in self.faults:
            fault.seen = 0

    def fired(self) -> int:
        """Total matching events consumed by fault windows so far."""
        return sum(min(max(f.seen - f.after, 0), f.times) for f in self.faults)

    # -- (de)serialization ------------------------------------------------

    def to_spec(self) -> List[dict]:
        return [fault.to_spec() for fault in self.faults]

    @classmethod
    def from_spec(cls, spec, sleep: Callable[[float], None] = time.sleep) -> "FaultPlan":
        if not isinstance(spec, list):
            raise ValueError("a fault plan spec must be a JSON list of fault objects")
        return cls([Fault.from_spec(item) for item in spec], sleep=sleep)

    @classmethod
    def from_env(
        cls,
        variable: str = "REPRO_FAULT_PLAN",
        environ=os.environ,
    ) -> Optional["FaultPlan"]:
        """Load a plan from ``variable``: inline JSON (starts with ``[``)
        or a path to a JSON file. Returns None when unset/empty."""
        raw = environ.get(variable, "").strip()
        if not raw:
            return None
        if raw.startswith("["):
            return cls.from_spec(json.loads(raw))
        return cls.from_spec(json.loads(Path(raw).read_text("utf-8")))


def tear_journal_tail(directory, cut: int = 16) -> Tuple[Path, int]:
    """Truncate the newest ``engine-*.delta`` journal segment by ``cut``
    bytes, simulating a torn write (crash mid-append).

    The CRC framing in :mod:`repro.persistence.store` detects the damage
    and falls back to the longest verified prefix of the journal; the
    supervisor in turn replays the missing suffix from its operation log.
    Returns ``(path, new_size)``.
    """
    directory = Path(directory)
    segments = sorted(directory.glob("engine-*.delta"))
    if not segments:
        raise FileNotFoundError(f"no delta journal segments under {directory}")
    tail = segments[-1]
    size = tail.stat().st_size
    keep = max(size - int(cut), 1)
    with tail.open("rb+") as handle:
        handle.truncate(keep)
    return tail, keep
