"""Deterministic fault injection for the sharded execution backends.

A :class:`FaultPlan` is a script of failures — kill worker *k* after its
*N*-th batch, fail one dispatch with :class:`BrokenPipeError`, delay a
gather past the supervision deadline — threaded into the shard backends
behind a zero-overhead-when-absent hook (``backend.bind_fault_plan``).
The plan is counted, not timed: every trigger keys off how many times a
hook site has fired for a shard, so chaos tests replay identically with
no sleeps and no real clocks.
"""

from repro.faults.plan import (
    Fault,
    FaultPlan,
    tear_journal_tail,
)

__all__ = [
    "Fault",
    "FaultPlan",
    "tear_journal_tail",
]
