"""Stage (ii): correlation tracking over candidate tag pairs.

The tracker ingests the tagged document stream and maintains, within the
configured sliding window,

* per-tag document counts (feeding seed selection and the measures),
* per-pair co-occurrence counts,
* per-tag co-tag usage distributions (for the information-theoretic
  measure), and
* per-pair correlation histories sampled at every evaluation.

Candidate topics are the pairs that co-occurred inside the window and
contain at least one seed tag; only their correlations are computed, which
is the pruning argument of stage (i).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.correlation import CorrelationMeasure, JaccardCorrelation, PairCounts
from repro.core.types import TagPair
from repro.windows.aggregates import TagFrequencyWindow
from repro.windows.timeseries import TimeSeries


@dataclass(frozen=True)
class PairObservation:
    """The correlation of one candidate pair at one evaluation time."""

    pair: TagPair
    timestamp: float
    correlation: float
    counts: PairCounts
    seed_tag: str

    def __post_init__(self) -> None:
        if self.correlation < 0:
            raise ValueError("correlations are non-negative")


class CorrelationTracker:
    """Windowed tag/pair statistics plus per-pair correlation histories."""

    def __init__(
        self,
        window_horizon: float,
        measure: Optional[CorrelationMeasure] = None,
        min_pair_support: int = 2,
        history_length: int = 24,
        use_entities: bool = True,
        track_usage: bool = False,
    ):
        if window_horizon <= 0:
            raise ValueError("window_horizon must be positive")
        if min_pair_support < 1:
            raise ValueError("min_pair_support must be at least 1")
        if history_length < 2:
            raise ValueError("history_length must be at least 2")
        self.window_horizon = float(window_horizon)
        self.measure = measure or JaccardCorrelation()
        self.min_pair_support = int(min_pair_support)
        self.history_length = int(history_length)
        self.use_entities = bool(use_entities)
        self.track_usage = bool(track_usage)

        self._tag_window = TagFrequencyWindow(window_horizon)
        # Windowed pair co-occurrences: a deque of (timestamp, pairs-of-doc)
        # plus a running counter, evicted in lockstep with the tag window.
        self._pair_events: Deque[Tuple[float, Tuple[TagPair, ...]]] = deque()
        self._pair_counts: Counter = Counter()
        # Windowed co-tag usage per tag (only when the measure needs it).
        self._usage_events: Deque[Tuple[float, Tuple[Tuple[str, Tuple[str, ...]], ...]]] = deque()
        self._usage: Dict[str, Counter] = {}
        # Correlation histories per pair, appended at each evaluation.
        self._histories: Dict[TagPair, TimeSeries] = {}
        # Windowed tag-count history per tag (for the volatility seed criterion).
        self._count_history: Dict[str, List[int]] = {}
        self._documents_seen = 0
        self._latest: Optional[float] = None

    # -- ingestion ------------------------------------------------------------

    @property
    def documents_seen(self) -> int:
        return self._documents_seen

    @property
    def latest_timestamp(self) -> Optional[float]:
        return self._latest

    @property
    def tag_window(self) -> TagFrequencyWindow:
        return self._tag_window

    def observe(self, timestamp: float, tags: Iterable[str],
                entities: Iterable[str] = ()) -> None:
        """Ingest one document's tag (and entity) set."""
        if self._latest is not None and timestamp < self._latest:
            raise ValueError(
                f"out-of-order document: {timestamp} < {self._latest}"
            )
        effective: Set[str] = set(tags)
        if self.use_entities:
            effective |= {entity.lower() for entity in entities}
        effective = {tag for tag in effective if tag}
        self._tag_window.add_document(timestamp, effective)
        ordered = sorted(effective)
        pairs = tuple(
            TagPair(ordered[i], ordered[j])
            for i in range(len(ordered))
            for j in range(i + 1, len(ordered))
        )
        self._pair_events.append((timestamp, pairs))
        for pair in pairs:
            self._pair_counts[pair] += 1
        if self.track_usage:
            usage_update = tuple(
                (tag, tuple(t for t in ordered if t != tag)) for tag in ordered
            )
            self._usage_events.append((timestamp, usage_update))
            for tag, cotags in usage_update:
                counter = self._usage.setdefault(tag, Counter())
                for cotag in cotags:
                    counter[cotag] += 1
        self._documents_seen += 1
        self._latest = timestamp
        self._evict(timestamp)

    def advance_to(self, timestamp: float) -> None:
        """Move stream time forward without ingesting a document."""
        if self._latest is not None and timestamp < self._latest:
            raise ValueError(
                f"cannot advance backwards: {timestamp} < {self._latest}"
            )
        self._tag_window.advance_to(timestamp)
        self._latest = timestamp
        self._evict(timestamp)

    # -- windowed statistics ---------------------------------------------------

    def tag_count(self, tag: str) -> int:
        return self._tag_window.count(tag)

    def pair_count(self, pair: TagPair) -> int:
        return self._pair_counts.get(pair, 0)

    def document_count(self) -> int:
        return self._tag_window.document_count

    def candidate_pairs(self, seeds: Iterable[str]) -> List[Tuple[TagPair, str]]:
        """Pairs with enough windowed support that contain at least one seed.

        Returns ``(pair, seed_tag)`` tuples; when both tags are seeds the
        lexicographically smaller one is reported as the trigger.
        """
        seed_set = set(seeds)
        if not seed_set:
            return []
        candidates: List[Tuple[TagPair, str]] = []
        for pair, count in self._pair_counts.items():
            if count < self.min_pair_support:
                continue
            if pair.first in seed_set:
                candidates.append((pair, pair.first))
            elif pair.second in seed_set:
                candidates.append((pair, pair.second))
        candidates.sort(key=lambda item: item[0])
        return candidates

    def pair_counts_for(self, pair: TagPair) -> PairCounts:
        """The windowed counts driving the correlation of ``pair``."""
        return PairCounts(
            count_a=self.tag_count(pair.first),
            count_b=self.tag_count(pair.second),
            count_both=self.pair_count(pair),
            total_documents=self.document_count(),
        )

    def correlation(self, pair: TagPair) -> float:
        """Current correlation of ``pair`` under the configured measure."""
        counts = self.pair_counts_for(pair)
        usage_a = self._usage.get(pair.first) if self.track_usage else None
        usage_b = self._usage.get(pair.second) if self.track_usage else None
        return max(0.0, self.measure.value(counts, usage_a, usage_b))

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, timestamp: float, seeds: Iterable[str]) -> List[PairObservation]:
        """Sample the correlations of all candidate pairs at ``timestamp``.

        The observations are appended to the per-pair histories (bounded to
        ``history_length`` points) and returned for the shift detector.
        """
        self.advance_to(timestamp)
        self._record_count_history()
        observations: List[PairObservation] = []
        for pair, seed_tag in self.candidate_pairs(seeds):
            counts = self.pair_counts_for(pair)
            usage_a = self._usage.get(pair.first) if self.track_usage else None
            usage_b = self._usage.get(pair.second) if self.track_usage else None
            value = max(0.0, self.measure.value(counts, usage_a, usage_b))
            history = self._histories.setdefault(pair, TimeSeries())
            history.append(timestamp, value)
            self._trim_history(pair)
            observations.append(PairObservation(
                pair=pair, timestamp=timestamp, correlation=value,
                counts=counts, seed_tag=seed_tag,
            ))
        return observations

    def history(self, pair: TagPair) -> TimeSeries:
        """Correlation history of ``pair`` (empty series when never observed)."""
        return self._histories.get(pair, TimeSeries())

    def tracked_pairs(self) -> List[TagPair]:
        return sorted(self._histories)

    def count_history(self) -> Dict[str, List[int]]:
        """Windowed count history per tag (for the volatility seed selector)."""
        return {tag: list(values) for tag, values in self._count_history.items()}

    # -- internals ----------------------------------------------------------------

    def _record_count_history(self) -> None:
        snapshot = self._tag_window.snapshot()
        for tag, count in snapshot.items():
            self._count_history.setdefault(tag, []).append(count)
        # Tags absent from the window record an explicit zero so volatility
        # reflects disappearance as well as growth.
        for tag in list(self._count_history):
            if tag not in snapshot:
                self._count_history[tag].append(0)
            if len(self._count_history[tag]) > self.history_length:
                del self._count_history[tag][: -self.history_length]

    def _trim_history(self, pair: TagPair) -> None:
        history = self._histories[pair]
        if len(history) <= self.history_length:
            return
        trimmed = TimeSeries()
        for timestamp, value in list(history)[-self.history_length:]:
            trimmed.append(timestamp, value)
        self._histories[pair] = trimmed

    def _evict(self, now: float) -> None:
        cutoff = now - self.window_horizon
        while self._pair_events and self._pair_events[0][0] <= cutoff:
            _, pairs = self._pair_events.popleft()
            for pair in pairs:
                self._pair_counts[pair] -= 1
                if self._pair_counts[pair] <= 0:
                    del self._pair_counts[pair]
        while self._usage_events and self._usage_events[0][0] <= cutoff:
            _, usage_update = self._usage_events.popleft()
            for tag, cotags in usage_update:
                counter = self._usage.get(tag)
                if counter is None:
                    continue
                for cotag in cotags:
                    counter[cotag] -= 1
                    if counter[cotag] <= 0:
                        del counter[cotag]
                if not counter:
                    del self._usage[tag]
