"""Stage (ii): correlation tracking over candidate tag pairs.

The tracker ingests the tagged document stream and maintains, within the
configured sliding window,

* per-tag document counts (feeding seed selection and the measures),
* per-pair co-occurrence counts behind a tag→pairs postings index
  (:class:`~repro.core.candidates.CandidateIndex`), so candidate
  generation is a union over seed postings rather than a full scan,
* per-tag co-tag usage distributions (for the information-theoretic
  measure), and
* per-pair correlation histories sampled at every evaluation.

Candidate topics are the pairs that co-occurred inside the window and
contain at least one seed tag; only their correlations are computed, which
is the pruning argument of stage (i).

Tags and entities are normalised (stripped, lower-cased) here, at the
single choke point every ingestion path goes through, so direct tracker
callers and the :class:`~repro.core.engine.EnBlogue` façade agree on tag
identity.  ``observe_many`` ingests a chunk of documents with one eviction
pass and C-speed counter updates; it is the backbone of the engine's batch
path.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from itertools import islice
from typing import (
    TYPE_CHECKING, Deque, Dict, Iterable, List, Mapping, Optional, Tuple,
)

from repro.core import vectorized as _vectorized
from repro.core.candidates import CandidateIndex
from repro.core.correlation import CorrelationMeasure, JaccardCorrelation, PairCounts
from repro.core.types import TagPair, normalize_tag
from repro.persistence.codec import string_interner
from repro.persistence.snapshot import (
    SnapshotMismatchError, require_compatible, require_state,
)
from repro.windows.aggregates import TagFrequencyWindow
from repro.windows.striped import StripedCounter
from repro.windows.timeseries import TimeSeries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sketches.tier import SketchTier

#: One prepared document: ``(timestamp, tags, entities)``.
Observation = Tuple[float, Iterable[str], Iterable[str]]

_EMPTY_FROZENSET: frozenset = frozenset()

#: Bound on the tag-set decomposition memo; real streams draw from a small
#: vocabulary so the memo stays tiny, but an adversarial stream must not be
#: able to grow it without limit.
_DECOMPOSE_CACHE_LIMIT = 65536

#: How many of the oldest memo entries a full cache evicts at once.  An
#: eighth keeps the amortized eviction cost per insert negligible while
#: retaining 7/8 of the memo, so a vocabulary churn spike no longer
#: cold-starts decomposition for the whole stream the way the previous
#: clear-everything policy did; evicted-but-hot tag sets re-enter on
#: their next occurrence at the cost of one recomputation.
_DECOMPOSE_EVICT_BATCH = _DECOMPOSE_CACHE_LIMIT // 8


@dataclass(frozen=True)
class PairObservation:
    """The correlation of one candidate pair at one evaluation time."""

    pair: TagPair
    timestamp: float
    correlation: float
    counts: PairCounts
    seed_tag: str

    def __post_init__(self) -> None:
        if self.correlation < 0:
            raise ValueError("correlations are non-negative")


class DocumentDecomposer:
    """Normalise a document's tag/entity sets into (ordered tags, pairs).

    The one decomposition rule of the system, shared by the tracker and by
    the sharded coordinator (which must decompose each document exactly once
    before routing its pairs to shard workers).  Results are memoised when
    both inputs are frozensets (the shape every dataset and stream item
    produces), since the same tag combinations recur constantly within a
    stream.
    """

    def __init__(self, use_entities: bool = True):
        self.use_entities = bool(use_entities)
        self._cache: Dict[
            Tuple[frozenset, frozenset], Tuple[Tuple[str, ...], Tuple[TagPair, ...]]
        ] = {}

    def decompose(
        self, tags: Iterable[str], entities: Iterable[str] = ()
    ) -> Tuple[Tuple[str, ...], Tuple[TagPair, ...]]:
        key: Optional[Tuple[frozenset, frozenset]] = None
        if type(tags) is frozenset:
            if not entities:
                key = (tags, _EMPTY_FROZENSET)
            elif type(entities) is frozenset:
                key = (tags, entities)
            if key is not None:
                cached = self._cache.get(key)
                if cached is not None:
                    return cached
        effective = {normalize_tag(tag) for tag in tags}
        if self.use_entities:
            effective |= {normalize_tag(entity) for entity in entities}
        effective.discard("")
        ordered = tuple(sorted(effective))
        pairs = tuple(
            TagPair(ordered[i], ordered[j])
            for i in range(len(ordered))
            for j in range(i + 1, len(ordered))
        )
        if key is not None:
            if len(self._cache) >= _DECOMPOSE_CACHE_LIMIT:
                # FIFO partial eviction: drop the oldest batch instead of
                # clearing the memo wholesale.  dict iteration order is
                # insertion order, so the victims are the stalest entries.
                for stale in list(islice(self._cache, _DECOMPOSE_EVICT_BATCH)):
                    del self._cache[stale]
            self._cache[key] = (ordered, pairs)
        return ordered, pairs


def count_history_series(history_length: int) -> Deque[int]:
    """A fresh per-tag count series: a deque bounded to ``history_length``.

    The bound lives in the container so an append is the whole trim — no
    length check, no slice — which is what lets
    :func:`record_count_history` run in one pass over the tags.
    """
    return deque(maxlen=int(history_length))


def record_count_history(
    history: Dict[str, Deque[int]],
    snapshot: Mapping[str, int],
    history_length: int,
) -> None:
    """Fold one evaluation's per-tag count snapshot into ``history`` in place.

    Tags absent from the window record an explicit zero so volatility
    reflects disappearance as well as growth; each tag's series is a
    bounded :func:`count_history_series` deque, so the append itself trims
    to the last ``history_length`` points — the per-evaluation rescan that
    used to re-slice every tag's list is gone.  The single rule behind the
    volatility seed criterion, shared by the tracker and the sharded
    coordinator (whose global count history must evolve identically).
    """
    for tag, count in snapshot.items():
        series = history.get(tag)
        if series is None:
            series = history[tag] = count_history_series(history_length)
        series.append(count)
    for tag, series in history.items():
        if tag not in snapshot:
            series.append(0)


#: Journal event kinds: a document's ordered tag set (its pair list and
#: its tag-window entry are *derived* on apply — pairs are a pure function
#: of the sorted tags, so shipping them would double the payload and the
#: encode time of the hot cadence tick), versus a pre-decomposed pair
#: event from the sharded ingestion path.
_DELTA_DOC = 0
_DELTA_PAIRS = 1


@dataclass
class _TrackerDelta:
    """Everything a tracker appended since its last base snapshot/drain.

    The event buffer aliases the exact tuples the live deques hold
    (events are immutable), so recording costs one list append per
    document and preserves the interleaving of document- and pair-fed
    ingestion; the dirty-history map records how many points each sampled
    pair's correlation series gained — the drain ships exactly that tail,
    not the whole bounded ring.
    """

    events: List[Tuple[int, float, tuple]] = field(default_factory=list)
    usage_events: List[Tuple[float, Tuple[Tuple[str, Tuple[str, ...]], ...]]] = \
        field(default_factory=list)
    dirty_histories: Dict[TagPair, int] = field(default_factory=dict)
    count_rows: List[Dict[str, int]] = field(default_factory=list)


class CorrelationTracker:
    """Windowed tag/pair statistics plus per-pair correlation histories."""

    def __init__(
        self,
        window_horizon: float,
        measure: Optional[CorrelationMeasure] = None,
        min_pair_support: int = 2,
        history_length: int = 24,
        use_entities: bool = True,
        track_usage: bool = False,
        vectorize: Optional[bool] = None,
        counter_stripes: int = 1,
        tier: Optional["SketchTier"] = None,
    ):
        if window_horizon <= 0:
            raise ValueError("window_horizon must be positive")
        if min_pair_support < 1:
            raise ValueError("min_pair_support must be at least 1")
        if history_length < 2:
            raise ValueError("history_length must be at least 2")
        if counter_stripes < 1:
            raise ValueError("counter_stripes must be at least 1")
        self.window_horizon = float(window_horizon)
        self.measure = measure or JaccardCorrelation()
        self.history_length = int(history_length)
        self.use_entities = bool(use_entities)
        self.track_usage = bool(track_usage)
        self.counter_stripes = int(counter_stripes)
        # Batched sampling kernels: auto-detected (numpy present, measure
        # carries a bit-identical kernel) unless forced off.  Not a
        # structural parameter — snapshots restore across either path.
        self._vectorize_sampling = _vectorized.sampling_supported(
            self.measure, vectorize
        )

        # Optional sketch tier in front of the exact pair state: when set,
        # every document's pairs pass through its admission filter before
        # any exact statistic is touched, so cold pairs never occupy the
        # pair-event window or the postings index.
        self._tier = tier

        self._tag_window = TagFrequencyWindow(window_horizon)
        # Windowed pair co-occurrences: a deque of (timestamp, pairs-of-doc)
        # plus the postings index, evicted in lockstep with the tag window.
        self._pair_events: Deque[Tuple[float, Tuple[TagPair, ...]]] = deque()
        self._candidates = CandidateIndex(min_support=min_pair_support)
        # Windowed co-tag usage per tag (only when the measure needs it).
        # With counter_stripes > 1 each per-tag counter is MRV-striped so
        # concurrent writer threads do not serialize on one hot dict.
        self._usage_events: Deque[Tuple[float, Tuple[Tuple[str, Tuple[str, ...]], ...]]] = deque()
        self._usage: Dict[str, Mapping[str, int]] = {}
        # Correlation histories per pair, appended at each evaluation;
        # bounded ring buffers so long runs cannot grow them without limit.
        self._histories: Dict[TagPair, TimeSeries] = {}
        # Windowed tag-count history per tag (for the volatility seed
        # criterion); bounded deques, appended by record_count_history.
        self._count_history: Dict[str, Deque[int]] = {}
        # Delta recording (for journaled checkpoints); None when inactive.
        self._delta: Optional[_TrackerDelta] = None
        # Memoising decomposer: tag sets recur constantly in real streams,
        # and building the O(k²) pair tuple dominates ingestion when computed
        # from scratch per document.
        self._decomposer = DocumentDecomposer(use_entities=self.use_entities)
        self._documents_seen = 0
        self._latest: Optional[float] = None
        # Bumped on every history mutation (sampling, restore) so columnar
        # mirrors (vectorized.FusedEvaluator) can detect staleness lazily.
        self._history_epoch = 0

    # -- ingestion ------------------------------------------------------------

    @property
    def documents_seen(self) -> int:
        return self._documents_seen

    @property
    def latest_timestamp(self) -> Optional[float]:
        return self._latest

    @property
    def tag_window(self) -> TagFrequencyWindow:
        return self._tag_window

    @property
    def candidate_index(self) -> CandidateIndex:
        """The incremental seed-postings index behind candidate generation."""
        return self._candidates

    @property
    def tier(self):
        """The sketch admission tier, or ``None`` in exact mode."""
        return self._tier

    @property
    def sampling_path(self) -> str:
        """``"vectorized"`` or ``"scalar"`` — how :meth:`_sample` computes."""
        return "vectorized" if self._vectorize_sampling else "scalar"

    @property
    def history_epoch(self) -> int:
        """Monotone counter of history mutations (staleness detection)."""
        return self._history_epoch

    def note_history_mutation(self) -> None:
        """Record an external history mutation (bumps the epoch)."""
        self._history_epoch += 1

    @property
    def history_map(self) -> Dict[TagPair, TimeSeries]:
        """The live per-pair correlation histories (read-only; do not mutate)."""
        return self._histories

    @property
    def min_pair_support(self) -> int:
        """Support threshold for candidate pairs (mutable between evaluations)."""
        return self._candidates.min_support

    @min_pair_support.setter
    def min_pair_support(self, value: int) -> None:
        value = int(value)
        if value < 1:
            raise ValueError("min_pair_support must be at least 1")
        self._candidates.min_support = value

    def observe(self, timestamp: float, tags: Iterable[str],
                entities: Iterable[str] = ()) -> None:
        """Ingest one document's tag (and entity) set.

        Tags and entities are normalised (stripped, lower-cased) before any
        statistic is updated, so every ingestion path agrees on tag identity.
        """
        timestamp, ordered = self._ingest(timestamp, tags, entities)
        self._tag_window.add_document(timestamp, ordered, prepared=True)
        if self._delta is not None:
            self._delta.events.append((_DELTA_DOC, timestamp, ordered))
        self._evict(timestamp)

    def observe_many(self, observations: Iterable[Observation]) -> int:
        """Ingest a chunk of ``(timestamp, tags, entities)`` documents.

        The documents must be time-ordered (as within ``observe``); counter
        updates are batched and the window is evicted once at the end, which
        leaves the tracker in exactly the state that one ``observe`` call per
        document would have produced.  The whole chunk is validated *and*
        decomposed before any state is touched, so a rejected or malformed
        document leaves the tracker unchanged.  Returns the number of
        documents ingested.
        """
        prepared: List[Tuple[float, Tuple[str, ...], Tuple[TagPair, ...]]] = []
        all_pairs: List[TagPair] = []
        latest = self._latest
        for timestamp, tags, entities in observations:
            timestamp = float(timestamp)
            if latest is not None and timestamp < latest:
                raise ValueError(
                    f"out-of-order document: {timestamp} < {latest}"
                )
            latest = timestamp
            ordered, pairs = self._decompose(tags, entities)
            prepared.append((timestamp, ordered, pairs))
        if not prepared:
            return 0
        # Commit phase: nothing below can fail on malformed input.  Tier
        # admission runs here, per document in stream order, so a rejected
        # chunk leaves the sketches untouched too.
        track_usage = self.track_usage
        tier = self._tier
        buffer = self._delta
        for timestamp, ordered, pairs in prepared:
            if tier is not None and pairs:
                pairs = tier.filter_pairs(timestamp, pairs)
            all_pairs.extend(pairs)
            self._pair_events.append((timestamp, pairs))
            if buffer is not None:
                buffer.events.append((_DELTA_DOC, timestamp, ordered))
            if track_usage:
                self._record_usage(timestamp, ordered)
        self._documents_seen += len(prepared)
        self._latest = latest
        self._candidates.add_many(all_pairs)
        self._tag_window.add_documents(
            ((timestamp, ordered) for timestamp, ordered, _ in prepared),
            prepared=True,
        )
        self._evict(latest)
        return len(prepared)

    def observe_pair_events(
        self, events: Iterable[Tuple[float, Tuple[TagPair, ...]]]
    ) -> int:
        """Ingest pre-decomposed ``(timestamp, pairs)`` events.

        This is the pair-restricted ingestion path of the sharded engine: a
        coordinator decomposes each document once, routes every pair to the
        shard that owns it, and the shard's tracker ingests only its slice of
        the pair stream.  Tag-level statistics (the frequency window, usage
        distributions, count history) are *not* updated — in a sharded
        deployment those are global concerns answered by the coordinator and
        broadcast back at evaluation time via :meth:`sample_candidates`.

        Events must be time-ordered; the whole chunk is validated before any
        state is touched.  Returns the number of events ingested.
        """
        staged: List[Tuple[float, Tuple[TagPair, ...]]] = []
        all_pairs: List[TagPair] = []
        latest = self._latest
        for timestamp, pairs in events:
            timestamp = float(timestamp)
            if latest is not None and timestamp < latest:
                raise ValueError(
                    f"out-of-order pair event: {timestamp} < {latest}"
                )
            latest = timestamp
            staged.append((timestamp, pairs))
            all_pairs.extend(pairs)
        if not staged:
            return 0
        self._pair_events.extend(staged)
        if self._delta is not None:
            self._delta.events.extend(
                (_DELTA_PAIRS, timestamp, pairs)
                for timestamp, pairs in staged
            )
        self._documents_seen += len(staged)
        self._latest = latest
        self._candidates.add_many(all_pairs)
        self._tag_window.advance_to(latest)
        self._evict(latest)
        return len(staged)

    def advance_to(self, timestamp: float) -> None:
        """Move stream time forward without ingesting a document."""
        if self._latest is not None and timestamp < self._latest:
            raise ValueError(
                f"cannot advance backwards: {timestamp} < {self._latest}"
            )
        self._tag_window.advance_to(timestamp)
        self._latest = timestamp
        self._evict(timestamp)

    # -- windowed statistics ---------------------------------------------------

    def tag_count(self, tag: str) -> int:
        return self._tag_window.count(tag)

    def pair_count(self, pair: TagPair) -> int:
        return self._candidates.count(pair)

    def document_count(self) -> int:
        return self._tag_window.document_count

    def candidate_pairs(self, seeds: Iterable[str]) -> List[Tuple[TagPair, str]]:
        """Pairs with enough windowed support that contain at least one seed.

        Returns ``(pair, seed_tag)`` tuples; when both tags are seeds the
        lexicographically smaller one is reported as the trigger.  Answered
        from the postings index in time proportional to the seeds' postings,
        not the total number of live pairs.
        """
        return self._candidates.candidates(seeds)

    def pair_counts_for(self, pair: TagPair) -> PairCounts:
        """The windowed counts driving the correlation of ``pair``."""
        count_a = self.tag_count(pair.first)
        count_b = self.tag_count(pair.second)
        return PairCounts(
            count_a=count_a,
            count_b=count_b,
            # In exact mode the intersection can never exceed either tag
            # count (pair and tag windows evict under the same horizon);
            # a sketch tier's back-filled promotion can, so clamp to the
            # feasible region the measures are defined over.
            count_both=min(self.pair_count(pair), count_a, count_b),
            total_documents=self.document_count(),
            pair=pair,
        )

    def correlation(self, pair: TagPair) -> float:
        """Current correlation of ``pair`` under the configured measure."""
        counts = self.pair_counts_for(pair)
        usage_a = self._usage.get(pair.first) if self.track_usage else None
        usage_b = self._usage.get(pair.second) if self.track_usage else None
        return max(0.0, self.measure.value(counts, usage_a, usage_b))

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, timestamp: float, seeds: Iterable[str]) -> List[PairObservation]:
        """Sample the correlations of all candidate pairs at ``timestamp``.

        The observations are appended to the per-pair histories (bounded to
        ``history_length`` points) and returned for the shift detector.
        """
        self.advance_to(timestamp)
        self._record_count_history()
        return self._sample(
            timestamp, seeds, self._tag_window.counts,
            self._tag_window.document_count,
        )

    def sample_candidates(
        self,
        timestamp: float,
        seeds: Iterable[str],
        tag_counts: Mapping[str, int],
        total_documents: int,
    ) -> List[PairObservation]:
        """Sample candidate correlations against *externally supplied* counts.

        The scatter-gather entry point: a shard's tracker holds only its
        slice of the pair space, so the per-tag document counts and the total
        document count — global statistics — are broadcast by the
        coordinator alongside the seeds.  Advances (and evicts) this
        tracker's pair window to ``timestamp`` first; the tag-count history
        is *not* recorded (a global concern the coordinator owns).
        """
        self.advance_to(timestamp)
        return self._sample(timestamp, seeds, tag_counts, total_documents)

    def _sample(
        self,
        timestamp: float,
        seeds: Iterable[str],
        tag_counts: Mapping[str, int],
        total_documents: int,
    ) -> List[PairObservation]:
        if self._vectorize_sampling:
            return self._sample_vectorized(
                timestamp, seeds, tag_counts, total_documents
            )
        observations: List[PairObservation] = []
        # Local bindings for the per-pair loop: evaluation samples hundreds
        # of pairs per boundary, so attribute and method-call overhead shows.
        measure_value = self.measure.value
        track_usage = self.track_usage
        dirty = None if self._delta is None else self._delta.dirty_histories
        # Unsorted iteration: per-pair sampling is order-independent and the
        # ranking builder applies its own total order downstream.  The
        # postings entries carry the pair counts, so no lookups are needed.
        for pair, seed_tag, pair_count in self._candidates.iter_candidates(seeds):
            count_a = tag_counts.get(pair.first, 0)
            count_b = tag_counts.get(pair.second, 0)
            counts = PairCounts(
                count_a=count_a,
                count_b=count_b,
                # Exact tracking keeps count_both <= min(count_a, count_b)
                # by construction; a sketch tier's back-filled promotion
                # (sketched support, stamped at promotion time) can exceed
                # it, so clamp to the feasible region.
                count_both=min(pair_count, count_a, count_b),
                total_documents=total_documents,
                pair=pair,
            )
            usage_a = self._usage.get(pair.first) if track_usage else None
            usage_b = self._usage.get(pair.second) if track_usage else None
            value = max(0.0, measure_value(counts, usage_a, usage_b))
            history = self._histories.get(pair)
            if history is None:
                history = TimeSeries(maxlen=self.history_length)
                self._histories[pair] = history
            history.append(timestamp, value)
            if dirty is not None:
                dirty[pair] = dirty.get(pair, 0) + 1
            observations.append(PairObservation(
                pair=pair, timestamp=timestamp, correlation=value,
                counts=counts, seed_tag=seed_tag,
            ))
        self._history_epoch += 1
        return observations

    def _sample_vectorized(
        self,
        timestamp: float,
        seeds: Iterable[str],
        tag_counts: Mapping[str, int],
        total_documents: int,
    ) -> List[PairObservation]:
        """The measure kernel over the whole candidate set at once.

        Counts are validated and scored in batch; the per-candidate
        PairCounts/PairObservation construction and the history appends
        then replay the scalar loop with the kernel's values, which are
        bit-identical by construction (property-tested).
        """
        np = _vectorized.np
        candidates = self._candidates.iter_candidates(seeds)
        count = len(candidates)
        if count == 0:
            self._history_epoch += 1
            return []
        count_a = np.fromiter(
            (tag_counts.get(pair.first, 0) for pair, _, _ in candidates),
            dtype=np.int64, count=count,
        )
        count_b = np.fromiter(
            (tag_counts.get(pair.second, 0) for pair, _, _ in candidates),
            dtype=np.int64, count=count,
        )
        count_both = np.fromiter(
            (pair_count for _, _, pair_count in candidates),
            dtype=np.int64, count=count,
        )
        # Same clamp as the scalar loop: a sketch tier's back-filled
        # promotion can push the windowed pair count past a tag count.
        count_both = np.minimum(count_both, np.minimum(count_a, count_b))
        _vectorized.validate_pair_counts(
            candidates, count_a, count_b, count_both, total_documents
        )
        values = _vectorized.measure_candidates(
            self.measure, count_a, count_b, count_both, total_documents
        ).tolist()
        observations: List[PairObservation] = []
        histories = self._histories
        dirty = None if self._delta is None else self._delta.dirty_histories
        count_a = count_a.tolist()
        count_b = count_b.tolist()
        count_both = count_both.tolist()
        for index, (pair, seed_tag, pair_count) in enumerate(candidates):
            counts = PairCounts(
                count_a=count_a[index],
                count_b=count_b[index],
                count_both=count_both[index],
                total_documents=total_documents,
                pair=pair,
            )
            value = values[index]
            history = histories.get(pair)
            if history is None:
                history = TimeSeries(maxlen=self.history_length)
                histories[pair] = history
            history.append(timestamp, value)
            if dirty is not None:
                dirty[pair] = dirty.get(pair, 0) + 1
            observations.append(PairObservation(
                pair=pair, timestamp=timestamp, correlation=value,
                counts=counts, seed_tag=seed_tag,
            ))
        self._history_epoch += 1
        return observations

    def record_sampled_values(
        self,
        timestamp: float,
        sampled: Iterable[Tuple[TagPair, float]],
    ) -> None:
        """Append one evaluation's sampled correlations to the histories.

        The write-back half of :meth:`_sample` for callers that computed
        the values themselves (the fused evaluator): appends each value to
        the pair's bounded series, maintains delta dirty counts, and bumps
        the history epoch once.
        """
        histories = self._histories
        dirty = None if self._delta is None else self._delta.dirty_histories
        history_length = self.history_length
        for pair, value in sampled:
            history = histories.get(pair)
            if history is None:
                history = TimeSeries(maxlen=history_length)
                histories[pair] = history
            history.append(timestamp, value)
            if dirty is not None:
                dirty[pair] = dirty.get(pair, 0) + 1
        self._history_epoch += 1

    def history(self, pair: TagPair) -> TimeSeries:
        """Correlation history of ``pair`` (empty series when never observed)."""
        return self._histories.get(pair, TimeSeries())

    def tracked_pairs(self) -> List[TagPair]:
        return sorted(self._histories)

    def count_history(self) -> Dict[str, List[int]]:
        """Windowed count history per tag (for the volatility seed selector)."""
        return {tag: list(values) for tag, values in self._count_history.items()}

    def record_count_history_row(self) -> None:
        """Record the current per-tag counts into the count history.

        Public wrapper over the row-recording half of :meth:`evaluate`, for
        callers (the fused evaluator's engine path) that sample correlations
        outside the tracker but must keep the volatility history identical.
        """
        self._record_count_history()

    # -- persistence ----------------------------------------------------------

    def snapshot(self) -> dict:
        """The tracker's complete state as a versioned, JSON-safe dict.

        Everything the stream built up is externalized — the tag window,
        the windowed pair events with the postings index, the co-tag usage
        events, the per-pair correlation histories and the count history —
        so a restored tracker continues bit-identically.  The decomposition
        memo is deliberately absent: it is a cache, rebuilt on demand.  A
        sketch tier, when present, rides along under ``"tier"`` (absent in
        exact mode, keeping exact-mode snapshots byte-stable).
        """
        if self._tier is not None:
            state = self._snapshot_exact()
            state["tier"] = self._tier.snapshot()
            return state
        return self._snapshot_exact()

    def _snapshot_exact(self) -> dict:
        return {
            "kind": "correlation-tracker",
            "version": 1,
            "window_horizon": self.window_horizon,
            "history_length": self.history_length,
            "use_entities": self.use_entities,
            "track_usage": self.track_usage,
            "documents_seen": self._documents_seen,
            "latest": self._latest,
            "tag_window": self._tag_window.state_dict(),
            "pair_events": [
                [timestamp, [[pair.first, pair.second] for pair in pairs]]
                for timestamp, pairs in self._pair_events
            ],
            "candidates": self._candidates.snapshot(),
            "usage_events": [
                [timestamp, [[tag, list(cotags)] for tag, cotags in update]]
                for timestamp, update in self._usage_events
            ],
            "histories": [
                [pair.first, pair.second, series.snapshot()]
                for pair, series in sorted(self._histories.items())
            ],
            "count_history": {
                tag: list(values) for tag, values in self._count_history.items()
            },
        }

    def restore(self, state: Mapping) -> None:
        """Replace this tracker's state with a :meth:`snapshot`'s.

        The tracker must be constructed with the same structural parameters
        (window horizon, history length, entity/usage switches) as the one
        that took the snapshot; mismatches raise
        :class:`~repro.persistence.snapshot.SnapshotMismatchError` before
        any state is touched.  The usage counters are rebuilt from the
        usage events, so restored eviction arithmetic is exact.
        """
        require_state(state, "correlation-tracker", 1)
        require_compatible(
            "correlation-tracker",
            {
                "window_horizon": self.window_horizon,
                "history_length": self.history_length,
                "use_entities": self.use_entities,
                "track_usage": self.track_usage,
            },
            state,
        )
        tier_state = state.get("tier")
        if (tier_state is None) != (self._tier is None):
            raise SnapshotMismatchError(
                "correlation-tracker snapshot tracking mode does not match: "
                f"snapshot is {'tiered' if tier_state is not None else 'exact'}, "
                f"tracker is {'tiered' if self._tier is not None else 'exact'}"
            )
        if self._tier is not None:
            self._tier.restore(tier_state)
        self._tag_window.restore_state(state["tag_window"])
        self._candidates.restore(state["candidates"])
        self._pair_events = deque(
            (float(timestamp), tuple(TagPair(str(a), str(b)) for a, b in pairs))
            for timestamp, pairs in state["pair_events"]
        )
        usage_events: Deque[
            Tuple[float, Tuple[Tuple[str, Tuple[str, ...]], ...]]
        ] = deque()
        usage: Dict[str, Mapping[str, int]] = {}
        for timestamp, update in state["usage_events"]:
            prepared = tuple(
                (str(tag), tuple(str(cotag) for cotag in cotags))
                for tag, cotags in update
            )
            usage_events.append((float(timestamp), prepared))
            for tag, cotags in prepared:
                counter = usage.get(tag)
                if counter is None:
                    counter = usage[tag] = self._make_usage_counter()
                counter.update(cotags)
        self._usage_events = usage_events
        self._usage = usage
        self._histories = {
            TagPair(str(a), str(b)): TimeSeries.from_snapshot(series)
            for a, b, series in state["histories"]
        }
        self._count_history = {
            str(tag): deque(
                (int(value) for value in values), maxlen=self.history_length
            )
            for tag, values in state["count_history"].items()
        }
        self._documents_seen = int(state["documents_seen"])
        latest = state["latest"]
        self._latest = None if latest is None else float(latest)
        # Any buffered delta described the pre-restore state; drop it.
        self._delta = None
        self._history_epoch += 1

    # -- incremental persistence ----------------------------------------------

    def begin_delta_tracking(self) -> None:
        """Start (or re-arm, emptying the buffers) delta recording.

        Call right after taking the base :meth:`snapshot`; everything the
        tracker appends afterwards is buffered until :meth:`delta_since`
        drains it.  Recording costs one list append per ingested document
        plus a set add per sampled candidate — negligible next to the
        statistics updates themselves.
        """
        self._delta = _TrackerDelta()

    def end_delta_tracking(self) -> None:
        """Stop recording and discard any buffered delta."""
        self._delta = None

    def delta_since(self, generation: int) -> dict:
        """Drain the recorded changes since the last base/drain as a dict.

        The companion of :meth:`snapshot` for journaled checkpoints: the
        result carries only what arrived since the last drain — the
        ingested events (a document event ships just the ordered tag set;
        its pair list and tag-window entry are derived on apply), the
        usage events, the points appended to each sampled pair's
        correlation series (the exact tail, extended-and-retrimmed on
        apply), the per-evaluation count-history rows, and the absolute
        counters — and
        :func:`repro.persistence.delta.apply_tracker_delta` folds it onto
        the base snapshot to reproduce :meth:`snapshot` exactly.  Requires
        :meth:`begin_delta_tracking`; recording stays armed afterwards.
        """
        buffer = self._delta
        if buffer is None:
            raise RuntimeError(
                "delta tracking is not active: take a base snapshot and "
                "call begin_delta_tracking() first"
            )
        # A cadence tick's cost is dominated by serializing this dict, so
        # the encoding is deliberately lean: tag names are interned into
        # one string table per delta ("tags", referenced by index
        # everywhere else) and history points are grouped under their
        # evaluation timestamp instead of repeating floats per pair.
        intern, tags_table = string_interner()
        events = [
            [kind, timestamp,
             [intern(tag) for tag in payload] if kind == _DELTA_DOC
             else [[intern(pair.first), intern(pair.second)]
                   for pair in payload]]
            for kind, timestamp, payload in buffer.events
        ]
        history_groups: Dict[float, List[list]] = {}
        for pair, appended in sorted(buffer.dirty_histories.items()):
            timestamps, values = self._histories[pair].tail_points(appended)
            first = intern(pair.first)
            second = intern(pair.second)
            for timestamp, value in zip(timestamps, values):
                history_groups.setdefault(timestamp, []).append(
                    [first, second, value]
                )
        delta = {
            "kind": "correlation-tracker-delta",
            "version": 1,
            "since": int(generation),
            "documents_seen": self._documents_seen,
            "latest": self._latest,
            "min_support": self._candidates.min_support,
            "tag_window_latest": self._tag_window.latest_timestamp,
            "tags": tags_table,
            "events": events,
            "usage_events": [
                [timestamp, [[tag, list(cotags)] for tag, cotags in update]]
                for timestamp, update in buffer.usage_events
            ],
            "histories": [
                [timestamp, rows]
                for timestamp, rows in sorted(history_groups.items())
            ],
            "count_rows": buffer.count_rows,
        }
        self._delta = _TrackerDelta()
        return delta

    # -- internals ----------------------------------------------------------------

    def _decompose(
        self, tags: Iterable[str], entities: Iterable[str]
    ) -> Tuple[Tuple[str, ...], Tuple[TagPair, ...]]:
        """Normalise a document's tag/entity sets into (ordered tags, pairs)."""
        return self._decomposer.decompose(tags, entities)

    def _ingest(
        self,
        timestamp: float,
        tags: Iterable[str],
        entities: Iterable[str],
    ) -> Tuple[float, Tuple[str, ...]]:
        """Everything except the tag window and eviction, for the single path."""
        timestamp = float(timestamp)
        if self._latest is not None and timestamp < self._latest:
            raise ValueError(
                f"out-of-order document: {timestamp} < {self._latest}"
            )
        ordered, pairs = self._decompose(tags, entities)
        if self._tier is not None and pairs:
            pairs = self._tier.filter_pairs(timestamp, pairs)
        self._pair_events.append((timestamp, pairs))
        for pair in pairs:
            self._candidates.add(pair)
        if self.track_usage:
            self._record_usage(timestamp, ordered)
        self._documents_seen += 1
        self._latest = timestamp
        return timestamp, ordered

    def _make_usage_counter(self):
        """A fresh per-tag co-tag counter, striped when configured."""
        if self.counter_stripes == 1:
            return Counter()
        return StripedCounter(self.counter_stripes)

    def _record_usage(self, timestamp: float, ordered: Tuple[str, ...]) -> None:
        """Update the windowed co-tag usage distributions for one document."""
        usage_update = tuple(
            (tag, tuple(t for t in ordered if t != tag)) for tag in ordered
        )
        self._usage_events.append((timestamp, usage_update))
        if self._delta is not None:
            self._delta.usage_events.append((timestamp, usage_update))
        usage = self._usage
        for tag, cotags in usage_update:
            counter = usage.get(tag)
            if counter is None:
                counter = usage[tag] = self._make_usage_counter()
            counter.update(cotags)

    def _record_count_history(self) -> None:
        snapshot = self._tag_window.snapshot()
        if self._delta is not None:
            # The row is a fresh dict from the window; recording the
            # reference is safe (record_count_history only reads it).
            self._delta.count_rows.append(snapshot)
        record_count_history(
            self._count_history, snapshot, self.history_length
        )

    def _evict(self, now: float) -> None:
        cutoff = now - self.window_horizon
        expired_pairs: List[TagPair] = []
        while self._pair_events and self._pair_events[0][0] <= cutoff:
            _, pairs = self._pair_events.popleft()
            expired_pairs.extend(pairs)
        if expired_pairs:
            self._candidates.remove_many(expired_pairs)
        while self._usage_events and self._usage_events[0][0] <= cutoff:
            _, usage_update = self._usage_events.popleft()
            for tag, cotags in usage_update:
                counter = self._usage.get(tag)
                if counter is None:
                    continue
                for cotag in cotags:
                    counter[cotag] -= 1
                    if counter[cotag] <= 0:
                        del counter[cotag]
                if not counter:
                    del self._usage[tag]
