"""EnBlogue's core: the three-stage emergent-topic detection pipeline.

Stage (i) selects *seed tags* (popular or volatile tags) that trigger the
rest of the computation; stage (ii) tracks the *correlations* of candidate
tag pairs (pairs containing at least one seed); stage (iii) detects
*shifts* — sudden, unpredictable increases in a pair's correlation — and
ranks the pairs by a decayed maximum of their prediction errors.  The
:class:`~repro.core.engine.EnBlogue` façade wires the stages together and
is the main entry point of the library.
"""

from repro.core.types import EmergentTopic, Ranking, TagPair
from repro.core.config import EnBlogueConfig
from repro.core.correlation import (
    CorrelationMeasure,
    CosineCorrelation,
    JaccardCorrelation,
    KlDivergenceCorrelation,
    OverlapCorrelation,
    PmiCorrelation,
    PairCounts,
    available_measures,
    make_measure,
)
from repro.core.seeds import (
    HybridSeedSelector,
    PopularitySeedSelector,
    SeedSelector,
    VolatilitySeedSelector,
    make_seed_selector,
)
from repro.core.candidates import CandidateIndex
from repro.core.tracker import CorrelationTracker, PairObservation
from repro.core.shift import ShiftDetector, ShiftScore
from repro.core.ranking import RankingBuilder
from repro.core.personalization import PersonalizationEngine, UserProfile
from repro.core.explorer import ArchiveExplorer, RangeShift
from repro.core.engine import EnBlogue

__all__ = [
    "TagPair",
    "EmergentTopic",
    "Ranking",
    "EnBlogueConfig",
    "CorrelationMeasure",
    "JaccardCorrelation",
    "OverlapCorrelation",
    "CosineCorrelation",
    "PmiCorrelation",
    "KlDivergenceCorrelation",
    "PairCounts",
    "available_measures",
    "make_measure",
    "SeedSelector",
    "PopularitySeedSelector",
    "VolatilitySeedSelector",
    "HybridSeedSelector",
    "make_seed_selector",
    "CandidateIndex",
    "CorrelationTracker",
    "PairObservation",
    "ShiftDetector",
    "ShiftScore",
    "RankingBuilder",
    "PersonalizationEngine",
    "UserProfile",
    "ArchiveExplorer",
    "RangeShift",
    "EnBlogue",
]
