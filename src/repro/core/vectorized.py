"""Vectorized evaluation hot path: batched, bit-identical scoring.

The cadence loop's cost is dominated by per-pair scalar work: every
evaluation walks the candidate set computing correlation + shift score one
pair at a time, and then re-reads the decayed score of *every* pair the
detector has ever scored to admit dormant topics into the ranking.  This
module rebuilds that pipeline as array math over a columnar pair-state view
— parallel numpy arrays for history tails, history lengths and decayed
scores, keyed by a stable pair→row interning table — while keeping every
published number **bit-identical** to the scalar path:

* integer count arithmetic (unions, minima, products) is exact in int64 and
  conversions to float64 are exact below 2**53, so the measure divisions
  round identically to their scalar counterparts;
* ``np.log``/``np.exp`` are *not* used — on this platform they differ from
  ``math.log``/``math.exp`` in the last ulp for a fraction of inputs.  The
  PMI kernel takes ``math.log`` per masked candidate, and decay factors are
  computed with ``math.exp`` once per *unique* elapsed time (evaluation
  boundaries are shared by construction, so the unique set is tiny) and
  gathered back;
* predictor kernels replay the scalar recurrences column by column in the
  exact same operation order (sums accumulate oldest→newest, EWMA/Holt
  recurrences step per column), grouping rows by usable-history length so
  every row sees precisely the slice the scalar predictor saw;
* the top-k cut thresholds on ``min_score`` (strict, as the scalar
  builder), takes a tie-inclusive superset via ``np.partition``, and then
  applies the canonical ``topic_sort_key`` total order in Python — the same
  comparisons, just over k-ish topics instead of every scored pair.

The scalar dictionaries (the tracker's per-pair :class:`TimeSeries`
histories, the detector's :class:`DecayedMaximum` table) remain the source
of truth for persistence: the fused evaluator appends/updates them through
the owning components and keeps its columnar mirrors in sync incrementally.
Mutations that happen *outside* the fused path (a scalar evaluation, a
checkpoint restore, a score reset) bump an epoch counter on the owning
component; a stamp mismatch triggers a lazy full rebuild of the mirrors, so
mixing paths is always correct, merely slower for one evaluation.

Numpy is optional: every consumer gates on :data:`NUMPY_AVAILABLE` and the
scalar path stays first-class.  Set the environment variable
``REPRO_DISABLE_VECTORIZED`` (to any non-empty value) to force the scalar
path without code changes.
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.correlation import (
    CorrelationMeasure,
    CosineCorrelation,
    JaccardCorrelation,
    OverlapCorrelation,
    PairCounts,
    PmiCorrelation,
    vectorizable_measures,
)
from repro.core.types import EmergentTopic, TagPair
from repro.timeseries.predictors import (
    EwmaPredictor,
    HoltPredictor,
    LastValuePredictor,
    LinearTrendPredictor,
    MovingAveragePredictor,
    Predictor,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.ranking import RankingBuilder
    from repro.core.shift import ShiftDetector
    from repro.core.tracker import CorrelationTracker

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np

    NUMPY_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]
    NUMPY_AVAILABLE = False

#: Environment switch forcing the scalar path (any non-empty value).
DISABLE_ENV_VAR = "REPRO_DISABLE_VECTORIZED"

#: One candidate triple as produced by ``CandidateIndex.iter_candidates``.
Candidate = Tuple[TagPair, str, int]


def vectorization_disabled() -> bool:
    """Whether the environment forces the scalar path."""
    return bool(os.environ.get(DISABLE_ENV_VAR))


# ---------------------------------------------------------------------------
# Measure kernels
# ---------------------------------------------------------------------------
#
# Each kernel mirrors one CorrelationMeasure.value expression by expression
# over int64 count arrays.  Inputs are pre-validated (validate_pair_counts),
# so guards only handle the zero-denominator cases the scalar code handles.


def _kernel_jaccard(measure, count_a, count_b, count_both, total_documents):
    union = count_a + count_b - count_both
    out = np.zeros(len(count_a), dtype=np.float64)
    nonzero = union != 0
    np.divide(count_both, union, out=out, where=nonzero)
    return out


def _kernel_overlap(measure, count_a, count_b, count_both, total_documents):
    smaller = np.minimum(count_a, count_b)
    out = np.zeros(len(count_a), dtype=np.float64)
    nonzero = smaller != 0
    np.divide(count_both, smaller, out=out, where=nonzero)
    return out


def _kernel_cosine(measure, count_a, count_b, count_both, total_documents):
    # int64 product is exact (window counts are far below 2**31), the cast
    # to float64 is exact below 2**53, and sqrt is correctly rounded in
    # both math.sqrt and np.sqrt — verified identical on this platform.
    denominator = np.sqrt((count_a * count_b).astype(np.float64))
    out = np.zeros(len(count_a), dtype=np.float64)
    nonzero = denominator != 0
    np.divide(count_both, denominator, out=out, where=nonzero)
    return out


def _kernel_pmi(measure, count_a, count_b, count_both, total_documents):
    out = np.zeros(len(count_a), dtype=np.float64)
    if total_documents == 0:
        return out
    # count_both > 0 implies count_a > 0 and count_b > 0 (the intersection
    # bound), so the scalar p_a == 0 / p_b == 0 guards are subsumed.
    mask = count_both > 0
    if not mask.any():
        return out
    total = float(total_documents)
    p_a = count_a[mask] / total
    p_b = count_b[mask] / total
    p_ab = count_both[mask] / total
    ratio = p_ab / (p_a * p_b)
    # math.log, not np.log: they disagree in the last ulp on this platform.
    # The masked candidate set is small (hundreds), so the Python loop is
    # noise next to the savings of the batched arithmetic above.
    results: List[float] = []
    for r, joint in zip(ratio.tolist(), p_ab.tolist()):
        pmi = math.log(r)
        normaliser = -math.log(joint)
        if normaliser == 0:
            results.append(1.0)
        else:
            results.append(max(0.0, pmi / normaliser))
    out[mask] = results
    return out


_MEASURE_KERNELS: Dict[type, object] = {
    JaccardCorrelation: _kernel_jaccard,
    OverlapCorrelation: _kernel_overlap,
    CosineCorrelation: _kernel_cosine,
    PmiCorrelation: _kernel_pmi,
}


def measure_supported(measure: CorrelationMeasure) -> bool:
    """Whether ``measure`` has a bit-identical batched kernel.

    Keyed by exact type: a subclass overriding :meth:`value` would silently
    diverge from the registered kernel, so it falls back to scalar.
    """
    return type(measure) in _MEASURE_KERNELS


def validate_pair_counts(
    candidates: Sequence[Candidate],
    count_a,
    count_b,
    count_both,
    total_documents: int,
) -> None:
    """Batched :class:`PairCounts` validation naming the offending pair.

    Mirrors ``PairCounts.__post_init__`` over the whole candidate set; on a
    violation the scalar dataclass is constructed for the first offending
    candidate so the raised message (including the canonical pair context)
    is exactly the scalar path's.
    """
    bad = (
        (count_a < 0)
        | (count_b < 0)
        | (count_both < 0)
        | (count_both > np.minimum(count_a, count_b))
        | (np.maximum(count_a, count_b) > total_documents)
    )
    if total_documents < 0:
        bad = bad | True
    if bad.any():
        index = int(np.nonzero(bad)[0][0])
        PairCounts(
            count_a=int(count_a[index]),
            count_b=int(count_b[index]),
            count_both=int(count_both[index]),
            total_documents=int(total_documents),
            pair=candidates[index][0],
        )
        raise AssertionError(
            "vectorized validation flagged counts the scalar validation "
            "accepts"
        )


def measure_candidates(
    measure: CorrelationMeasure,
    count_a,
    count_b,
    count_both,
    total_documents: int,
):
    """Batched ``max(0.0, measure.value(...))`` over pre-validated counts."""
    kernel = _MEASURE_KERNELS.get(type(measure))
    if kernel is None:
        raise ValueError(
            f"measure {measure.name!r} has no vectorized kernel; "
            f"vectorizable measures: {vectorizable_measures()}"
        )
    return np.maximum(0.0, kernel(
        measure, count_a, count_b, count_both, total_documents
    ))


# ---------------------------------------------------------------------------
# Predictor kernels
# ---------------------------------------------------------------------------
#
# Each kernel receives a right-aligned matrix ``previous`` of the values
# preceding the current observation (row i's usable[i] values occupy the
# *last* usable[i] columns) and replays the scalar predictor's recurrence
# column by column.  Rows are grouped by usable length so every row sees
# exactly the slice the scalar predictor saw; within a group the per-column
# array operations perform the same IEEE operations in the same order as
# the scalar loop, which is what keeps the forecasts bit-identical.


def _predict_last(predictor, previous, usable):
    return previous[:, -1].copy()


def _predict_moving_average(predictor, previous, usable):
    columns = previous.shape[1]
    counts = np.minimum(predictor.window, usable)
    out = np.empty(len(usable), dtype=np.float64)
    for count in np.unique(counts).tolist():
        rows = counts == count
        block = previous[rows, columns - count:]
        total = np.zeros(block.shape[0], dtype=np.float64)
        for column in range(count):  # oldest→newest, as sum() iterates
            total = total + block[:, column]
        out[rows] = total / count
    return out


def _predict_ewma(predictor, previous, usable):
    columns = previous.shape[1]
    alpha = predictor.alpha
    complement = 1 - alpha
    out = np.empty(len(usable), dtype=np.float64)
    for length in np.unique(usable).tolist():
        rows = usable == length
        block = previous[rows, columns - length:]
        estimate = block[:, 0].copy()
        for column in range(1, length):
            estimate = alpha * block[:, column] + complement * estimate
        out[rows] = estimate
    return out


def _predict_linear(predictor, previous, usable):
    columns = previous.shape[1]
    counts = np.minimum(predictor.window, usable)
    out = np.empty(len(usable), dtype=np.float64)
    for count in np.unique(counts).tolist():
        rows = counts == count
        block = previous[rows, columns - count:]
        xs = list(range(count))
        mean_x = sum(xs) / count
        mean_y = np.zeros(block.shape[0], dtype=np.float64)
        for column in range(count):
            mean_y = mean_y + block[:, column]
        mean_y = mean_y / count
        denominator = sum((x - mean_x) ** 2 for x in xs)
        if denominator == 0:
            out[rows] = mean_y
            continue
        numerator = np.zeros(block.shape[0], dtype=np.float64)
        for column in range(count):
            numerator = numerator + (xs[column] - mean_x) * (
                block[:, column] - mean_y
            )
        slope = numerator / denominator
        intercept = mean_y - slope * mean_x
        out[rows] = intercept + slope * count
    return out


def _predict_holt(predictor, previous, usable):
    columns = previous.shape[1]
    alpha = predictor.alpha
    beta = predictor.beta
    alpha_complement = 1 - alpha
    beta_complement = 1 - beta
    out = np.empty(len(usable), dtype=np.float64)
    for length in np.unique(usable).tolist():
        rows = usable == length
        block = previous[rows, columns - length:]
        level = block[:, 0].copy()
        trend = block[:, 1] - block[:, 0]
        for column in range(1, length):
            previous_level = level
            level = alpha * block[:, column] + alpha_complement * (
                level + trend
            )
            trend = beta * (level - previous_level) + beta_complement * trend
        out[rows] = level + trend
    return out


_PREDICTOR_KERNELS: Dict[type, object] = {
    LastValuePredictor: _predict_last,
    MovingAveragePredictor: _predict_moving_average,
    EwmaPredictor: _predict_ewma,
    LinearTrendPredictor: _predict_linear,
    HoltPredictor: _predict_holt,
}

#: Registry names of the predictors with a bit-identical batched kernel.
VECTORIZED_PREDICTOR_NAMES = frozenset(
    {"last", "moving_average", "ewma", "linear", "holt"}
)


def predictor_supported(predictor: Predictor) -> bool:
    """Whether ``predictor`` has a bit-identical batched kernel.

    Keyed by exact type, as :func:`measure_supported`.
    """
    return type(predictor) in _PREDICTOR_KERNELS


def predict_batch(predictor: Predictor, previous, usable):
    """Batched one-step forecasts over a right-aligned history matrix.

    ``previous`` holds, right-aligned, the values preceding the current
    observation; ``usable[i]`` is row i's history length.  Every row must
    already satisfy the predictor's ``min_history`` — gating is the
    caller's job (the detector's gate also involves its own minimum).
    """
    kernel = _PREDICTOR_KERNELS.get(type(predictor))
    if kernel is None:
        raise ValueError(
            f"predictor {type(predictor).__name__} has no vectorized kernel"
        )
    return kernel(predictor, previous, usable)


# ---------------------------------------------------------------------------
# Decay factors
# ---------------------------------------------------------------------------


def decay_factors(decay_rate: float, elapsed):
    """``exp(-decay_rate * elapsed)`` per element, bit-identical to math.exp.

    ``np.exp`` disagrees with ``math.exp`` in the last ulp for ~5% of
    inputs on this platform, so the factor is computed with ``math.exp``
    once per *unique* elapsed value and gathered back.  Elapsed times are
    differences of evaluation-boundary timestamps, which pairs share by
    construction, so the unique set stays tiny (typically a few dozen)
    regardless of how many pairs are scored.
    """
    unique, inverse = np.unique(elapsed, return_inverse=True)
    factors = np.fromiter(
        (math.exp(-decay_rate * value) for value in unique.tolist()),
        dtype=np.float64,
        count=len(unique),
    )
    return factors[inverse]


# ---------------------------------------------------------------------------
# The fused evaluator
# ---------------------------------------------------------------------------


class FusedEvaluator:
    """Columnar mirror of tracker histories + detector scores, evaluated
    in one batched pass per cadence boundary.

    One evaluation performs, over the whole candidate set at once: gather
    counts → validate → measure kernel → history append (columnar mirror
    *and* the tracker's scalar :class:`TimeSeries`, which stays the
    persistence source of truth) → predictor kernel → prediction errors →
    decayed-maximum update (columnar mirror *and* the detector's scalar
    table) → global top-k over every known score.  The returned topic list
    is bit-identical to the scalar
    ``detector.update`` / ``RankingBuilder.top_topics`` pipeline.

    The mirrors are invalidated by epoch stamps: any history/score mutation
    outside this evaluator (scalar sampling, restore, reset) bumps the
    owning component's epoch, and the next :meth:`evaluate` rebuilds from
    the scalar dictionaries before proceeding.
    """

    #: Initial row capacity of the columnar arrays.
    _INITIAL_CAPACITY = 1024

    def __init__(
        self,
        tracker: "CorrelationTracker",
        detector: "ShiftDetector",
        builder: "RankingBuilder",
    ):
        if not NUMPY_AVAILABLE:
            raise RuntimeError("FusedEvaluator requires numpy")
        if not measure_supported(tracker.measure):
            raise ValueError(
                f"measure {tracker.measure.name!r} has no vectorized kernel"
            )
        if not predictor_supported(detector.predictor):
            raise ValueError(
                f"predictor {type(detector.predictor).__name__} has no "
                "vectorized kernel"
            )
        self._tracker = tracker
        self._detector = detector
        self._builder = builder
        self._history_columns = int(tracker.history_length)
        self._pair_rows: Dict[TagPair, int] = {}
        self._pairs: List[TagPair] = []
        self._allocate(self._INITIAL_CAPACITY)
        # Stamps: None forces a rebuild on the next evaluation.
        self._history_stamp: Optional[int] = None
        self._score_stamp: Optional[int] = None

    # -- columnar storage -----------------------------------------------------

    def _allocate(self, capacity: int) -> None:
        columns = self._history_columns
        self._hist = np.zeros((capacity, columns), dtype=np.float64)
        self._hist_len = np.zeros(capacity, dtype=np.int64)
        self._score_value = np.zeros(capacity, dtype=np.float64)
        self._score_last = np.zeros(capacity, dtype=np.float64)
        self._score_known = np.zeros(capacity, dtype=bool)

    def _grow(self, needed: int) -> None:
        capacity = len(self._hist_len)
        if needed <= capacity:
            return
        new_capacity = max(needed, capacity * 2)
        hist = np.zeros(
            (new_capacity, self._history_columns), dtype=np.float64
        )
        hist[:capacity] = self._hist
        self._hist = hist
        for name in ("_hist_len", "_score_value", "_score_last"):
            old = getattr(self, name)
            grown = np.zeros(new_capacity, dtype=old.dtype)
            grown[:capacity] = old
            setattr(self, name, grown)
        known = np.zeros(new_capacity, dtype=bool)
        known[:capacity] = self._score_known
        self._score_known = known

    def _row_for(self, pair: TagPair) -> int:
        row = self._pair_rows.get(pair)
        if row is None:
            row = len(self._pairs)
            self._grow(row + 1)
            self._pair_rows[pair] = row
            self._pairs.append(pair)
        return row

    @property
    def row_count(self) -> int:
        """Interned pairs (mirror rows currently in use)."""
        return len(self._pairs)

    def _rebuild(self) -> None:
        """Rebuild the mirrors from the scalar source-of-truth dicts."""
        tracker = self._tracker
        detector = self._detector
        self._pair_rows = {}
        self._pairs = []
        histories = tracker.history_map
        scores = detector.score_map
        needed = len(set(histories) | set(scores))
        self._allocate(max(self._INITIAL_CAPACITY, needed))
        columns = self._history_columns
        for pair, series in histories.items():
            row = self._row_for(pair)
            values = series.tail(columns)
            if values:
                self._hist[row, columns - len(values):] = values
            self._hist_len[row] = len(values)
        for pair, maximum in scores.items():
            row = self._row_for(pair)
            value, last_update = maximum.state()
            if last_update is None:
                # Never updated: scalar value_at() reads it as 0.0.
                continue
            self._score_value[row] = value
            self._score_last[row] = last_update
            self._score_known[row] = True
        self._history_stamp = tracker.history_epoch
        self._score_stamp = detector.mutation_epoch

    # -- evaluation -----------------------------------------------------------

    def evaluate(
        self,
        timestamp: float,
        seeds,
        tag_counts,
        total_documents: int,
    ) -> List[EmergentTopic]:
        """One cadence boundary, batched; returns the sorted top-k topics.

        The caller must already have advanced the tracker's window to
        ``timestamp`` (both engines do, mirroring the scalar entry points).
        State divergence on *error* paths is possible — array validation
        raises before any history is appended, where the scalar loop
        appends candidates preceding the offending one — but the raised
        message is identical and a tracker holding invalid windowed counts
        is unreachable through ingestion.
        """
        from repro.core.ranking import topic_sort_key

        tracker = self._tracker
        detector = self._detector
        builder = self._builder
        if (
            self._history_stamp != tracker.history_epoch
            or self._score_stamp != detector.mutation_epoch
        ):
            self._rebuild()
        timestamp = float(timestamp)
        decay_rate = detector.decay.decay_rate
        candidates = tracker.candidate_index.iter_candidates(seeds)
        count = len(candidates)
        fresh_rows: Dict[int, int] = {}
        values_list: List[float] = []
        predicted_list: List[float] = []
        errors_list: List[float] = []
        try:
            if count:
                (
                    fresh_rows, values_list, predicted_list, errors_list
                ) = self._score_candidates(
                    timestamp, candidates, tag_counts, total_documents,
                    decay_rate,
                )
        except BaseException:
            # A partial batch leaves the mirrors out of step with the
            # scalar dicts; force a rebuild before the next evaluation.
            self._history_stamp = None
            self._score_stamp = None
            raise
        # Global top-k over every known score (candidates updated above
        # carry last_update == timestamp, so their factor is exactly 1.0).
        used = len(self._pairs)
        known = np.nonzero(self._score_known[:used])[0]
        if known.size == 0:
            return []
        last_updates = self._score_last[known]
        elapsed = timestamp - last_updates
        stale = elapsed < 0
        if stale.any():
            offending = float(last_updates[np.nonzero(stale)[0][0]])
            raise ValueError(
                f"cannot evaluate in the past: {timestamp} < {offending}"
            )
        current = self._score_value[known] * decay_factors(
            decay_rate, elapsed
        )
        admitted = current > builder.min_score
        rows = known[admitted]
        scores = current[admitted]
        top_k = builder.top_k
        if scores.size > top_k:
            # Tie-inclusive superset: keep everything >= the k-th largest
            # score, then let the canonical sort cut exactly k below.
            kth = np.partition(scores, scores.size - top_k)[
                scores.size - top_k
            ]
            keep = scores >= kth
            rows = rows[keep]
            scores = scores[keep]
        pairs = self._pairs
        topics: List[EmergentTopic] = []
        for row, score in zip(rows.tolist(), scores.tolist()):
            index = fresh_rows.get(row)
            if index is None:
                topics.append(EmergentTopic(
                    pair=pairs[row], score=score, timestamp=timestamp,
                ))
            else:
                topics.append(EmergentTopic(
                    pair=pairs[row],
                    score=score,
                    correlation=values_list[index],
                    predicted_correlation=predicted_list[index],
                    prediction_error=errors_list[index],
                    seed_tag=candidates[index][1],
                    timestamp=timestamp,
                ))
        topics.sort(key=topic_sort_key)
        return topics[:top_k]

    def _score_candidates(
        self,
        timestamp: float,
        candidates: List[Candidate],
        tag_counts,
        total_documents: int,
        decay_rate: float,
    ) -> Tuple[Dict[int, int], List[float], List[float], List[float]]:
        """Measure, append, predict and score the candidate set in batch."""
        tracker = self._tracker
        detector = self._detector
        count = len(candidates)
        count_a = np.fromiter(
            (tag_counts.get(pair.first, 0) for pair, _, _ in candidates),
            dtype=np.int64, count=count,
        )
        count_b = np.fromiter(
            (tag_counts.get(pair.second, 0) for pair, _, _ in candidates),
            dtype=np.int64, count=count,
        )
        count_both = np.fromiter(
            (pair_count for _, _, pair_count in candidates),
            dtype=np.int64, count=count,
        )
        # Same clamp as the tracker's sampling paths: a sketch tier's
        # back-filled promotion can push a windowed pair count past a tag
        # count; exact tracking never does, so this is a no-op there.
        count_both = np.minimum(count_both, np.minimum(count_a, count_b))
        validate_pair_counts(
            candidates, count_a, count_b, count_both, total_documents
        )
        values = measure_candidates(
            tracker.measure, count_a, count_b, count_both, total_documents
        )
        values_list = values.tolist()
        rows = np.fromiter(
            (self._row_for(pair) for pair, _, _ in candidates),
            dtype=np.int64, count=count,
        )
        # History: the predictor sees the values *preceding* the current
        # observation.  Rows are right-aligned, so dropping the first
        # column yields exactly previous_values() after the append — the
        # whole old row while it is short, the last H-1 values once full.
        columns = self._history_columns
        old_block = self._hist[rows]
        lengths = self._hist_len[rows]
        usable = np.minimum(lengths, columns - 1)
        previous = old_block[:, 1:]
        # Append: shift left one, place the fresh value in the last column.
        self._hist[rows, :-1] = previous
        self._hist[rows, -1] = values
        self._hist_len[rows] = np.minimum(lengths + 1, columns)
        tracker.record_sampled_values(
            timestamp,
            zip((pair for pair, _, _ in candidates), values_list),
        )
        self._history_stamp = tracker.history_epoch
        # Predict + error, gated exactly as ShiftDetector._usable_history:
        # too-short histories forecast 0.0 with error 0.0.
        gate_limit = max(detector.min_history, detector.predictor.min_history)
        gate = usable >= gate_limit
        predicted = np.zeros(count, dtype=np.float64)
        if gate.any():
            predicted[gate] = predict_batch(
                detector.predictor, previous[gate], usable[gate]
            )
        raw = values - predicted
        if detector.penalize_drops:
            errors = np.abs(raw)
        else:
            errors = np.maximum(0.0, raw)
        errors = np.where(gate, errors, 0.0)
        # Decayed-maximum update for the candidate rows.
        last_updates = self._score_last[rows]
        known = self._score_known[rows]
        elapsed = timestamp - last_updates
        stale = known & (elapsed < 0)
        if stale.any():
            offending = float(last_updates[np.nonzero(stale)[0][0]])
            raise ValueError(
                f"cannot evaluate in the past: {timestamp} < {offending}"
            )
        decayed = np.zeros(count, dtype=np.float64)
        if known.any():
            decayed[known] = self._score_value[rows[known]] * decay_factors(
                decay_rate, elapsed[known]
            )
        new_scores = np.maximum(decayed, errors)
        self._score_value[rows] = new_scores
        self._score_last[rows] = timestamp
        self._score_known[rows] = True
        detector.record_scores(
            timestamp,
            zip((pair for pair, _, _ in candidates), new_scores.tolist()),
        )
        self._score_stamp = detector.mutation_epoch
        fresh_rows = {row: index for index, row in enumerate(rows.tolist())}
        return fresh_rows, values_list, predicted.tolist(), errors.tolist()


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------


def sampling_supported(
    measure: CorrelationMeasure, enabled: Optional[bool] = None
) -> bool:
    """Whether the tracker's sampling loop may use the measure kernels."""
    if enabled is False:
        return False
    if not NUMPY_AVAILABLE:
        return False
    if enabled is None and vectorization_disabled():
        return False
    return measure_supported(measure)


def make_fused_evaluator(
    tracker: "CorrelationTracker",
    detector: "ShiftDetector",
    builder: "RankingBuilder",
    enabled: Optional[bool] = None,
) -> Optional[FusedEvaluator]:
    """A :class:`FusedEvaluator` when the configuration supports one.

    ``enabled=None`` (the default) auto-detects: numpy importable, the
    measure and predictor carry kernels, and :data:`DISABLE_ENV_VAR` is
    unset.  ``enabled=False`` forces the scalar path; ``enabled=True``
    requests the vectorized path, overriding the environment switch but
    still returning ``None`` when numpy or a kernel is missing (the scalar
    fallback stays first-class rather than raising).
    """
    if enabled is False:
        return None
    if not NUMPY_AVAILABLE:
        return None
    if enabled is None and vectorization_disabled():
        return None
    if not measure_supported(tracker.measure):
        return None
    if not predictor_supported(detector.predictor):
        return None
    return FusedEvaluator(tracker, detector, builder)


def config_vectorizes(config) -> bool:
    """Whether a configuration's engines will evaluate vectorized.

    Pure function of the configuration and the environment — accurate for
    remote shard workers too, since process workers inherit both the
    interpreter (numpy availability) and the environment variables.
    """
    if not NUMPY_AVAILABLE or vectorization_disabled():
        return False
    return (
        config.correlation_measure in vectorizable_measures()
        and config.predictor in VECTORIZED_PREDICTOR_NAMES
    )
