"""Configuration of the enBlogue pipeline.

All tunables of the three stages live in one frozen dataclass so a complete
parameter setting can be named, compared and run side by side — the demo
"allows executing multiple query plans in parallel ... to compare emergent
topic rankings obtained from different parameter settings in real-time".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from repro.windows.decay import TWO_DAYS_SECONDS

#: Seconds per hour / day, for readable configuration values.
HOUR = 3600.0
DAY = 86400.0


@dataclass(frozen=True)
class EnBlogueConfig:
    """Parameters of the three-stage pipeline.

    Stage (i): ``seed_criterion`` ("popularity", "volatility" or "hybrid"),
    ``num_seeds`` and ``window_horizon`` (the sliding window from which tag
    popularity is measured).

    Stage (ii): ``correlation_measure`` ("jaccard", "overlap", "cosine",
    "pmi" or "kl") and ``min_pair_support`` (candidate pairs with fewer
    co-occurring documents in the window are ignored).

    Stage (iii): ``predictor`` ("last", "moving_average", "ewma", "linear",
    "holt"), ``history_length`` (number of past correlation values handed to
    the predictor), ``decay_half_life`` (the exponential decline of past
    prediction errors, "approximately 2 days" in the paper) and ``top_k``.

    ``evaluation_interval`` is the stream-time period between two
    re-evaluations of correlations and rankings (one hour by default).
    ``use_entities`` switches the pipeline between regular-tag mode and the
    combined tag/entity mode described in the Entity Tagging subsection.
    ``max_ranking_history`` bounds how many published rankings the engine
    retains (``None`` keeps every ranking, which suits replayed archives;
    long-running live streams should set a finite bound).

    ``tracking`` selects the pair-tracking mode: ``"exact"`` keeps every
    live pair (the paper's behaviour), ``"tiered"`` puts a Count-Min +
    Bloom sketch tier in front of the exact tracker so only pairs whose
    sketched windowed support reaches ``promote_support`` occupy exact
    state — bounded memory at unbounded tag cardinality.
    ``promote_support`` of 0 or 1 degenerates to the exact engine
    bit-identically; ``sketch_width``/``sketch_depth`` size the per-epoch
    Count-Min table (overcount bound ``e/width`` of the windowed total).
    """

    window_horizon: float = DAY
    evaluation_interval: float = HOUR
    seed_criterion: str = "popularity"
    num_seeds: int = 25
    min_seed_count: int = 3
    correlation_measure: str = "jaccard"
    min_pair_support: int = 2
    predictor: str = "moving_average"
    predictor_window: int = 6
    history_length: int = 24
    min_history: int = 3
    decay_half_life: float = TWO_DAYS_SECONDS
    top_k: int = 10
    use_entities: bool = True
    max_ranking_history: Optional[int] = None
    tracking: str = "exact"
    promote_support: int = 0
    sketch_width: int = 8192
    sketch_depth: int = 4
    name: str = "default"

    def __post_init__(self) -> None:
        if self.window_horizon <= 0:
            raise ValueError("window_horizon must be positive")
        if self.evaluation_interval <= 0:
            raise ValueError("evaluation_interval must be positive")
        if self.evaluation_interval > self.window_horizon:
            raise ValueError(
                "evaluation_interval must not exceed window_horizon"
            )
        if self.num_seeds <= 0:
            raise ValueError("num_seeds must be positive")
        if self.min_seed_count < 1:
            raise ValueError("min_seed_count must be at least 1")
        if self.min_pair_support < 1:
            raise ValueError("min_pair_support must be at least 1")
        if self.history_length < 2:
            raise ValueError("history_length must be at least 2")
        if self.min_history < 1:
            raise ValueError("min_history must be at least 1")
        if self.decay_half_life <= 0:
            raise ValueError("decay_half_life must be positive")
        if self.top_k <= 0:
            raise ValueError("top_k must be positive")
        if self.predictor_window <= 0:
            raise ValueError("predictor_window must be positive")
        if self.max_ranking_history is not None and self.max_ranking_history < 1:
            raise ValueError("max_ranking_history must be at least 1 (or None)")
        if self.seed_criterion not in ("popularity", "volatility", "hybrid"):
            raise ValueError(
                "seed_criterion must be 'popularity', 'volatility' or 'hybrid'"
            )
        if self.tracking not in ("exact", "tiered"):
            raise ValueError("tracking must be 'exact' or 'tiered'")
        if self.promote_support < 0:
            raise ValueError("promote_support must be non-negative")
        if self.sketch_width < 1:
            raise ValueError("sketch_width must be positive")
        if self.sketch_depth < 1:
            raise ValueError("sketch_depth must be positive")

    def with_overrides(self, **overrides: Any) -> "EnBlogueConfig":
        """A copy of this configuration with some fields replaced."""
        return replace(self, **overrides)

    def describe(self) -> Dict[str, Any]:
        """Flat dictionary of the parameters (for reports and benchmarks)."""
        return {
            "name": self.name,
            "window_horizon": self.window_horizon,
            "evaluation_interval": self.evaluation_interval,
            "seed_criterion": self.seed_criterion,
            "num_seeds": self.num_seeds,
            "correlation_measure": self.correlation_measure,
            "predictor": self.predictor,
            "history_length": self.history_length,
            "decay_half_life": self.decay_half_life,
            "top_k": self.top_k,
            "use_entities": self.use_entities,
            "max_ranking_history": self.max_ranking_history,
            "tracking": self.tracking,
            "promote_support": self.promote_support,
        }


def news_archive_config(name: str = "news-archive") -> EnBlogueConfig:
    """Configuration suited to the daily-granularity NYT-style archive."""
    return EnBlogueConfig(
        name=name,
        window_horizon=7 * DAY,
        evaluation_interval=DAY,
        num_seeds=20,
        predictor="moving_average",
        predictor_window=5,
        history_length=21,
        decay_half_life=2 * DAY,
        top_k=10,
    )


def live_stream_config(name: str = "live-stream") -> EnBlogueConfig:
    """Configuration suited to the hourly-granularity tweet/RSS streams."""
    return EnBlogueConfig(
        name=name,
        window_horizon=2 * DAY,
        evaluation_interval=HOUR,
        num_seeds=30,
        predictor="ewma",
        history_length=48,
        decay_half_life=2 * DAY,
        top_k=10,
        # A week of hourly rankings: live streams run indefinitely, so the
        # ranking history must not grow with stream length.
        max_ranking_history=7 * 24,
    )
