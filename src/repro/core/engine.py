"""The EnBlogue façade: stages (i)-(iii) wired into a streaming engine.

``EnBlogue.process`` ingests one tagged document at a time (either a
:class:`~repro.streams.item.StreamItem` or anything exposing ``timestamp``,
``tags`` and optionally ``entities``/``text``); ``EnBlogue.process_batch``
ingests a time-ordered chunk in one call, splitting it internally at
evaluation boundaries so the produced rankings are identical to the
document-at-a-time path.  Whenever stream time crosses an evaluation
boundary the engine re-selects seed tags, samples the correlations of all
candidate pairs, scores their shifts and publishes a new top-k ranking;
registered ranking listeners (e.g. the portal's push dispatcher) and user
profiles see the update immediately, without polling.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.config import EnBlogueConfig
from repro.core.correlation import make_measure
from repro.core.personalization import PersonalizationEngine, UserProfile
from repro.core.ranking import RankingBuilder
from repro.core.seeds import make_seed_selector
from repro.core.shift import ShiftDetector, ShiftScore
from repro.core.tracker import CorrelationTracker
from repro.core.types import Ranking, TagPair, normalize_tag
from repro.entity.tagger import EntityTagger
from repro.streams.item import StreamItem
from repro.streams.operators import FunctionSink
from repro.timeseries.predictors import make_predictor
from repro.windows.decay import ExponentialDecay
from repro.windows.timeseries import TimeSeries

RankingListener = Callable[[Ranking], None]


class EnBlogue:
    """Emergent topic detection over a Web 2.0 document stream."""

    def __init__(
        self,
        config: Optional[EnBlogueConfig] = None,
        entity_tagger: Optional[EntityTagger] = None,
    ):
        self.config = config or EnBlogueConfig()
        measure = make_measure(self.config.correlation_measure)
        self.tracker = CorrelationTracker(
            window_horizon=self.config.window_horizon,
            measure=measure,
            min_pair_support=self.config.min_pair_support,
            history_length=self.config.history_length,
            use_entities=self.config.use_entities,
            track_usage=(self.config.correlation_measure == "kl"),
        )
        self.seed_selector = make_seed_selector(
            self.config.seed_criterion,
            num_seeds=self.config.num_seeds,
            min_count=self.config.min_seed_count,
        )
        predictor_kwargs = {}
        if self.config.predictor == "moving_average":
            predictor_kwargs["window"] = self.config.predictor_window
        self.detector = ShiftDetector(
            predictor=make_predictor(self.config.predictor, **predictor_kwargs),
            decay=ExponentialDecay(self.config.decay_half_life),
            min_history=self.config.min_history,
        )
        self.ranking_builder = RankingBuilder(top_k=self.config.top_k)
        self.personalization = PersonalizationEngine()
        self.entity_tagger = entity_tagger

        self._rankings: List[Ranking] = []
        self._listeners: List[RankingListener] = []
        self._current_seeds: List[str] = []
        self._next_evaluation: Optional[float] = None
        self._documents_processed = 0

    # -- ingestion ------------------------------------------------------------

    @property
    def documents_processed(self) -> int:
        return self._documents_processed

    @property
    def current_seeds(self) -> List[str]:
        """Seed tags chosen at the most recent evaluation."""
        return list(self._current_seeds)

    def process(self, document) -> Optional[Ranking]:
        """Ingest one document; returns a new ranking if one was produced.

        ``document`` may be a :class:`StreamItem`, a dataset
        :class:`~repro.datasets.documents.Document`, or any object with
        ``timestamp`` and ``tags`` attributes (``entities`` and ``text`` are
        optional).  When an entity tagger was supplied and the document has
        text but no entities, entities are extracted on the fly.  Tag
        normalisation (strip + lower-case) happens inside the tracker, so
        direct tracker callers see the same tag identities as this façade.
        """
        timestamp, tags, entities = self._prepare(document)

        if self._next_evaluation is None:
            self._next_evaluation = timestamp + self.config.evaluation_interval

        ranking: Optional[Ranking] = None
        # Catch up on evaluation boundaries crossed by a jump in stream time
        # (replayed archives can have quiet stretches spanning many periods).
        while timestamp >= self._next_evaluation:
            ranking = self._evaluate(self._next_evaluation)
            self._next_evaluation += self.config.evaluation_interval

        self.tracker.observe(timestamp, tags, entities)
        self._documents_processed += 1
        return ranking

    def process_many(self, documents: Iterable) -> List[Ranking]:
        """Ingest a whole corpus or stream; returns every ranking produced."""
        produced: List[Ranking] = []
        for document in documents:
            ranking = self.process(document)
            if ranking is not None:
                produced.append(ranking)
        return produced

    def process_batch(self, documents: Iterable) -> List[Ranking]:
        """Ingest a time-ordered chunk of documents in one call.

        The chunk is split internally at evaluation boundaries: documents up
        to each boundary are handed to the tracker as one batch
        (:meth:`CorrelationTracker.observe_many`), the evaluation runs, and
        ingestion resumes — so the rankings produced are identical to feeding
        the same documents through :meth:`process` one at a time.  Returns
        every ranking produced (one per crossed boundary).
        """
        interval = self.config.evaluation_interval
        produced: List[Ranking] = []
        pending: List[tuple] = []
        for document in documents:
            observation = self._prepare(document)
            timestamp = observation[0]
            if self._next_evaluation is None:
                self._next_evaluation = timestamp + interval
            if timestamp >= self._next_evaluation:
                # Flush and count the documents preceding the boundary, so
                # listeners fired by the evaluation observe the same
                # documents_processed as on the per-document path.
                if pending:
                    self._documents_processed += self.tracker.observe_many(pending)
                    pending = []
                while timestamp >= self._next_evaluation:
                    produced.append(self._evaluate(self._next_evaluation))
                    self._next_evaluation += interval
            pending.append(observation)
        if pending:
            self._documents_processed += self.tracker.observe_many(pending)
        return produced

    def evaluate_now(self, timestamp: Optional[float] = None) -> Ranking:
        """Force an evaluation at ``timestamp`` (default: latest stream time)."""
        if timestamp is None:
            timestamp = self.tracker.latest_timestamp
        if timestamp is None:
            raise ValueError("no documents processed yet")
        return self._evaluate(timestamp)

    # -- results -----------------------------------------------------------------

    def current_ranking(self) -> Optional[Ranking]:
        """The most recently published ranking (None before the first one)."""
        if not self._rankings:
            return None
        return self._rankings[-1]

    def ranking_history(self) -> List[Ranking]:
        return list(self._rankings)

    def ranking_for_user(self, user_id: str,
                         top_k: Optional[int] = None) -> Optional[Ranking]:
        """The current ranking personalized for ``user_id``."""
        current = self.current_ranking()
        if current is None:
            return None
        return self.personalization.personalize(current, user_id, top_k=top_k)

    def correlation_history(self, tag_a: str, tag_b: str) -> TimeSeries:
        """Correlation history of a pair (for plots such as Figure 1)."""
        return self.tracker.history(
            TagPair(normalize_tag(tag_a), normalize_tag(tag_b))
        )

    def topic_score(self, tag_a: str, tag_b: str,
                    timestamp: Optional[float] = None) -> float:
        """Current decayed score of a pair."""
        if timestamp is None:
            timestamp = self.tracker.latest_timestamp or 0.0
        return self.detector.score_at(
            TagPair(normalize_tag(tag_a), normalize_tag(tag_b)), timestamp
        )

    # -- integration ------------------------------------------------------------------

    def register_user(self, profile: UserProfile) -> UserProfile:
        """Register a personalization profile (show case 3)."""
        return self.personalization.register(profile)

    def add_ranking_listener(self, listener: RankingListener) -> None:
        """Call ``listener`` with every new ranking (push-based updates)."""
        self._listeners.append(listener)

    def as_sink(self, name: Optional[str] = None) -> FunctionSink:
        """A stream sink feeding this engine, for use in operator DAGs.

        The sink is batch-aware: chunks pushed by batch-mode sources land in
        :meth:`process_batch`, single items in :meth:`process`.
        """
        return FunctionSink(
            self.process,
            name=name or f"enblogue[{self.config.name}]",
            batch_callback=self.process_batch,
        )

    # -- internals -----------------------------------------------------------------------

    def _prepare(self, document) -> tuple:
        """Extract ``(timestamp, tags, entities)``, running the entity tagger."""
        timestamp = float(getattr(document, "timestamp"))
        tags = getattr(document, "tags", ()) or ()
        entities = getattr(document, "entities", ()) or ()
        if not entities and self.entity_tagger is not None:
            text = str(getattr(document, "text", "") or "")
            if text:
                entities = self.entity_tagger.tag(text)
        return timestamp, tags, entities

    def _evaluate(self, timestamp: float) -> Ranking:
        window = self.tracker.tag_window
        self._current_seeds = self.seed_selector.select(
            window, history=self.tracker.count_history()
        )
        observations = self.tracker.evaluate(timestamp, self._current_seeds)
        shift_scores: List[ShiftScore] = []
        for observation in observations:
            # The tracker already appended the current value; the predictor
            # must only see the values that precede it.
            previous = self.tracker.history(observation.pair).previous_values()
            shift_scores.append(self.detector.update(observation, previous))
        ranking = self.ranking_builder.build(
            timestamp, shift_scores, detector=self.detector,
            label=self.config.name,
        )
        self._rankings.append(ranking)
        limit = self.config.max_ranking_history
        if limit is not None and len(self._rankings) > limit:
            del self._rankings[: len(self._rankings) - limit]
        for listener in self._listeners:
            listener(ranking)
        return ranking
