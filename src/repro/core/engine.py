"""The EnBlogue façade: stages (i)-(iii) wired into a streaming engine.

``EnBlogue.process`` ingests one tagged document at a time (either a
:class:`~repro.streams.item.StreamItem` or anything exposing ``timestamp``,
``tags`` and optionally ``entities``/``text``); ``EnBlogue.process_batch``
ingests a time-ordered chunk in one call, splitting it internally at
evaluation boundaries so the produced rankings are identical to the
document-at-a-time path.  Whenever stream time crosses an evaluation
boundary the engine re-selects seed tags, samples the correlations of all
candidate pairs, scores their shifts and publishes a new top-k ranking;
registered ranking listeners (e.g. the portal's push dispatcher) and user
profiles see the update immediately, without polling.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.config import EnBlogueConfig
from repro.core.correlation import make_measure
from repro.core.personalization import PersonalizationEngine, UserProfile
from repro.core.ranking import RankingBuilder
from repro.core.seeds import make_seed_selector
from repro.core.shift import ShiftDetector, ShiftScore
from repro.core.tracker import CorrelationTracker
from repro.core.types import Ranking, TagPair, normalize_tag
from repro.core.vectorized import make_fused_evaluator
from repro.entity.tagger import EntityTagger
from repro.observability import NOOP, Observability
from repro.persistence.codec import (
    optional_float,
    ranking_from_state,
    ranking_to_state,
)
from repro.persistence.snapshot import SnapshotMismatchError, require_state
from repro.persistence.store import append_delta, write_checkpoint
from repro.sketches.tier import SketchTier
from repro.streams.item import StreamItem
from repro.streams.operators import FunctionSink
from repro.timeseries.predictors import make_predictor
from repro.windows.decay import ExponentialDecay
from repro.windows.timeseries import TimeSeries

RankingListener = Callable[[Ranking], None]


@dataclass
class _DeltaChain:
    """Where an engine's journal chain lives and how far it has grown."""

    directory: str
    base_generation: int
    newest_generation: int


def make_tracker(
    config: EnBlogueConfig,
    track_usage: Optional[bool] = None,
    vectorize: Optional[bool] = None,
    counter_stripes: int = 1,
    tier: Optional[SketchTier] = None,
) -> CorrelationTracker:
    """The correlation tracker a configuration prescribes.

    Shared by the :class:`EnBlogue` façade and the sharded engine's workers
    (which pass ``track_usage=False``: co-tag usage is a global statistic
    that cannot be maintained per shard), so both build identical stage (ii)
    state.  ``vectorize``/``counter_stripes`` are runtime choices (batched
    sampling kernels, MRV-striped usage counters), not structural ones:
    they never affect produced values or snapshot compatibility.

    ``tier`` is deliberately explicit rather than derived from the config:
    in the sharded engine admission runs once, globally, in the
    coordinator — shard workers must build tier-less trackers even under a
    tiered configuration, because their pair stream is already admitted.
    """
    if track_usage is None:
        track_usage = config.correlation_measure == "kl"
    return CorrelationTracker(
        window_horizon=config.window_horizon,
        measure=make_measure(config.correlation_measure),
        min_pair_support=config.min_pair_support,
        history_length=config.history_length,
        use_entities=config.use_entities,
        track_usage=track_usage,
        vectorize=vectorize,
        counter_stripes=counter_stripes,
        tier=tier,
    )


def make_sketch_tier(config: EnBlogueConfig) -> Optional[SketchTier]:
    """The sketch admission tier a configuration prescribes, or ``None``.

    A tier exists only for ``tracking="tiered"`` with ``promote_support``
    of at least 2: thresholds 0 and 1 admit every occurrence at weight 1,
    which is exactly the exact engine — running it without the sketches is
    what pins the degenerate case bit-identical for free.
    """
    if config.tracking != "tiered" or config.promote_support < 2:
        return None
    return SketchTier(
        window_horizon=config.window_horizon,
        promote_support=config.promote_support,
        width=config.sketch_width,
        depth=config.sketch_depth,
    )


def bind_tier_gauges(observability: Observability, tier: SketchTier) -> None:
    """Expose a live tier's occupancy and error gauges on the registry.

    Reads are live callbacks (collection-time), so scrapes always see the
    current tier without the engine pushing per-update metrics.
    """
    if not observability.enabled:
        return
    registry = observability.registry
    registry.gauge("repro_tracking_promotions").set_function(
        lambda: tier.promotions)
    registry.gauge("repro_tracking_filtered_occurrences").set_function(
        lambda: tier.filtered)
    registry.gauge("repro_tracking_sketched_keys").set_function(
        lambda: tier.tracked_keys)
    registry.gauge("repro_tracking_sketch_error_bound").set_function(
        lambda: tier.error_bound)


def make_shift_detector(config: EnBlogueConfig) -> ShiftDetector:
    """The stage (iii) detector a configuration prescribes (shared as above)."""
    predictor_kwargs = {}
    if config.predictor == "moving_average":
        predictor_kwargs["window"] = config.predictor_window
    return ShiftDetector(
        predictor=make_predictor(config.predictor, **predictor_kwargs),
        decay=ExponentialDecay(config.decay_half_life),
        min_history=config.min_history,
    )


class DetectionEngineBase:
    """Shared surface of the single and the sharded detection engine.

    Owns the boundary bookkeeping — the evaluation schedule, the published
    rankings with their ``max_ranking_history`` bound, listeners,
    personalization and the document-preparation rule — so both engines
    run literally the same ingestion loop; they differ only in the hooks:
    ``_ingest_document`` (where a prepared document's statistics go),
    ``_latest_timestamp`` and ``_evaluate``.  Keeping this in one place is
    part of the sharded engine's bit-identical guarantee: there is no
    second copy of the catch-up loop to drift.
    """

    def __init__(
        self,
        config: Optional[EnBlogueConfig] = None,
        entity_tagger: Optional[EntityTagger] = None,
        observability: Optional[Observability] = None,
    ):
        self.config = config or EnBlogueConfig()
        self.seed_selector = make_seed_selector(
            self.config.seed_criterion,
            num_seeds=self.config.num_seeds,
            min_count=self.config.min_seed_count,
        )
        self.ranking_builder = RankingBuilder(top_k=self.config.top_k)
        self.personalization = PersonalizationEngine()
        self.entity_tagger = entity_tagger
        # Observability is runtime wiring, never stream state: the NOOP
        # default costs one no-op call per instrumented site and zero
        # allocations per event, metrics never enter snapshot()/restore()
        # (the serving CLI persists them through manifest extras instead),
        # and rankings are bit-identical with instrumentation on or off.
        self.observability = observability or NOOP
        registry = self.observability.registry
        self._metric_documents = registry.counter(
            "repro_core_documents_total")
        self._metric_batches = registry.counter("repro_core_batches_total")
        self._metric_rankings = registry.counter("repro_core_rankings_total")
        self._metric_evaluation_seconds = None

        self._rankings: List[Ranking] = []
        self._listeners: List[RankingListener] = []
        self._current_seeds: List[str] = []
        self._next_evaluation: Optional[float] = None
        self._documents_processed = 0
        # Delta-checkpoint chain: rankings published since the last drain
        # (None = not recording) and the chain the next
        # save_delta_checkpoint appends to.
        self._delta_rankings: Optional[List[Ranking]] = None
        self._delta_chain: Optional[_DeltaChain] = None

    # -- hooks ----------------------------------------------------------------

    def _ingest_document(self, timestamp: float, tags, entities) -> None:
        """Feed one prepared document into the engine's statistics."""
        raise NotImplementedError

    def _latest_timestamp(self) -> Optional[float]:
        """The most recent stream time seen (None before any document)."""
        raise NotImplementedError

    def _evaluate(self, timestamp: float) -> Ranking:
        """Re-select seeds, score candidates and publish a new ranking."""
        raise NotImplementedError

    # -- observability ---------------------------------------------------------

    def _bind_evaluation_metric(self, path: str) -> None:
        """Bind the evaluation histogram child for this engine's live path.

        Called by subclasses once they know whether the scalar or the
        vectorized evaluator is active — the label is how a silent
        fallback shows up on ``GET /metrics``.
        """
        self._metric_evaluation_seconds = self.observability.registry \
            .histogram("repro_core_evaluation_seconds").labels(path=path)

    def _timed_evaluate(self, timestamp: float) -> Ranking:
        """:meth:`_evaluate` with its wall time fed to the histogram."""
        if not self.observability.enabled:
            return self._evaluate(timestamp)
        clock = self.observability.clock
        start = clock()
        ranking = self._evaluate(timestamp)
        if self._metric_evaluation_seconds is not None:
            self._metric_evaluation_seconds.observe(clock() - start)
        return ranking

    def shard_health(self) -> List[dict]:
        """Per-shard health records; empty for unsharded engines."""
        return []

    # -- ingestion ------------------------------------------------------------

    @property
    def documents_processed(self) -> int:
        return self._documents_processed

    @property
    def current_seeds(self) -> List[str]:
        """Seed tags chosen at the most recent evaluation."""
        return list(self._current_seeds)

    def process(self, document) -> Optional[Ranking]:
        """Ingest one document; returns a new ranking if one was produced.

        ``document`` may be a :class:`StreamItem`, a dataset
        :class:`~repro.datasets.documents.Document`, or any object with
        ``timestamp`` and ``tags`` attributes (``entities`` and ``text`` are
        optional).  When an entity tagger was supplied and the document has
        text but no entities, entities are extracted on the fly.  Tag
        normalisation (strip + lower-case) happens inside the tracker, so
        direct tracker callers see the same tag identities as this façade.
        """
        timestamp, tags, entities = self._prepare(document)

        if self._next_evaluation is None:
            self._next_evaluation = timestamp + self.config.evaluation_interval

        ranking: Optional[Ranking] = None
        # Catch up on evaluation boundaries crossed by a jump in stream time
        # (replayed archives can have quiet stretches spanning many periods).
        while timestamp >= self._next_evaluation:
            ranking = self._timed_evaluate(self._next_evaluation)
            self._next_evaluation += self.config.evaluation_interval

        self._ingest_document(timestamp, tags, entities)
        self._documents_processed += 1
        self._metric_documents.inc()
        return ranking

    def process_many(self, documents: Iterable) -> List[Ranking]:
        """Ingest a whole corpus or stream; returns every ranking produced."""
        produced: List[Ranking] = []
        for document in documents:
            ranking = self.process(document)
            if ranking is not None:
                produced.append(ranking)
        return produced

    def process_batch(self, documents: Iterable) -> List[Ranking]:
        """Ingest a time-ordered chunk of documents in one call.

        The chunk is split internally at evaluation boundaries: documents up
        to each boundary are handed to :meth:`_ingest_observations` as one
        batch, the evaluation runs, and ingestion resumes — so the rankings
        produced are identical to feeding the same documents through
        :meth:`process` one at a time, and listeners fired by a boundary
        observe the same ``documents_processed`` count on every path.

        The whole chunk is prepared and validated *before* any state is
        touched, so a rejected (out-of-order) document leaves the engine
        unchanged — no ranking is published, nothing is ingested.  Returns
        every ranking produced (one per crossed boundary).
        """
        interval = self.config.evaluation_interval
        observations = self._prepare_batch(documents)
        produced: List[Ranking] = []
        pending: List[tuple] = []
        # The trace id derives from documents_processed at batch start —
        # checkpointed state, so a resumed run reproduces the same ids.
        with self.observability.tracer.trace(
                self._documents_processed) as root:
            root.set(documents=len(observations))
            for observation in observations:
                timestamp = observation[0]
                if self._next_evaluation is None:
                    self._next_evaluation = timestamp + interval
                if timestamp >= self._next_evaluation:
                    if pending:
                        self._ingest_pending(pending)
                        pending = []
                    while timestamp >= self._next_evaluation:
                        produced.append(
                            self._timed_evaluate(self._next_evaluation)
                        )
                        self._next_evaluation += interval
                pending.append(observation)
            if pending:
                self._ingest_pending(pending)
            self._metric_batches.inc()
            if produced:
                root.set(rankings=len(produced))
            # Inside the root span, so the record carries the batch's
            # deterministic trace id — the /logs ↔ /trace join key.
            self.observability.log.emit(
                "batch",
                documents=len(observations),
                rankings=len(produced),
                documents_processed=self._documents_processed,
            )
        return produced

    def _ingest_pending(self, pending: List[tuple]) -> None:
        """Feed one boundary-free run, under an ``ingest`` span."""
        with self.observability.tracer.span("ingest") as span:
            ingested = self._ingest_observations(pending)
            span.set(documents=ingested)
        self._documents_processed += ingested
        self._metric_documents.inc(ingested)

    def _prepare_batch(self, documents: Iterable) -> List[tuple]:
        """Prepare a chunk and validate its time order against the stream."""
        prepared: List[tuple] = []
        latest = self._latest_timestamp()
        for document in documents:
            observation = self._prepare(document)
            timestamp = observation[0]
            if latest is not None and timestamp < latest:
                raise ValueError(
                    f"out-of-order document: {timestamp} < {latest}"
                )
            latest = timestamp
            prepared.append(observation)
        return prepared

    def _ingest_observations(self, observations: List[tuple]) -> int:
        """Feed one boundary-free run of prepared documents; returns count."""
        ingested = 0
        for timestamp, tags, entities in observations:
            self._ingest_document(timestamp, tags, entities)
            ingested += 1
        return ingested

    def evaluate_now(self, timestamp: Optional[float] = None) -> Ranking:
        """Force an evaluation at ``timestamp`` (default: latest stream time)."""
        if timestamp is None:
            timestamp = self._latest_timestamp()
        if timestamp is None:
            raise ValueError("no documents processed yet")
        return self._timed_evaluate(timestamp)

    # -- results --------------------------------------------------------------

    def runtime_info(self) -> Dict[str, object]:
        """How this engine actually evaluates: engine kind, backend,
        shard count and whether the scalar or the vectorized path is live.

        The guard against *silent* fallback: surfaced by ``GET /status``
        and ``replay --verbose`` so a missing numpy or an unsupported
        measure is visible instead of quietly costing throughput.
        """
        raise NotImplementedError

    def current_ranking(self) -> Optional[Ranking]:
        """The most recently published ranking (None before the first one)."""
        if not self._rankings:
            return None
        return self._rankings[-1]

    def ranking_history(self) -> List[Ranking]:
        return list(self._rankings)

    def ranking_for_user(self, user_id: str,
                         top_k: Optional[int] = None) -> Optional[Ranking]:
        """The current ranking personalized for ``user_id``."""
        current = self.current_ranking()
        if current is None:
            return None
        return self.personalization.personalize(current, user_id, top_k=top_k)

    # -- integration ----------------------------------------------------------

    def register_user(self, profile: UserProfile) -> UserProfile:
        """Register a personalization profile (show case 3)."""
        return self.personalization.register(profile)

    def add_ranking_listener(self, listener: RankingListener) -> None:
        """Call ``listener`` with every new ranking (push-based updates)."""
        self._listeners.append(listener)

    def as_sink(self, name: Optional[str] = None) -> FunctionSink:
        """A stream sink feeding this engine, for use in operator DAGs.

        The sink is batch-aware: chunks pushed by batch-mode sources land in
        :meth:`process_batch`, single items in :meth:`process`.
        """
        return FunctionSink(
            self.process,
            name=name or self._sink_name(),
            batch_callback=self.process_batch,
        )

    def _sink_name(self) -> str:
        return f"enblogue[{self.config.name}]"

    # -- persistence ----------------------------------------------------------

    def snapshot(self) -> dict:
        """The engine's complete state as a versioned, JSON-safe dict."""
        raise NotImplementedError

    def restore(self, state: Mapping) -> None:
        """Replace this engine's state with a :meth:`snapshot`'s."""
        raise NotImplementedError

    def save_checkpoint(
        self, directory, extras: Optional[Mapping] = None,
        track_deltas: bool = False,
    ) -> Path:
        """Persist :meth:`snapshot` into ``directory`` (see the store docs).

        Safe to call between any two ``process``/``process_batch`` calls —
        the snapshot then captures a boundary-consistent state that a
        restored engine continues from bit-identically.  ``extras`` lands
        in the checkpoint manifest (the CLI stores its dataset parameters
        there so ``--resume`` can rebuild the stream).

        With ``track_deltas`` the checkpoint becomes the *base* of a delta
        chain: the engine starts recording what changes, and subsequent
        :meth:`save_delta_checkpoint` calls append journal segments that
        cost kilobytes proportional to the new documents instead of
        re-serialising the whole window.  Without it, any active recording
        is stopped (the chain is re-based elsewhere or abandoned).
        """
        generation = write_checkpoint(
            directory, self.snapshot(), extras,
            observer=self.observability.store_observer("full"),
        )
        if track_deltas:
            self._begin_delta_tracking()
            self._delta_chain = _DeltaChain(
                directory=str(Path(directory).resolve()),
                base_generation=generation,
                newest_generation=generation,
            )
        else:
            self._stop_delta_tracking()
        return Path(directory)

    def save_delta_checkpoint(self, directory) -> Path:
        """Append a journal segment of everything since the last save.

        Requires an active delta chain — a prior
        ``save_checkpoint(directory, track_deltas=True)`` into the *same*
        directory — and appends one CRC-framed segment per component at
        the chain's next generation (one durability barrier, kilobytes
        proportional to the new documents).  Restoring the directory
        replays base + journal into exactly this engine's current state;
        a crash mid-append costs at most this tick.  Manifest ``extras``
        are recorded at base/re-base time and carry over unchanged.
        """
        if self._delta_chain is None:
            raise SnapshotMismatchError(
                "no delta baseline: call save_checkpoint(directory, "
                "track_deltas=True) before save_delta_checkpoint"
            )
        chain = self._delta_chain
        resolved = str(Path(directory).resolve())
        if resolved != chain.directory:
            raise SnapshotMismatchError(
                f"delta checkpoints must extend their base chain: the "
                f"baseline lives in {chain.directory}, not {resolved}"
            )
        try:
            delta = self.delta_since(chain.newest_generation + 1)
            generation = append_delta(
                directory, delta,
                expected_base=chain.base_generation,
                expected_generation=chain.newest_generation,
                observer=self.observability.store_observer("delta"),
            )
        except BaseException:
            # The drain already emptied the component buffers, so this
            # tick can never be re-journaled: a retried append would
            # commit a segment with a silent hole.  Disarm the chain —
            # the next save must re-base with a full checkpoint.
            self._stop_delta_tracking()
            raise
        chain.newest_generation = generation
        return Path(directory)

    def _begin_delta_tracking(self) -> None:
        """Arm delta recording in every stateful component (hook)."""
        self._delta_rankings = []

    def _stop_delta_tracking(self) -> None:
        """Disarm delta recording and drop any buffered chain state (hook)."""
        self._delta_rankings = None
        self._delta_chain = None

    def delta_since(self, generation: int) -> dict:
        """Everything that changed since the last base/drain (hook)."""
        raise NotImplementedError

    def _base_delta(self, generation: int) -> dict:
        """The boundary-bookkeeping delta shared by both engines.

        Counters and seeds are absolute (they are tiny); rankings are the
        ones published since the last drain, appended on apply under the
        same ``max_ranking_history`` bound as :meth:`_publish`.
        """
        rankings = self._delta_rankings
        if rankings is None:
            raise SnapshotMismatchError(
                "no delta baseline: call save_checkpoint(directory, "
                "track_deltas=True) before delta_since"
            )
        self._delta_rankings = []
        return {
            "since": int(generation),
            "documents_processed": self._documents_processed,
            "current_seeds": list(self._current_seeds),
            "next_evaluation": self._next_evaluation,
            "rankings": [ranking_to_state(r) for r in rankings],
        }

    def _base_snapshot(self) -> dict:
        """The boundary bookkeeping shared by both engines."""
        return {
            "config": asdict(self.config),
            "documents_processed": self._documents_processed,
            "current_seeds": list(self._current_seeds),
            "next_evaluation": self._next_evaluation,
            "rankings": [ranking_to_state(r) for r in self._rankings],
        }

    def _restore_base(self, state: Mapping) -> None:
        """Restore the shared bookkeeping; rejects foreign configurations.

        Restoring under a different configuration would silently change
        measure/predictor semantics mid-stream, so every differing config
        field is named in the error instead.
        """
        expected = asdict(self.config)
        found = dict(state["config"])
        if found != expected:
            differing = sorted(
                key
                for key in set(expected) | set(found)
                if expected.get(key) != found.get(key)
            )
            raise SnapshotMismatchError(
                "checkpoint was taken under a different configuration; "
                f"differing fields: {', '.join(differing)}"
            )
        self._documents_processed = int(state["documents_processed"])
        self._current_seeds = [str(seed) for seed in state["current_seeds"]]
        self._next_evaluation = optional_float(state["next_evaluation"])
        self._rankings = [ranking_from_state(r) for r in state["rankings"]]
        # A restore invalidates any recorded-but-undrained delta chain.
        self._stop_delta_tracking()

    # -- shared internals ------------------------------------------------------

    def _prepare(self, document) -> tuple:
        """Extract ``(timestamp, tags, entities)``, running the entity tagger."""
        timestamp = float(getattr(document, "timestamp"))
        tags = getattr(document, "tags", ()) or ()
        entities = getattr(document, "entities", ()) or ()
        if not entities and self.entity_tagger is not None:
            text = str(getattr(document, "text", "") or "")
            if text:
                entities = self.entity_tagger.tag(text)
        return timestamp, tags, entities

    def _publish(self, ranking: Ranking) -> Ranking:
        """Record a new ranking (bounded history) and notify listeners."""
        self._rankings.append(ranking)
        if self._delta_rankings is not None:
            self._delta_rankings.append(ranking)
        limit = self.config.max_ranking_history
        if limit is not None and len(self._rankings) > limit:
            del self._rankings[: len(self._rankings) - limit]
        self._metric_rankings.inc()
        if self._listeners:
            with self.observability.tracer.span("publish") as span:
                span.set(topics=len(ranking.topics))
                for listener in self._listeners:
                    listener(ranking)
        return ranking


class EnBlogue(DetectionEngineBase):
    """Emergent topic detection over a Web 2.0 document stream."""

    def __init__(
        self,
        config: Optional[EnBlogueConfig] = None,
        entity_tagger: Optional[EntityTagger] = None,
        vectorize: Optional[bool] = None,
        observability: Optional[Observability] = None,
    ):
        super().__init__(config, entity_tagger, observability=observability)
        tier = make_sketch_tier(self.config)
        self.tracker = make_tracker(self.config, vectorize=vectorize,
                                    tier=tier)
        if tier is not None:
            bind_tier_gauges(self.observability, tier)
        self.detector = make_shift_detector(self.config)
        # Fused batched evaluation (None → scalar path): built once; it
        # mirrors tracker/detector state in columnar arrays and rebuilds
        # lazily whenever the scalar state mutates behind its back.
        self._fused = make_fused_evaluator(
            self.tracker, self.detector, self.ranking_builder,
            enabled=vectorize,
        )
        self._bind_evaluation_metric(self.evaluation_path)

    @property
    def evaluation_path(self) -> str:
        """``"vectorized"`` when the fused batched path is live."""
        return "vectorized" if self._fused is not None else "scalar"

    def runtime_info(self) -> Dict[str, object]:
        return {
            "engine": "single",
            "backend": "inline",
            "shards": 1,
            "evaluation_path": self.evaluation_path,
            "tracking": "tiered" if self.tracker.tier is not None else "exact",
            "promote_support": self.config.promote_support,
        }

    # -- hooks ----------------------------------------------------------------

    def _ingest_document(self, timestamp: float, tags, entities) -> None:
        self.tracker.observe(timestamp, tags, entities)

    def _latest_timestamp(self) -> Optional[float]:
        return self.tracker.latest_timestamp

    def _ingest_observations(self, observations: List[tuple]) -> int:
        # One eviction pass and C-speed counter updates for the whole
        # boundary-free run — the engine's batch-path speedup.
        return self.tracker.observe_many(observations)

    # -- results -----------------------------------------------------------------

    def correlation_history(self, tag_a: str, tag_b: str) -> TimeSeries:
        """Correlation history of a pair (for plots such as Figure 1)."""
        return self.tracker.history(
            TagPair(normalize_tag(tag_a), normalize_tag(tag_b))
        )

    def topic_score(self, tag_a: str, tag_b: str,
                    timestamp: Optional[float] = None) -> float:
        """Current decayed score of a pair."""
        if timestamp is None:
            timestamp = self.tracker.latest_timestamp or 0.0
        return self.detector.score_at(
            TagPair(normalize_tag(tag_a), normalize_tag(tag_b)), timestamp
        )

    # -- persistence ---------------------------------------------------------------

    #: Snapshot envelope of the single engine (see ``repro.persistence``).
    SNAPSHOT_KIND = "enblogue"

    def snapshot(self) -> dict:
        """The engine's complete state as a versioned, JSON-safe dict.

        Listeners and user profiles are runtime wiring, not stream state —
        a restored engine starts with none and callers re-register them.
        """
        return {
            "kind": self.SNAPSHOT_KIND,
            "version": 1,
            **self._base_snapshot(),
            "tracker": self.tracker.snapshot(),
            "detector": self.detector.snapshot(),
            "builder": self.ranking_builder.snapshot(),
        }

    def restore(self, state: Mapping) -> None:
        """Adopt a :meth:`snapshot`'s state; continuation is bit-identical.

        The engine must be constructed with the configuration the snapshot
        was taken under (:func:`~repro.persistence.resume.load_engine`
        rebuilds it from the checkpoint manifest automatically).
        """
        require_state(state, self.SNAPSHOT_KIND, 1)
        self._restore_base(state)
        self.tracker.restore(state["tracker"])
        self.detector.restore(state["detector"])
        self.ranking_builder.restore(state["builder"])

    def _begin_delta_tracking(self) -> None:
        super()._begin_delta_tracking()
        self.tracker.begin_delta_tracking()
        self.detector.begin_delta_tracking()
        self.ranking_builder.begin_delta_tracking()

    def _stop_delta_tracking(self) -> None:
        super()._stop_delta_tracking()
        self.tracker.end_delta_tracking()
        self.detector.end_delta_tracking()
        self.ranking_builder.end_delta_tracking()

    def delta_since(self, generation: int) -> dict:
        """Everything that changed since the last base snapshot/drain.

        The journal-segment companion of :meth:`snapshot`:
        :func:`repro.persistence.delta.apply_engine_delta` folds the
        result onto the base snapshot dict and reproduces the current
        :meth:`snapshot` exactly, which is what keeps a base + journal
        restore bit-identical to an uninterrupted run.
        """
        return {
            "kind": "enblogue-delta",
            "version": 1,
            **self._base_delta(generation),
            "tracker": self.tracker.delta_since(generation),
            "detector": self.detector.delta_since(generation),
            "builder": self.ranking_builder.delta_since(generation),
        }

    # -- internals -----------------------------------------------------------------------

    def _evaluate(self, timestamp: float) -> Ranking:
        tracer = self.observability.tracer
        window = self.tracker.tag_window
        with tracer.span("seed_select") as span:
            self._current_seeds = self.seed_selector.select(
                window, history=self.tracker.count_history()
            )
            span.set(seeds=len(self._current_seeds))
        if self._fused is not None:
            # Same boundary protocol as tracker.evaluate (advance + count
            # row), then one batched pass replaces the whole per-pair
            # sample/predict/score/rank loop — bit-identically.
            with tracer.span("evaluate_vectorized") as span:
                self.tracker.advance_to(timestamp)
                self.tracker.record_count_history_row()
                topics = self._fused.evaluate(
                    timestamp, self._current_seeds,
                    window.counts, window.document_count,
                )
                span.set(topics=len(topics))
            ranking = Ranking(
                timestamp=timestamp, topics=topics, label=self.config.name
            )
            return self._publish(ranking)
        with tracer.span("candidates") as span:
            observations = self.tracker.evaluate(
                timestamp, self._current_seeds
            )
            span.set(pairs=len(observations))
        with tracer.span("score"):
            shift_scores: List[ShiftScore] = []
            for observation in observations:
                # The tracker already appended the current value; the
                # predictor must only see the values that precede it.
                previous = self.tracker.history(
                    observation.pair).previous_values()
                shift_scores.append(
                    self.detector.update(observation, previous)
                )
        with tracer.span("rank"):
            ranking = self.ranking_builder.build(
                timestamp, shift_scores, detector=self.detector,
                label=self.config.name,
            )
        return self._publish(ranking)
