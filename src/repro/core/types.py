"""Core value types: tag pairs, emergent topics and rankings."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


def normalize_tag(tag: object) -> str:
    """Canonical tag identity: stripped and lower-cased.

    The single definition shared by the tracker's ingestion, the stream
    normaliser operator and the engine's query surface, so "Athens " and
    "athens" always name the same tag everywhere.
    """
    return str(tag).strip().lower()


@dataclass(frozen=True)
class TagPair:
    """An unordered pair of tags, the unit of an emergent topic.

    Pairs are stored in lexicographic order so ``TagPair("b", "a")`` and
    ``TagPair("a", "b")`` compare (and hash) equal.  The hash and the
    comparison key are precomputed: pairs are used as dictionary keys and
    sort keys millions of times per replay, and rebuilding the field tuple
    on every lookup dominates those operations otherwise.
    """

    first: str
    second: str

    def __post_init__(self) -> None:
        if not self.first or not self.second:
            raise ValueError("both tags of a pair must be non-empty")
        if self.first == self.second:
            raise ValueError("a pair needs two distinct tags")
        if self.first > self.second:
            smaller, larger = self.second, self.first
            object.__setattr__(self, "first", smaller)
            object.__setattr__(self, "second", larger)
        key = (self.first, self.second)
        object.__setattr__(self, "_key", key)
        object.__setattr__(self, "_hash", hash(key))

    def __getstate__(self):
        # str hashes are salted per process (PYTHONHASHSEED), so the cached
        # ``_hash`` must never cross a process boundary: a pair unpickled in
        # a spawn-started worker would otherwise hash differently from an
        # equal pair built there, and dicts would keep both as distinct
        # keys.  Pickle only the tags and recompute the cache on arrival.
        return (self.first, self.second)

    def __setstate__(self, state) -> None:
        first, second = state
        object.__setattr__(self, "first", first)
        object.__setattr__(self, "second", second)
        key = (first, second)
        object.__setattr__(self, "_key", key)
        object.__setattr__(self, "_hash", hash(key))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TagPair):
            return self._key == other._key
        return NotImplemented

    def __lt__(self, other: "TagPair") -> bool:
        if isinstance(other, TagPair):
            return self._key < other._key
        return NotImplemented

    def __le__(self, other: "TagPair") -> bool:
        if isinstance(other, TagPair):
            return self._key <= other._key
        return NotImplemented

    def __gt__(self, other: "TagPair") -> bool:
        if isinstance(other, TagPair):
            return self._key > other._key
        return NotImplemented

    def __ge__(self, other: "TagPair") -> bool:
        if isinstance(other, TagPair):
            return self._key >= other._key
        return NotImplemented

    @classmethod
    def of(cls, tag_a: str, tag_b: str) -> "TagPair":
        return cls(tag_a, tag_b)

    @classmethod
    def from_tuple(cls, pair: Tuple[str, str]) -> "TagPair":
        return cls(pair[0], pair[1])

    def as_tuple(self) -> Tuple[str, str]:
        return (self.first, self.second)

    def contains(self, tag: str) -> bool:
        return tag in (self.first, self.second)

    def other(self, tag: str) -> str:
        """The partner of ``tag`` inside the pair."""
        if tag == self.first:
            return self.second
        if tag == self.second:
            return self.first
        raise KeyError(f"{tag!r} is not part of this pair")

    def __str__(self) -> str:
        return f"({self.first}, {self.second})"


@dataclass(frozen=True)
class EmergentTopic:
    """One entry of an emergent-topic ranking."""

    pair: TagPair
    score: float
    correlation: float = 0.0
    predicted_correlation: float = 0.0
    prediction_error: float = 0.0
    seed_tag: Optional[str] = None
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if self.score < 0:
            raise ValueError("topic scores are non-negative")

    @property
    def tags(self) -> Tuple[str, str]:
        return self.pair.as_tuple()

    def describe(self) -> str:
        return (
            f"{self.pair} score={self.score:.4f} "
            f"corr={self.correlation:.4f} predicted={self.predicted_correlation:.4f}"
        )


@dataclass
class Ranking:
    """A top-k emergent-topic ranking produced at one point in time."""

    timestamp: float
    topics: List[EmergentTopic] = field(default_factory=list)
    label: str = ""

    def __post_init__(self) -> None:
        # Total order shared with repro.core.ranking.topic_sort_key (spelled
        # out here because types must not import ranking): score descending,
        # then canonical pair ascending as the deterministic tie-break.
        self.topics = sorted(
            self.topics, key=lambda topic: (-topic.score, topic.pair)
        )

    def __len__(self) -> int:
        return len(self.topics)

    def __iter__(self) -> Iterator[EmergentTopic]:
        return iter(self.topics)

    def __getitem__(self, index: int) -> EmergentTopic:
        return self.topics[index]

    def top(self, k: int) -> List[EmergentTopic]:
        if k <= 0:
            return []
        return self.topics[:k]

    def pairs(self) -> List[TagPair]:
        return [topic.pair for topic in self.topics]

    def position_of(self, pair: TagPair) -> Optional[int]:
        """Zero-based rank of ``pair`` or ``None`` when absent."""
        for index, topic in enumerate(self.topics):
            if topic.pair == pair:
                return index
        return None

    def contains_pair(self, pair: TagPair) -> bool:
        return self.position_of(pair) is not None

    def scores(self) -> Dict[TagPair, float]:
        return {topic.pair: topic.score for topic in self.topics}

    def describe(self, k: Optional[int] = None) -> str:
        """Multi-line, human-readable rendering (used by examples/benches)."""
        selected = self.topics if k is None else self.top(k)
        lines = [f"ranking at t={self.timestamp:.0f}" + (f" [{self.label}]" if self.label else "")]
        for position, topic in enumerate(selected, start=1):
            lines.append(f"  {position:2d}. {topic.describe()}")
        if not selected:
            lines.append("  (empty)")
        return "\n".join(lines)


def overlap_at_k(first: Ranking, second: Ranking, k: int) -> float:
    """Fraction of shared pairs among the top-k of two rankings."""
    if k <= 0:
        return 0.0
    top_first = {topic.pair for topic in first.top(k)}
    top_second = {topic.pair for topic in second.top(k)}
    if not top_first and not top_second:
        return 1.0
    denominator = max(len(top_first), len(top_second))
    if denominator == 0:
        return 1.0
    return len(top_first & top_second) / denominator
