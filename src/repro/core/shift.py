"""Stage (iii): shift detection and topic scoring.

"We consider sudden (but significant) increases in the correlation of tag
pairs as an indicator for an emergent topic. ...  at any point in time we
use the previous correlation values and try to predict the current ones.
If a predicted value is far away from the real one then the topic is
considered to be emergent and the prediction error is used as a ranking
criterion.  At any point in time the score of a topic is the maximum of the
current prediction error and the prediction errors from the past, dampened
appropriately using an exponential decline factor with a half life of
approximately 2 days."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.tracker import PairObservation
from repro.core.types import TagPair
from repro.persistence.codec import string_interner
from repro.persistence.snapshot import require_compatible, require_state
from repro.timeseries.predictors import MovingAveragePredictor, Predictor
from repro.windows.decay import DecayedMaximum, ExponentialDecay


@dataclass(frozen=True)
class ShiftScore:
    """The scored shift of one pair at one evaluation time."""

    pair: TagPair
    timestamp: float
    correlation: float
    predicted: float
    error: float
    score: float
    seed_tag: str

    def __post_init__(self) -> None:
        if self.error < 0 or self.score < 0:
            raise ValueError("errors and scores are non-negative")


class ShiftDetector:
    """Per-pair prediction errors folded into decayed-maximum scores."""

    def __init__(
        self,
        predictor: Optional[Predictor] = None,
        decay: Optional[ExponentialDecay] = None,
        min_history: int = 3,
        penalize_drops: bool = False,
    ):
        if min_history < 1:
            raise ValueError("min_history must be at least 1")
        self.predictor = predictor or MovingAveragePredictor()
        self.decay = decay or ExponentialDecay()
        self.min_history = int(min_history)
        #: When True, drops in correlation also count as shifts; the paper
        #: targets *increases*, so the default only scores positive errors.
        self.penalize_drops = bool(penalize_drops)
        self._scores: Dict[TagPair, DecayedMaximum] = {}
        # Pairs whose decayed maximum changed since the last delta drain;
        # None when delta recording is inactive.
        self._dirty: Optional[Set[TagPair]] = None
        # Bumped on every score mutation (update, restore, reset) so
        # columnar mirrors (vectorized.FusedEvaluator) can detect staleness.
        self._mutation_epoch = 0

    # -- scoring ------------------------------------------------------------

    def _usable_history(self, history: Sequence[float]) -> Optional[List[float]]:
        """The history as floats, or None when it is too short to forecast.

        Histories shorter than ``min_history`` (or than the predictor's own
        minimum) are "unknown, not unpredictable": a pair that has just
        appeared yields no forecast and no error.  Lists from the engine
        already hold floats — skip the defensive copy.
        """
        usable = history if type(history) is list \
            else [float(v) for v in history]
        if len(usable) < max(self.min_history, self.predictor.min_history):
            return None
        return usable

    def _error(self, observed: float, predicted: float) -> float:
        raw_error = observed - predicted
        if self.penalize_drops:
            return abs(raw_error)
        return max(0.0, raw_error)

    def prediction_error(self, history: Sequence[float], observed: float) -> float:
        """Error between the predictor's forecast and the observation."""
        usable = self._usable_history(history)
        if usable is None:
            return 0.0
        return self._error(observed, self.predictor.predict(usable))

    def predict(self, history: Sequence[float]) -> float:
        """The raw forecast for the next correlation value (0.0 if unknown)."""
        usable = self._usable_history(history)
        if usable is None:
            return 0.0
        return self.predictor.predict(usable)

    def update(
        self,
        observation: PairObservation,
        history: Sequence[float],
    ) -> ShiftScore:
        """Score one observation.

        ``history`` must contain the *previous* correlation values of the
        pair, i.e. it must not include ``observation.correlation`` itself.
        """
        # Shares the gate and error formula with predict/prediction_error
        # but runs the predictor once per observation instead of twice.
        usable = self._usable_history(history)
        if usable is None:
            predicted = 0.0
            error = 0.0
        else:
            predicted = self.predictor.predict(usable)
            error = self._error(observation.correlation, predicted)
        tracker = self._scores.setdefault(
            observation.pair, DecayedMaximum(self.decay)
        )
        score = tracker.update(observation.timestamp, error)
        if self._dirty is not None:
            self._dirty.add(observation.pair)
        self._mutation_epoch += 1
        return ShiftScore(
            pair=observation.pair,
            timestamp=observation.timestamp,
            correlation=observation.correlation,
            predicted=predicted,
            error=error,
            score=score,
            seed_tag=observation.seed_tag,
        )

    def score_at(self, pair: TagPair, timestamp: float) -> float:
        """Current decayed score of ``pair`` (0.0 when never scored)."""
        tracker = self._scores.get(pair)
        if tracker is None:
            return 0.0
        return tracker.value_at(timestamp)

    def scored_pairs(self) -> List[TagPair]:
        return sorted(self._scores)

    @property
    def mutation_epoch(self) -> int:
        """Monotone counter of score mutations (staleness detection)."""
        return self._mutation_epoch

    def note_mutation(self) -> None:
        """Record an external score mutation (bumps the epoch)."""
        self._mutation_epoch += 1

    @property
    def score_map(self) -> Dict[TagPair, DecayedMaximum]:
        """The live per-pair decayed maxima (read-only; do not mutate)."""
        return self._scores

    def record_scores(
        self,
        timestamp: float,
        scored: Iterable[Tuple[TagPair, float]],
    ) -> None:
        """Adopt batch-computed decayed maxima (absolute values).

        The write-back half of :meth:`update` for callers that computed the
        decayed-maximum fold themselves (the fused evaluator): each pair's
        tracker is set to ``(value, timestamp)``, delta dirtiness is
        maintained, and the mutation epoch is bumped once.
        """
        scores = self._scores
        dirty = self._dirty
        decay = self.decay
        for pair, value in scored:
            maximum = scores.get(pair)
            if maximum is None:
                maximum = scores[pair] = DecayedMaximum(decay)
            maximum.restore_state(value, timestamp)
            if dirty is not None:
                dirty.add(pair)
        self._mutation_epoch += 1

    def reset(self, pair: Optional[TagPair] = None) -> None:
        """Forget the score of one pair, or of every pair.

        Not representable in a journal delta (which carries updates, not
        deletions), so resetting while delta recording is active fails
        loudly instead of silently corrupting a checkpoint chain.
        """
        if self._dirty is not None:
            raise RuntimeError(
                "cannot reset scores while delta recording is active: a "
                "journal delta cannot express deletions; write a full "
                "checkpoint (re-base) first"
            )
        if pair is None:
            self._scores.clear()
        else:
            self._scores.pop(pair, None)
        self._mutation_epoch += 1

    # -- persistence --------------------------------------------------------

    def snapshot(self) -> dict:
        """Every pair's decayed maximum as a versioned, JSON-safe dict.

        The predictor itself is stateless between evaluations (it reads the
        tracker-owned histories), so the per-pair ``(value, last_update)``
        pairs are the detector's whole state.
        """
        return {
            "kind": "shift-detector",
            "version": 1,
            "min_history": self.min_history,
            "penalize_drops": self.penalize_drops,
            "decay_half_life": self.decay.half_life,
            "scores": [
                [pair.first, pair.second, *self._scores[pair].state()]
                for pair in sorted(self._scores)
            ],
        }

    def restore(self, state: Mapping) -> None:
        """Replace the per-pair scores with a :meth:`snapshot`'s state."""
        require_state(state, "shift-detector", 1)
        require_compatible(
            "shift-detector",
            {
                "min_history": self.min_history,
                "penalize_drops": self.penalize_drops,
                "decay_half_life": self.decay.half_life,
            },
            state,
        )
        scores: Dict[TagPair, DecayedMaximum] = {}
        for first, second, value, last_update in state["scores"]:
            maximum = DecayedMaximum(self.decay)
            maximum.restore_state(value, last_update)
            scores[TagPair(str(first), str(second))] = maximum
        self._scores = scores
        # Any buffered delta described the pre-restore state; drop it.
        self._dirty = None
        self._mutation_epoch += 1

    # -- incremental persistence --------------------------------------------

    def begin_delta_tracking(self) -> None:
        """Start (or re-arm, emptying the buffer) delta recording."""
        self._dirty = set()

    def end_delta_tracking(self) -> None:
        """Stop recording and discard any buffered delta."""
        self._dirty = None

    def delta_since(self, generation: int) -> dict:
        """The decayed maxima updated since the last base/drain.

        Replace semantics: each row carries the pair's *absolute*
        ``(value, last_update)`` state, so
        :func:`repro.persistence.delta.apply_detector_delta` merges rows
        into the base table without replaying updates.  Encoded lean for
        the cadence hot path — tag names interned into a per-delta
        ``tags`` table, rows grouped under their shared ``last_update``
        timestamp (each dirty pair appears exactly once, under its final
        one).  Requires :meth:`begin_delta_tracking`; recording stays
        armed afterwards.
        """
        if self._dirty is None:
            raise RuntimeError(
                "delta tracking is not active: take a base snapshot and "
                "call begin_delta_tracking() first"
            )
        intern, tags_table = string_interner()
        groups: Dict[float, List[list]] = {}
        for pair in sorted(self._dirty):
            value, last_update = self._scores[pair].state()
            groups.setdefault(last_update, []).append(
                [intern(pair.first), intern(pair.second), value]
            )
        delta = {
            "kind": "shift-detector-delta",
            "version": 1,
            "since": int(generation),
            "tags": tags_table,
            "scores": [
                [last_update, rows]
                for last_update, rows in sorted(groups.items())
            ],
        }
        self._dirty = set()
        return delta
