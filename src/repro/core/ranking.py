"""Top-k emergent-topic rankings.

"These values are used to rank tag pairs and to report the top-k most
interesting ones, thus presenting the user with emergent topics."  The
builder also folds in pairs that were scored at earlier evaluations but are
not among the current observations: their decayed score can still beat a
fresh but weak shift, which is exactly the role of the two-day half-life.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.shift import ShiftDetector, ShiftScore
from repro.core.types import EmergentTopic, Ranking, TagPair


class RankingBuilder:
    """Assemble top-k rankings from shift scores and the detector state."""

    def __init__(self, top_k: int = 10, min_score: float = 0.0):
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        if min_score < 0:
            raise ValueError("min_score must be non-negative")
        self.top_k = int(top_k)
        self.min_score = float(min_score)

    def build(
        self,
        timestamp: float,
        shift_scores: Iterable[ShiftScore],
        detector: Optional[ShiftDetector] = None,
        label: str = "",
    ) -> Ranking:
        """Build the ranking for one evaluation.

        ``shift_scores`` are the freshly scored observations; when
        ``detector`` is given, pairs it has scored in the past but that are
        absent from the current observations compete with their decayed
        scores, so a strong recent topic does not vanish the moment its
        correlation stops growing.
        """
        topics: Dict[TagPair, EmergentTopic] = {}
        for shift in shift_scores:
            if shift.score <= self.min_score:
                continue
            topics[shift.pair] = EmergentTopic(
                pair=shift.pair,
                score=shift.score,
                correlation=shift.correlation,
                predicted_correlation=shift.predicted,
                prediction_error=shift.error,
                seed_tag=shift.seed_tag,
                timestamp=timestamp,
            )
        if detector is not None:
            for pair in detector.scored_pairs():
                if pair in topics:
                    continue
                score = detector.score_at(pair, timestamp)
                if score <= self.min_score:
                    continue
                topics[pair] = EmergentTopic(
                    pair=pair, score=score, timestamp=timestamp,
                )
        ranked = sorted(
            topics.values(), key=lambda topic: (-topic.score, topic.pair)
        )[: self.top_k]
        return Ranking(timestamp=timestamp, topics=ranked, label=label)
