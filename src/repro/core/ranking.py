"""Top-k emergent-topic rankings.

"These values are used to rank tag pairs and to report the top-k most
interesting ones, thus presenting the user with emergent topics."  The
builder also folds in pairs that were scored at earlier evaluations but are
not among the current observations: their decayed score can still beat a
fresh but weak shift, which is exactly the role of the two-day half-life.
"""

from __future__ import annotations

import heapq
from itertools import islice
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.shift import ShiftDetector, ShiftScore
from repro.core.types import EmergentTopic, Ranking, TagPair
from repro.persistence.snapshot import require_state


def topic_sort_key(topic: EmergentTopic) -> Tuple[float, TagPair]:
    """The total order of every ranking: score descending, pair ascending.

    Scores alone leave ties — two pairs shifting identically (common on
    synthetic streams and in the first evaluations of a live one) — so the
    canonical pair breaks them lexicographically.  The order is *total*:
    pairs are unique within a ranking, hence no two topics compare equal.
    Every consumer that orders topics (the builder, the sharded engine's
    cross-shard merge, ``Ranking`` itself) must use this one key, which is
    what makes a k-way merge of per-shard rankings bit-identical to ranking
    the union in one process.
    """
    return (-topic.score, topic.pair)


class RankingBuilder:
    """Assemble top-k rankings from shift scores and the detector state."""

    def __init__(self, top_k: int = 10, min_score: float = 0.0):
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        if min_score < 0:
            raise ValueError("min_score must be non-negative")
        self.top_k = int(top_k)
        self.min_score = float(min_score)

    # -- persistence --------------------------------------------------------

    def snapshot(self) -> dict:
        """The builder's parameters as a versioned, JSON-safe dict.

        The builder keeps no per-evaluation state (published rankings live
        on the engine), so its snapshot is the ranking policy itself —
        restoring it guarantees the resumed run cuts its top-k with exactly
        the thresholds the checkpointed run used.
        """
        return {
            "kind": "ranking-builder",
            "version": 1,
            "top_k": self.top_k,
            "min_score": self.min_score,
        }

    def restore(self, state: Mapping) -> None:
        """Adopt a :meth:`snapshot`'s ranking policy (validated as in init)."""
        require_state(state, "ranking-builder", 1)
        top_k = int(state["top_k"])
        min_score = float(state["min_score"])
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        if min_score < 0:
            raise ValueError("min_score must be non-negative")
        self.top_k = top_k
        self.min_score = min_score

    def begin_delta_tracking(self) -> None:
        """No buffers to arm: the builder's whole state is its tiny policy."""

    def end_delta_tracking(self) -> None:
        """No buffers to discard (see :meth:`begin_delta_tracking`)."""

    def delta_since(self, generation: int) -> dict:
        """The current ranking policy, absolute (it may mutate mid-stream).

        Journal deltas ship the policy whole on every tick — it is two
        scalars, far below any framing overhead — so
        :func:`repro.persistence.delta.apply_builder_delta` simply adopts
        the latest values.
        """
        return {
            "kind": "ranking-builder-delta",
            "version": 1,
            "since": int(generation),
            "top_k": self.top_k,
            "min_score": self.min_score,
        }

    def collect_topics(
        self,
        timestamp: float,
        shift_scores: Iterable[ShiftScore],
        detector: Optional[ShiftDetector] = None,
    ) -> Dict[TagPair, EmergentTopic]:
        """Every topic competing at ``timestamp``, keyed by pair (unordered).

        ``shift_scores`` are the freshly scored observations; when
        ``detector`` is given, pairs it has scored in the past but that are
        absent from the current observations compete with their decayed
        scores, so a strong recent topic does not vanish the moment its
        correlation stops growing.  Shared by :meth:`build` and the sharded
        engine's per-shard scoring, so both paths admit exactly the same
        topics.
        """
        topics: Dict[TagPair, EmergentTopic] = {}
        for shift in shift_scores:
            if shift.score <= self.min_score:
                continue
            topics[shift.pair] = EmergentTopic(
                pair=shift.pair,
                score=shift.score,
                correlation=shift.correlation,
                predicted_correlation=shift.predicted,
                prediction_error=shift.error,
                seed_tag=shift.seed_tag,
                timestamp=timestamp,
            )
        if detector is not None:
            for pair in detector.scored_pairs():
                if pair in topics:
                    continue
                score = detector.score_at(pair, timestamp)
                if score <= self.min_score:
                    continue
                topics[pair] = EmergentTopic(
                    pair=pair, score=score, timestamp=timestamp,
                )
        return topics

    def top_topics(
        self,
        timestamp: float,
        shift_scores: Iterable[ShiftScore],
        detector: Optional[ShiftDetector] = None,
    ) -> List[EmergentTopic]:
        """The top-k competing topics in :func:`topic_sort_key` order."""
        topics = self.collect_topics(timestamp, shift_scores, detector)
        return sorted(topics.values(), key=topic_sort_key)[: self.top_k]

    def build(
        self,
        timestamp: float,
        shift_scores: Iterable[ShiftScore],
        detector: Optional[ShiftDetector] = None,
        label: str = "",
    ) -> Ranking:
        """Build the ranking for one evaluation."""
        ranked = self.top_topics(timestamp, shift_scores, detector)
        return Ranking(timestamp=timestamp, topics=ranked, label=label)

    def merge(
        self,
        timestamp: float,
        topic_lists: Sequence[Sequence[EmergentTopic]],
        label: str = "",
    ) -> Ranking:
        """K-way-merge per-shard top-k topic lists into one global ranking.

        Each input list must already be sorted by :func:`topic_sort_key` and
        the lists must cover disjoint pair sets (each pair lives in exactly
        one shard).  Because every shard contributes its local top-k, the
        global top-k is a prefix of the merged order — the standard
        scatter-gather argument — so the result is bit-identical to building
        one ranking from the union of all shards' topics.
        """
        merged = heapq.merge(*topic_lists, key=topic_sort_key)
        ranked = list(islice(merged, self.top_k))
        return Ranking(timestamp=timestamp, topics=ranked, label=label)
