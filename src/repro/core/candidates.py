"""Stage (i) pruning made incremental: a tag→pairs postings index.

The paper's efficiency argument is that only pairs containing a *seed* tag
need correlation sampling.  The seed implementation honoured that at
evaluation time by scanning every windowed pair and testing it against the
seed set — linear in the number of live pairs regardless of how few seeds
there are.  :class:`CandidateIndex` maintains the inverse mapping
incrementally as documents arrive and expire: for every tag it keeps a
postings dictionary of the live pairs containing that tag together with
their windowed co-occurrence counts.  Candidate generation then unions the
postings of the seed tags, which is linear in the size of the seeds'
postings — and because the count is stored inside each postings entry, the
union needs no per-pair hash lookups at all.

The index is updated by the :class:`~repro.core.tracker.CorrelationTracker`
in ``observe``/``observe_many`` (additions) and during window eviction
(removals); the batch entry points collapse duplicate pairs with
:class:`collections.Counter` arithmetic before touching the postings, so
large ingests and evictions pay one postings update per *distinct* pair.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Tuple

from repro.core.types import TagPair
from repro.persistence.snapshot import require_state

_EMPTY: Dict[TagPair, int] = {}


class CandidateIndex:
    """Per-tag postings of live pairs, each entry carrying the pair's count.

    Every live pair is present in exactly two postings dictionaries (one per
    tag), which hold the identical windowed co-occurrence count.
    ``min_support`` mirrors the tracker's ``min_pair_support``: pairs with a
    lower count stay in the index (they may regain support) but are not
    reported as candidates.
    """

    def __init__(self, min_support: int = 1):
        self._postings: Dict[str, Dict[TagPair, int]] = {}
        self._size = 0
        self.min_support = min_support

    @property
    def min_support(self) -> int:
        """Support threshold below which live pairs are not reported.

        Mutable between evaluations: pairs below the threshold *stay in the
        postings* with their counts (they may regain support, and lowering
        the threshold must bring them back), so changing the value takes
        effect on the next candidate query without any rebuild.  Validation
        lives here so every write path — the tracker's ``min_pair_support``
        setter or a direct assignment — enforces the same invariant.
        """
        return self._min_support

    @min_support.setter
    def min_support(self, value: int) -> None:
        value = int(value)
        if value < 1:
            raise ValueError("min_support must be at least 1")
        self._min_support = value

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        """Number of distinct live pairs."""
        return self._size

    def __contains__(self, pair: TagPair) -> bool:
        return pair in self._postings.get(pair.first, _EMPTY)

    def count(self, pair: TagPair) -> int:
        """Windowed co-occurrence count of ``pair`` (0 when absent)."""
        return self._postings.get(pair.first, _EMPTY).get(pair, 0)

    def items(self) -> Iterator[Tuple[TagPair, int]]:
        """Iterate over ``(pair, count)`` for every live pair, once each."""
        for tag, postings in self._postings.items():
            for pair, count in postings.items():
                if pair.first == tag:
                    yield pair, count

    def pairs_for(self, tag: str) -> FrozenSet[TagPair]:
        """The live pairs containing ``tag`` (the tag's postings list)."""
        return frozenset(self._postings.get(tag, _EMPTY))

    # -- persistence ----------------------------------------------------------

    def snapshot(self) -> dict:
        """The postings' complete state as a versioned, JSON-safe dict.

        Pairs are stored once each (sorted, with their windowed counts);
        the two-sided postings structure is rebuilt on restore.
        """
        return {
            "kind": "candidate-index",
            "version": 1,
            "min_support": self._min_support,
            "pairs": [
                [pair.first, pair.second, count]
                for pair, count in sorted(self.items())
            ],
        }

    def restore(self, state: Mapping) -> None:
        """Replace the postings with a :meth:`snapshot`'s state."""
        require_state(state, "candidate-index", 1)
        self._postings = {}
        self._size = 0
        self.min_support = state["min_support"]
        for first, second, count in state["pairs"]:
            self._bump(TagPair(str(first), str(second)), int(count))

    # -- maintenance ----------------------------------------------------------

    def add(self, pair: TagPair) -> None:
        """Record one co-occurrence of ``pair``."""
        self._bump(pair, 1)

    def add_many(self, pairs: Iterable[TagPair]) -> None:
        """Record a batch of co-occurrences (duplicates allowed)."""
        for pair, increment in Counter(pairs).items():
            self._bump(pair, increment)

    def discard(self, pair: TagPair) -> None:
        """Remove one co-occurrence of ``pair``, dropping dead postings."""
        self._bump(pair, -1)

    def remove_many(self, pairs: Iterable[TagPair]) -> None:
        """Remove a batch of co-occurrences (duplicates allowed)."""
        for pair, decrement in Counter(pairs).items():
            self._bump(pair, -decrement)

    def _bump(self, pair: TagPair, delta: int) -> None:
        postings = self._postings
        first = postings.get(pair.first)
        if first is None:
            if delta <= 0:
                return
            first = postings[pair.first] = {}
        count = first.get(pair, 0) + delta
        if count > 0:
            if pair not in first:
                self._size += 1
            first[pair] = count
            second = postings.get(pair.second)
            if second is None:
                second = postings[pair.second] = {}
            second[pair] = count
        else:
            if first.pop(pair, None) is not None:
                self._size -= 1
            if not first:
                del postings[pair.first]
            second = postings.get(pair.second)
            if second is not None:
                second.pop(pair, None)
                if not second:
                    del postings[pair.second]

    # -- candidate generation -------------------------------------------------

    def iter_candidates(
        self, seeds: Iterable[str]
    ) -> List[Tuple[TagPair, str, int]]:
        """Supported pairs containing at least one seed, in no fixed order.

        Returns ``(pair, seed_tag, count)`` triples; when both tags are
        seeds the lexicographically smaller one is reported as the trigger,
        matching the semantics of the original full scan.  Evaluation hot
        paths use this unsorted form — per-pair work is order-independent
        and the final ranking applies a total order of its own.

        A pair whose tags are both seeds occurs in two postings lists; it is
        collected only from its trigger's list, which deduplicates the union
        without a seen-set.
        """
        seed_set = set(seeds)
        if not seed_set:
            return []
        min_support = self.min_support
        postings = self._postings
        selected: List[Tuple[TagPair, str, int]] = []
        append = selected.append
        for seed in seed_set:
            seed_postings = postings.get(seed)
            if not seed_postings:
                continue
            for pair, count in seed_postings.items():
                if count < min_support:
                    continue
                first = pair.first
                trigger = first if first in seed_set else pair.second
                if trigger == seed:
                    append((pair, trigger, count))
        return selected

    def candidates(self, seeds: Iterable[str]) -> List[Tuple[TagPair, str]]:
        """``(pair, seed_tag)`` tuples sorted by pair (the public contract)."""
        selected = [
            (pair, trigger) for pair, trigger, _ in self.iter_candidates(seeds)
        ]
        selected.sort(key=lambda item: item[0])
        return selected

    def scan_candidates(self, seeds: Iterable[str]) -> List[Tuple[TagPair, str]]:
        """Reference implementation: the seed revision's full scan over all
        pairs.  Kept for equivalence testing; the hot path uses
        :meth:`candidates`."""
        seed_set = set(seeds)
        if not seed_set:
            return []
        selected: List[Tuple[TagPair, str]] = []
        for pair, count in self.items():
            if count < self.min_support:
                continue
            if pair.first in seed_set:
                selected.append((pair, pair.first))
            elif pair.second in seed_set:
                selected.append((pair, pair.second))
        selected.sort(key=lambda item: item[0])
        return selected
