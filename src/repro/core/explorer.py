"""Interactive exploration of an archived stream by time range.

Show case 1 lets users "specify their own time ranges and see how the
ranking changes with different time periods".  Re-running the full streaming
pipeline for every interactively chosen range would be wasteful; the
:class:`ArchiveExplorer` instead indexes the archive once into a
time-partitioned index (:mod:`repro.storage.time_index`) and answers
range-ranking queries from per-partition counts: for a chosen analysis
window it compares each candidate pair's correlation against a reference
window (by default the period of equal length immediately before) and ranks
pairs by the increase — the batch counterpart of the streaming shift
detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.core.correlation import CorrelationMeasure, JaccardCorrelation, PairCounts
from repro.core.types import EmergentTopic, Ranking, TagPair
from repro.storage.inverted_index import InvertedTagIndex
from repro.storage.time_index import TimePartitionedIndex
from repro.streams.item import StreamItem


@dataclass(frozen=True)
class RangeShift:
    """Correlation of one pair inside the analysis window vs. the reference."""

    pair: TagPair
    correlation: float
    reference_correlation: float

    @property
    def shift(self) -> float:
        return max(0.0, self.correlation - self.reference_correlation)


class ArchiveExplorer:
    """Range-based emergent-topic ranking over an indexed archive."""

    def __init__(
        self,
        partition_length: float,
        measure: Optional[CorrelationMeasure] = None,
        use_entities: bool = True,
        num_seeds: int = 25,
        min_pair_support: int = 2,
        keep_documents: bool = True,
    ):
        if num_seeds <= 0:
            raise ValueError("num_seeds must be positive")
        if min_pair_support < 1:
            raise ValueError("min_pair_support must be at least 1")
        self.measure = measure or JaccardCorrelation()
        self.num_seeds = int(num_seeds)
        self.min_pair_support = int(min_pair_support)
        self._time_index = TimePartitionedIndex(
            partition_length=partition_length, use_entities=use_entities)
        self._documents = InvertedTagIndex(use_entities=use_entities) if keep_documents else None
        self._indexed = 0
        self._earliest: Optional[float] = None
        self._latest: Optional[float] = None

    # -- ingestion --------------------------------------------------------------

    @property
    def documents_indexed(self) -> int:
        return self._indexed

    def time_range(self) -> Tuple[float, float]:
        """Earliest and latest indexed timestamps."""
        if self._earliest is None or self._latest is None:
            raise ValueError("no documents indexed yet")
        return self._earliest, self._latest

    def index(self, document) -> None:
        """Index one document (a StreamItem or anything with timestamp/tags)."""
        item = document if isinstance(document, StreamItem) else StreamItem(
            timestamp=float(getattr(document, "timestamp")),
            doc_id=str(getattr(document, "doc_id")),
            tags=frozenset(str(t).lower() for t in getattr(document, "tags", ()) or ()),
            text=str(getattr(document, "text", "") or ""),
            metadata=dict(getattr(document, "metadata", {}) or {}),
        )
        self._time_index.index(item)
        if self._documents is not None:
            self._documents.index(item)
        self._indexed += 1
        if self._earliest is None or item.timestamp < self._earliest:
            self._earliest = item.timestamp
        if self._latest is None or item.timestamp > self._latest:
            self._latest = item.timestamp

    def index_many(self, documents: Iterable) -> int:
        count = 0
        for document in documents:
            self.index(document)
            count += 1
        return count

    # -- range queries --------------------------------------------------------------

    def top_tags(self, start: float, end: float, k: Optional[int] = None) -> List[Tuple[str, int]]:
        """The most frequent tags of a time range (the range's seed tags)."""
        return self._time_index.top_tags(start, end, k or self.num_seeds)

    def correlation(self, pair: TagPair, start: float, end: float) -> float:
        """Correlation of one pair computed from the range's counts."""
        counts = self._pair_counts(pair, start, end)
        return max(0.0, self.measure.value(counts))

    def rank(
        self,
        start: float,
        end: float,
        reference_start: Optional[float] = None,
        reference_end: Optional[float] = None,
        top_k: int = 10,
    ) -> Ranking:
        """Emergent topics of ``[start, end]`` relative to a reference period.

        The reference period defaults to the window of equal length that
        immediately precedes the analysis window (clamped at the archive
        start).  The score of a pair is the increase of its correlation over
        the reference period — pairs that were already just as correlated
        before score zero and are not reported, which is what distinguishes
        *emergent* topics from perennial ones.
        """
        if end <= start:
            raise ValueError("the analysis window must have positive length")
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        if reference_start is None or reference_end is None:
            length = end - start
            reference_end = start
            reference_start = max(0.0, start - length)
        shifts = self._range_shifts(start, end, reference_start, reference_end)
        topics = [
            EmergentTopic(
                pair=shift.pair,
                score=shift.shift,
                correlation=shift.correlation,
                predicted_correlation=shift.reference_correlation,
                prediction_error=shift.shift,
                timestamp=end,
            )
            for shift in shifts if shift.shift > 0.0
        ]
        topics.sort(key=lambda topic: (-topic.score, topic.pair))
        return Ranking(timestamp=end, topics=topics[:top_k],
                       label=f"range[{start:.0f},{end:.0f}]")

    def documents_for(self, pair: TagPair, limit: int = 10) -> List[StreamItem]:
        """Archive documents carrying both tags of ``pair`` (newest first)."""
        if self._documents is None:
            raise RuntimeError("document drill-down was disabled (keep_documents=False)")
        return self._documents.query(list(pair.as_tuple()))[:limit]

    # -- internals --------------------------------------------------------------------

    def _pair_counts(self, pair: TagPair, start: float, end: float) -> PairCounts:
        count_a = self._time_index.tag_count(pair.first, start, end)
        count_b = self._time_index.tag_count(pair.second, start, end)
        count_both = self._time_index.pair_count(pair.first, pair.second, start, end)
        total = self._time_index.document_count(start, end)
        # Clamp defensively so PairCounts never rejects the snapshot.
        count_both = min(count_both, count_a, count_b)
        return PairCounts(count_a=count_a, count_b=count_b,
                          count_both=count_both, total_documents=max(total, count_a, count_b))

    def _range_shifts(self, start: float, end: float,
                      reference_start: float, reference_end: float) -> List[RangeShift]:
        seeds = [tag for tag, _ in self.top_tags(start, end)]
        seed_set = set(seeds)
        shifts: List[RangeShift] = []
        seen = set()
        for (tag_a, tag_b), support in self._time_index.top_pairs(start, end, k=10_000):
            if support < self.min_pair_support:
                continue
            if tag_a not in seed_set and tag_b not in seed_set:
                continue
            pair = TagPair(tag_a, tag_b)
            if pair in seen:
                continue
            seen.add(pair)
            current = self.correlation(pair, start, end)
            if reference_end > reference_start:
                reference = self.correlation(pair, reference_start, reference_end)
            else:
                reference = 0.0
            shifts.append(RangeShift(pair=pair, correlation=current,
                                     reference_correlation=reference))
        return shifts
