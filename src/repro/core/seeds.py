"""Stage (i): seed tag selection.

"Seed tags are used to trigger the computation in the following steps.
Seed tags can be determined based on different criteria, such as popularity
and volatility.  We choose seed tags to be popular tags. ...  We use seed
tags to generate candidate topics, i.e., pairs of tags that contain at
least one seed tag."

The selectors read the windowed tag statistics maintained by the tracker
(:class:`~repro.windows.aggregates.TagFrequencyWindow`) and, for the
volatility criterion, the recent history of each tag's windowed count.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.windows.aggregates import TagFrequencyWindow


class SeedSelector:
    """Interface: pick the seed tags for the current evaluation."""

    name = "base"

    def __init__(self, num_seeds: int = 25, min_count: int = 3):
        if num_seeds <= 0:
            raise ValueError("num_seeds must be positive")
        if min_count < 1:
            raise ValueError("min_count must be at least 1")
        self.num_seeds = int(num_seeds)
        self.min_count = int(min_count)

    def select(
        self,
        window: TagFrequencyWindow,
        history: Optional[Dict[str, Sequence[int]]] = None,
    ) -> List[str]:
        """Return the seed tags, best first.

        ``window`` holds the current sliding-window tag counts; ``history``
        optionally maps each tag to its windowed counts at previous
        evaluations (needed by the volatility criterion).
        """
        scored = []
        for tag in window.tags():
            count = window.count(tag)
            if count < self.min_count:
                continue
            score = self.score(tag, count, window, history)
            if score > 0:
                scored.append((tag, score))
        scored.sort(key=lambda item: (-item[1], item[0]))
        return [tag for tag, _ in scored[: self.num_seeds]]

    def score(
        self,
        tag: str,
        count: int,
        window: TagFrequencyWindow,
        history: Optional[Dict[str, Sequence[int]]],
    ) -> float:
        raise NotImplementedError


class PopularitySeedSelector(SeedSelector):
    """Seed tags are the most popular tags of the window (the paper's choice)."""

    name = "popularity"

    def score(self, tag, count, window, history) -> float:
        return float(count)


class VolatilitySeedSelector(SeedSelector):
    """Seed tags are the tags whose windowed count fluctuates the most.

    Volatility is the standard deviation of the tag's recent windowed counts
    (including the current one) relative to their mean, so a tag with a
    steady high count scores lower than a tag that swings.
    """

    name = "volatility"

    def __init__(self, num_seeds: int = 25, min_count: int = 3, history_length: int = 12):
        super().__init__(num_seeds=num_seeds, min_count=min_count)
        if history_length < 2:
            raise ValueError("history_length must be at least 2")
        self.history_length = int(history_length)

    def score(self, tag, count, window, history) -> float:
        past: List[float] = []
        if history and tag in history:
            # The per-tag series may be a list or a bounded deque (the
            # trackers keep deques); convert before trimming — deques do
            # not support slicing and both stay tiny (<= history_length
            # of the tracker, a few dozen points).
            past = [float(v) for v in history[tag]]
            if len(past) > self.history_length:
                past = past[-self.history_length:]
        series = past + [float(count)]
        if len(series) < 2:
            # Without any history volatility is undefined; fall back to a
            # small popularity-based score so early evaluations still work.
            return float(count) * 1e-3
        mean = sum(series) / len(series)
        if mean == 0:
            return 0.0
        variance = sum((v - mean) ** 2 for v in series) / (len(series) - 1)
        return math.sqrt(variance) / mean


class HybridSeedSelector(SeedSelector):
    """Geometric mean of popularity and volatility scores."""

    name = "hybrid"

    def __init__(self, num_seeds: int = 25, min_count: int = 3, history_length: int = 12):
        super().__init__(num_seeds=num_seeds, min_count=min_count)
        self._popularity = PopularitySeedSelector(num_seeds, min_count)
        self._volatility = VolatilitySeedSelector(num_seeds, min_count, history_length)

    def score(self, tag, count, window, history) -> float:
        popularity = self._popularity.score(tag, count, window, history)
        volatility = self._volatility.score(tag, count, window, history)
        return math.sqrt(max(popularity, 0.0) * max(volatility, 0.0))


def make_seed_selector(
    criterion: str,
    num_seeds: int = 25,
    min_count: int = 3,
    history_length: int = 12,
) -> SeedSelector:
    """Instantiate a selector by criterion name."""
    if criterion == PopularitySeedSelector.name:
        return PopularitySeedSelector(num_seeds=num_seeds, min_count=min_count)
    if criterion == VolatilitySeedSelector.name:
        return VolatilitySeedSelector(
            num_seeds=num_seeds, min_count=min_count, history_length=history_length
        )
    if criterion == HybridSeedSelector.name:
        return HybridSeedSelector(
            num_seeds=num_seeds, min_count=min_count, history_length=history_length
        )
    raise ValueError(
        f"unknown seed criterion {criterion!r}; "
        "expected 'popularity', 'volatility' or 'hybrid'"
    )
