"""Personalization: continuous keyword queries and topic-category profiles.

"EnBlogue consists also of a personalization component that allows users to
register continuous keyword queries or to choose pre-selected topic
categories to influence the nature of the emergent topics presented."
Show case 3 demonstrates that two users with different profiles see
"completely different or just differently ordered emergent topics".

A profile boosts topics whose tags match the user's keywords or belong to
the user's chosen categories; with ``filter_only=True`` non-matching topics
are removed entirely instead of merely demoted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.types import EmergentTopic, Ranking, TagPair


@dataclass
class UserProfile:
    """One user's interests.

    ``keywords`` are the terms of the user's continuous keyword queries
    (matched as substrings against the tags of a topic); ``categories`` are
    the names of pre-selected topic categories; ``category_tags`` maps each
    category to the tags belonging to it (typically taken from the dataset's
    :class:`~repro.datasets.vocabulary.TagVocabulary`).  ``boost`` scales
    how strongly a match lifts a topic's score.
    """

    user_id: str
    keywords: Tuple[str, ...] = ()
    categories: Tuple[str, ...] = ()
    category_tags: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    boost: float = 2.0
    filter_only: bool = False

    def __post_init__(self) -> None:
        if not self.user_id:
            raise ValueError("user_id must be non-empty")
        if self.boost < 1.0:
            raise ValueError("boost must be at least 1.0")
        self.keywords = tuple(keyword.lower() for keyword in self.keywords)
        self.categories = tuple(self.categories)
        self.category_tags = {
            name: tuple(tag.lower() for tag in tags)
            for name, tags in self.category_tags.items()
        }

    def update_keywords(self, keywords: Iterable[str]) -> None:
        """Replace the continuous keyword queries ("users can change their
        preferences at any time")."""
        self.keywords = tuple(keyword.lower() for keyword in keywords)

    def update_categories(self, categories: Iterable[str]) -> None:
        self.categories = tuple(categories)

    # -- matching ---------------------------------------------------------------

    def interest_tags(self) -> Tuple[str, ...]:
        """All tags implied by the selected categories."""
        tags: List[str] = []
        for category in self.categories:
            tags.extend(self.category_tags.get(category, ()))
        return tuple(dict.fromkeys(tags))

    def matches_tag(self, tag: str) -> bool:
        lowered = tag.lower()
        if any(keyword in lowered for keyword in self.keywords):
            return True
        return lowered in self.interest_tags()

    def match_strength(self, pair: TagPair) -> float:
        """0.0 (no tag matches), 0.5 (one matches) or 1.0 (both match)."""
        matches = sum(1 for tag in pair.as_tuple() if self.matches_tag(tag))
        return matches / 2.0


class PersonalizationEngine:
    """Re-rank emergent-topic rankings according to registered profiles."""

    def __init__(self) -> None:
        self._profiles: Dict[str, UserProfile] = {}

    def __len__(self) -> int:
        return len(self._profiles)

    def register(self, profile: UserProfile) -> UserProfile:
        """Add or replace a user profile."""
        self._profiles[profile.user_id] = profile
        return profile

    def unregister(self, user_id: str) -> None:
        self._profiles.pop(user_id, None)

    def profile(self, user_id: str) -> UserProfile:
        try:
            return self._profiles[user_id]
        except KeyError:
            raise KeyError(f"no profile registered for user {user_id!r}") from None

    def users(self) -> List[str]:
        return sorted(self._profiles)

    # -- re-ranking -----------------------------------------------------------------

    def personalize(self, ranking: Ranking, user_id: str,
                    top_k: Optional[int] = None) -> Ranking:
        """The ranking as seen by ``user_id``."""
        profile = self.profile(user_id)
        return personalize_ranking(ranking, profile, top_k=top_k)

    def personalize_all(self, ranking: Ranking,
                        top_k: Optional[int] = None) -> Dict[str, Ranking]:
        """Personalized rankings for every registered user."""
        return {
            user_id: personalize_ranking(ranking, profile, top_k=top_k)
            for user_id, profile in self._profiles.items()
        }


def personalize_ranking(
    ranking: Ranking,
    profile: UserProfile,
    top_k: Optional[int] = None,
) -> Ranking:
    """Apply one profile to one ranking.

    Matching topics are boosted by ``1 + (boost - 1) * match_strength``; with
    ``filter_only`` non-matching topics are dropped.  The result keeps the
    original timestamp and is labelled with the user id so side-by-side
    comparisons (show case 3) stay readable.
    """
    personalized: List[EmergentTopic] = []
    for topic in ranking:
        strength = profile.match_strength(topic.pair)
        if profile.filter_only and strength == 0.0:
            continue
        multiplier = 1.0 + (profile.boost - 1.0) * strength
        personalized.append(EmergentTopic(
            pair=topic.pair,
            score=topic.score * multiplier,
            correlation=topic.correlation,
            predicted_correlation=topic.predicted_correlation,
            prediction_error=topic.prediction_error,
            seed_tag=topic.seed_tag,
            timestamp=topic.timestamp,
        ))
    personalized.sort(key=lambda topic: (-topic.score, topic.pair))
    if top_k is not None:
        personalized = personalized[:top_k]
    return Ranking(
        timestamp=ranking.timestamp,
        topics=personalized,
        label=f"user:{profile.user_id}",
    )
