"""Correlation measures over windowed tag-pair statistics.

Stage (ii) of the framework: "For each such pair, we continuously monitor
the amount of documents that are annotated with both tags.  There are
multiple ways how to calculate a correlation measure that reflects some
notion of interestingness."  The inputs of every measure are the windowed
counts collected by the tracker — how many documents carry tag *a*, tag
*b*, both, and how many documents the window holds in total — plus, for the
information-theoretic measure, the two tags' co-tag usage distributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Type

from repro.core.types import TagPair


@dataclass(frozen=True)
class PairCounts:
    """Windowed counts for one tag pair.

    ``pair`` is optional context for error messages: when the tracker
    samples thousands of candidates, a validation failure must name the
    canonical pair it came from or it is undebuggable.  The field is
    excluded from equality/hashing — two count tuples compare equal
    regardless of which pair produced them.
    """

    count_a: int
    count_b: int
    count_both: int
    total_documents: int
    pair: Optional[TagPair] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if min(self.count_a, self.count_b, self.count_both, self.total_documents) < 0:
            raise ValueError(f"counts must be non-negative{self._pair_context()}")
        if self.count_both > min(self.count_a, self.count_b):
            raise ValueError(
                "the intersection cannot exceed either tag count"
                f"{self._pair_context()}"
            )
        if max(self.count_a, self.count_b) > self.total_documents:
            raise ValueError(
                "tag counts cannot exceed the document count"
                f"{self._pair_context()}"
            )

    def _pair_context(self) -> str:
        """`` for pair (a, b)`` when the canonical pair is known, else ``""``."""
        return "" if self.pair is None else f" for pair {self.pair}"

    @property
    def union(self) -> int:
        return self.count_a + self.count_b - self.count_both


class CorrelationMeasure:
    """Interface: map windowed pair counts to a correlation value."""

    #: Registry name, set by subclasses.
    name = "base"

    #: Whether :mod:`repro.core.vectorized` carries a batched kernel that is
    #: bit-identical to :meth:`value`.  Measures that need the per-tag usage
    #: distributions (``kl``) stay scalar.
    vectorizes = False

    def value(
        self,
        counts: PairCounts,
        usage_a: Optional[Mapping[str, int]] = None,
        usage_b: Optional[Mapping[str, int]] = None,
    ) -> float:
        """Correlation of the pair.  Higher means more correlated.

        ``usage_a``/``usage_b`` are optional co-tag usage distributions (tag
        -> count of co-occurrences) used by the information-theoretic
        measure; set-overlap measures ignore them.
        """
        raise NotImplementedError


class JaccardCorrelation(CorrelationMeasure):
    """Intersection over union of the two tags' document sets."""

    name = "jaccard"
    vectorizes = True

    def value(self, counts: PairCounts, usage_a=None, usage_b=None) -> float:
        union = counts.union
        if union == 0:
            return 0.0
        return counts.count_both / union


class OverlapCorrelation(CorrelationMeasure):
    """Overlap coefficient: intersection over the smaller document set.

    Suits the Figure 1 setting where one tag is much more popular than the
    other — the measure is driven by how much of the *rare* tag's documents
    also carry the popular tag.
    """

    name = "overlap"
    vectorizes = True

    def value(self, counts: PairCounts, usage_a=None, usage_b=None) -> float:
        smaller = min(counts.count_a, counts.count_b)
        if smaller == 0:
            return 0.0
        return counts.count_both / smaller


class CosineCorrelation(CorrelationMeasure):
    """Cosine similarity of the two binary document-incidence vectors."""

    name = "cosine"
    vectorizes = True

    def value(self, counts: PairCounts, usage_a=None, usage_b=None) -> float:
        denominator = math.sqrt(counts.count_a * counts.count_b)
        if denominator == 0:
            return 0.0
        return counts.count_both / denominator


class PmiCorrelation(CorrelationMeasure):
    """Normalised pointwise mutual information of the two tags.

    PMI is normalised by ``-log p(a, b)`` so the value lies in [-1, 1]; the
    tracker maps negative values to 0 since anti-correlation is never an
    emergent topic.
    """

    name = "pmi"
    vectorizes = True

    def value(self, counts: PairCounts, usage_a=None, usage_b=None) -> float:
        if counts.total_documents == 0 or counts.count_both == 0:
            return 0.0
        p_a = counts.count_a / counts.total_documents
        p_b = counts.count_b / counts.total_documents
        p_ab = counts.count_both / counts.total_documents
        if p_a == 0 or p_b == 0:
            return 0.0
        pmi = math.log(p_ab / (p_a * p_b))
        normaliser = -math.log(p_ab)
        if normaliser == 0:
            return 1.0
        return max(0.0, pmi / normaliser)


class KlDivergenceCorrelation(CorrelationMeasure):
    """Similarity of the two tags' co-tag usage distributions.

    "In the more complex case of documents being represented by their entire
    tag sets or term distributions, we can apply information-theory measures
    like relative entropy to assess the similarity of tag/term usage."  We
    compute the symmetrised, smoothed KL divergence between the co-tag
    distributions of the two tags and map it to a similarity in (0, 1] via
    ``1 / (1 + divergence)`` so that "more similar usage" means a larger
    correlation value, consistent with the other measures.
    """

    name = "kl"

    def __init__(self, smoothing: float = 0.5):
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self.smoothing = float(smoothing)

    def value(self, counts: PairCounts, usage_a=None, usage_b=None) -> float:
        if not usage_a or not usage_b:
            # Without usage distributions fall back to Jaccard so the measure
            # degrades gracefully rather than silently returning zeros.
            return JaccardCorrelation().value(counts)
        divergence = self._symmetric_kl(usage_a, usage_b)
        return 1.0 / (1.0 + divergence)

    def _symmetric_kl(
        self, usage_a: Mapping[str, int], usage_b: Mapping[str, int]
    ) -> float:
        vocabulary = set(usage_a) | set(usage_b)
        if not vocabulary:
            return 0.0
        p = self._smooth(usage_a, vocabulary)
        q = self._smooth(usage_b, vocabulary)
        kl_pq = sum(p[t] * math.log(p[t] / q[t]) for t in vocabulary)
        kl_qp = sum(q[t] * math.log(q[t] / p[t]) for t in vocabulary)
        return 0.5 * (kl_pq + kl_qp)

    def _smooth(self, usage: Mapping[str, int], vocabulary: set) -> Dict[str, float]:
        total = sum(usage.get(t, 0) for t in vocabulary) + self.smoothing * len(vocabulary)
        return {
            t: (usage.get(t, 0) + self.smoothing) / total for t in vocabulary
        }


_MEASURE_REGISTRY: Dict[str, Type[CorrelationMeasure]] = {
    JaccardCorrelation.name: JaccardCorrelation,
    OverlapCorrelation.name: OverlapCorrelation,
    CosineCorrelation.name: CosineCorrelation,
    PmiCorrelation.name: PmiCorrelation,
    KlDivergenceCorrelation.name: KlDivergenceCorrelation,
}


def available_measures() -> List[str]:
    """Names accepted by :func:`make_measure`."""
    return sorted(_MEASURE_REGISTRY)


def vectorizable_measures() -> List[str]:
    """Measure names with a bit-identical batched kernel in ``vectorized``."""
    return sorted(
        name for name, cls in _MEASURE_REGISTRY.items() if cls.vectorizes
    )


def make_measure(name: str, **kwargs) -> CorrelationMeasure:
    """Instantiate a correlation measure by its registry name."""
    try:
        measure_class = _MEASURE_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown correlation measure {name!r}; available: {available_measures()}"
        ) from None
    return measure_class(**kwargs)
