"""Document and corpus containers shared by all dataset generators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class Document:
    """One synthetic document: the unit that flows into the stream engine."""

    timestamp: float
    doc_id: str
    tags: FrozenSet[str] = frozenset()
    text: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError("timestamp must be non-negative")
        if not self.doc_id:
            raise ValueError("doc_id must be non-empty")
        object.__setattr__(self, "tags", frozenset(self.tags))

    def has_tags(self, *tags: str) -> bool:
        """True when the document carries every one of ``tags``."""
        return all(tag in self.tags for tag in tags)


class Corpus:
    """A time-ordered collection of documents with simple query helpers."""

    def __init__(self, documents: Optional[Iterable[Document]] = None):
        self._documents: List[Document] = []
        if documents is not None:
            for document in documents:
                self.add(document)

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def __getitem__(self, index: int) -> Document:
        return self._documents[index]

    def add(self, document: Document) -> None:
        if self._documents and document.timestamp < self._documents[-1].timestamp:
            raise ValueError(
                "documents must be added in non-decreasing timestamp order"
            )
        self._documents.append(document)

    def extend(self, documents: Iterable[Document]) -> None:
        for document in documents:
            self.add(document)

    def iter_batches(self, batch_size: int) -> Iterator[List[Document]]:
        """Yield the documents as time-ordered chunks of ``batch_size``.

        The last chunk may be shorter; feeding the chunks to a batched
        consumer in order reproduces the document-at-a-time stream exactly.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        for start in range(0, len(self._documents), batch_size):
            yield self._documents[start:start + batch_size]

    def between(self, start: float, end: float) -> "Corpus":
        """Documents with ``start <= timestamp <= end``."""
        if end < start:
            raise ValueError("end must not precede start")
        return Corpus(
            document for document in self._documents
            if start <= document.timestamp <= end
        )

    def with_tag(self, tag: str) -> "Corpus":
        return Corpus(d for d in self._documents if tag in d.tags)

    def with_tags(self, *tags: str) -> "Corpus":
        return Corpus(d for d in self._documents if d.has_tags(*tags))

    def tags(self) -> List[str]:
        """All distinct tags appearing in the corpus, sorted."""
        distinct = set()
        for document in self._documents:
            distinct.update(document.tags)
        return sorted(distinct)

    def time_range(self) -> Tuple[float, float]:
        if not self._documents:
            raise ValueError("empty corpus has no time range")
        return self._documents[0].timestamp, self._documents[-1].timestamp
