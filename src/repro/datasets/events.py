"""Scripted emergent events and their ground truth.

An emergent topic, in enBlogue's sense, is a pair of tags whose
co-occurrence suddenly grows.  The generators create such topics by
injecting *events*: for the duration of an event, extra documents carrying
the event's tag pair (and some descriptive text) are woven into the
background stream.  Because the injection times and tag pairs are known,
the evaluation harness can score detectors quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


def canonical_pair(tag_a: str, tag_b: str) -> Tuple[str, str]:
    """Order-independent representation of a tag pair."""
    if tag_a == tag_b:
        raise ValueError("a topic pair needs two distinct tags")
    return (tag_a, tag_b) if tag_a <= tag_b else (tag_b, tag_a)


@dataclass(frozen=True)
class EmergentEvent:
    """One scripted correlation shift.

    ``intensity`` is the number of extra co-tagged documents injected per
    time step while the event is active; ``ramp`` lets the injection grow
    linearly over the first ``ramp`` fraction of the event, which produces
    the gradual-but-sudden shape of Figure 1 rather than a step function.
    """

    name: str
    tags: Tuple[str, str]
    start: float
    duration: float
    intensity: float = 4.0
    ramp: float = 0.25
    category: str = ""
    description: str = ""
    extra_tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("event name must be non-empty")
        if len(self.tags) != 2 or self.tags[0] == self.tags[1]:
            raise ValueError("an event needs exactly two distinct tags")
        if self.start < 0:
            raise ValueError("event start must be non-negative")
        if self.duration <= 0:
            raise ValueError("event duration must be positive")
        if self.intensity <= 0:
            raise ValueError("event intensity must be positive")
        if not 0 <= self.ramp <= 1:
            raise ValueError("ramp must lie in [0, 1]")
        object.__setattr__(self, "tags", canonical_pair(*self.tags))

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def pair(self) -> Tuple[str, str]:
        return self.tags

    def active_at(self, timestamp: float) -> bool:
        return self.start <= timestamp < self.end

    def intensity_at(self, timestamp: float) -> float:
        """Injection rate at ``timestamp`` (0 outside the event window)."""
        if not self.active_at(timestamp):
            return 0.0
        if self.ramp == 0:
            return self.intensity
        ramp_end = self.start + self.ramp * self.duration
        if timestamp >= ramp_end:
            return self.intensity
        progress = (timestamp - self.start) / (ramp_end - self.start)
        return self.intensity * max(progress, 0.05)


class EventSchedule:
    """The ground truth: every event injected into a generated stream."""

    def __init__(self, events: Optional[Iterable[EmergentEvent]] = None):
        self._events: List[EmergentEvent] = []
        if events:
            for event in events:
                self.add(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[EmergentEvent]:
        return iter(self._events)

    def add(self, event: EmergentEvent) -> None:
        if any(existing.name == event.name for existing in self._events):
            raise ValueError(f"duplicate event name {event.name!r}")
        self._events.append(event)

    def events(self) -> List[EmergentEvent]:
        return list(self._events)

    def active_at(self, timestamp: float) -> List[EmergentEvent]:
        return [event for event in self._events if event.active_at(timestamp)]

    def by_category(self, category: str) -> List[EmergentEvent]:
        return [event for event in self._events if event.category == category]

    def pairs(self) -> List[Tuple[str, str]]:
        """The ground-truth emergent tag pairs, in event order."""
        return [event.pair for event in self._events]

    def pair_onsets(self) -> Dict[Tuple[str, str], float]:
        """Earliest onset time per ground-truth pair."""
        onsets: Dict[Tuple[str, str], float] = {}
        for event in self._events:
            onsets[event.pair] = min(onsets.get(event.pair, event.start), event.start)
        return onsets

    def time_range(self) -> Tuple[float, float]:
        if not self._events:
            raise ValueError("empty schedule has no time range")
        return (
            min(event.start for event in self._events),
            max(event.end for event in self._events),
        )
