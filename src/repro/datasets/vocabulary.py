"""Tag vocabularies and Zipf-distributed tag sampling.

Real Web 2.0 tag distributions are heavily skewed: a few tags (broad
categories) appear on a large fraction of documents while the long tail is
rare.  The generators therefore sample background tags from a Zipf
distribution over a domain vocabulary, which makes seed-tag selection and
the popular/rare contrast of Figure 1 behave as they do on real data.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence


class ZipfSampler:
    """Sample items with probability proportional to ``1 / rank**exponent``."""

    def __init__(
        self,
        items: Sequence[str],
        exponent: float = 1.1,
        rng: Optional[random.Random] = None,
    ):
        if not items:
            raise ValueError("cannot sample from an empty item list")
        if exponent <= 0:
            raise ValueError("exponent must be positive")
        self.items = list(items)
        self.exponent = float(exponent)
        self._rng = rng or random.Random(0)
        weights = [1.0 / (rank ** self.exponent) for rank in range(1, len(self.items) + 1)]
        total = sum(weights)
        self._cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            self._cumulative.append(running)

    def sample(self) -> str:
        """Draw one item."""
        u = self._rng.random()
        for index, cumulative in enumerate(self._cumulative):
            if u <= cumulative:
                return self.items[index]
        return self.items[-1]

    def sample_distinct(self, count: int) -> List[str]:
        """Draw ``count`` distinct items (fewer only if the vocabulary is smaller)."""
        if count <= 0:
            return []
        chosen: List[str] = []
        seen = set()
        attempts = 0
        limit = max(100, 50 * count)
        while len(chosen) < min(count, len(self.items)) and attempts < limit:
            item = self.sample()
            attempts += 1
            if item not in seen:
                seen.add(item)
                chosen.append(item)
        return chosen

    def probability(self, item: str) -> float:
        """Sampling probability of ``item`` (0.0 when not in the vocabulary)."""
        try:
            rank = self.items.index(item) + 1
        except ValueError:
            return 0.0
        weights = [1.0 / (r ** self.exponent) for r in range(1, len(self.items) + 1)]
        return (1.0 / (rank ** self.exponent)) / sum(weights)


class TagVocabulary:
    """A named collection of tags grouped into thematic categories."""

    def __init__(self, categories: Optional[Dict[str, Sequence[str]]] = None):
        self._categories: Dict[str, List[str]] = {}
        if categories:
            for name, tags in categories.items():
                self.add_category(name, tags)

    def add_category(self, name: str, tags: Sequence[str]) -> None:
        if not name:
            raise ValueError("category name must be non-empty")
        if not tags:
            raise ValueError(f"category {name!r} needs at least one tag")
        self._categories[name] = list(dict.fromkeys(tags))

    def categories(self) -> List[str]:
        return list(self._categories)

    def tags(self, category: Optional[str] = None) -> List[str]:
        """Tags of one category, or all tags (category order preserved)."""
        if category is not None:
            if category not in self._categories:
                raise KeyError(f"unknown category {category!r}")
            return list(self._categories[category])
        all_tags: List[str] = []
        for tags in self._categories.values():
            all_tags.extend(tags)
        return list(dict.fromkeys(all_tags))

    def category_of(self, tag: str) -> Optional[str]:
        """First category containing ``tag`` (None when unknown)."""
        for name, tags in self._categories.items():
            if tag in tags:
                return name
        return None

    def __len__(self) -> int:
        return len(self.tags())

    def __contains__(self, tag: str) -> bool:
        return any(tag in tags for tags in self._categories.values())


def news_vocabulary() -> TagVocabulary:
    """A compact news-style vocabulary used by the default generators."""
    return TagVocabulary({
        "politics": [
            "politics", "elections", "congress", "white house", "campaign",
            "voting", "senate", "policy", "debate", "primaries",
        ],
        "weather": [
            "weather", "hurricane", "storm", "flooding", "evacuation",
            "forecast", "disaster relief", "climate",
        ],
        "sports": [
            "sports", "baseball", "tennis", "olympics", "football",
            "championship", "world series", "super bowl",
        ],
        "business": [
            "business", "economy", "stocks", "banking", "markets",
            "recession", "federal reserve", "bailout",
        ],
        "technology": [
            "technology", "internet", "software", "startups", "research",
            "databases", "conference",
        ],
        "world": [
            "world", "europe", "asia", "travel", "air traffic",
            "volcano", "iceland", "greece",
        ],
    })
