"""A synthetic Twitter-style stream for show case 2.

The live Twitter wrapper of the demo is replaced by a generator producing
short, hashtag-annotated posts at a much higher rate than the news archive,
plus the machinery for the audience experiment of show case 2: an injected
"SIGMOD + Athens" topic that should climb into the emergent-topic ranking
while the demo runs.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.datasets.documents import Corpus, Document
from repro.datasets.events import EmergentEvent, EventSchedule
from repro.datasets.synthetic import SyntheticStreamGenerator
from repro.datasets.vocabulary import TagVocabulary

#: Seconds per hour, the natural step for a tweet stream.
HOUR = 3600.0


def twitter_vocabulary() -> TagVocabulary:
    """Hashtag-style vocabulary for the synthetic tweet stream."""
    return TagVocabulary({
        "general": [
            "news", "breaking", "video", "photo", "live", "today",
            "follow", "trending",
        ],
        "tech": [
            "tech", "startups", "databases", "research", "conference",
            "sigmod", "datascience",
        ],
        "places": [
            "athens", "greece", "newyork", "london", "iceland",
            "europe", "travel",
        ],
        "sports": [
            "sports", "football", "tennis", "olympics", "worldcup",
        ],
        "politics": [
            "politics", "election", "debate", "vote",
        ],
    })


def sigmod_athens_event(start_hour: float = 36.0, duration_hours: float = 12.0,
                        intensity: float = 8.0) -> EmergentEvent:
    """The audience-injected topic of show case 2.

    "With the proper system configuration and the help of the present
    twitter users we may be able to see a topic regarding SIGMOD and Athens
    in a highly ranked position in the list of the emergent topics."
    """
    return EmergentEvent(
        name="sigmod-athens",
        tags=("sigmod", "athens"),
        start=start_hour * HOUR,
        duration=duration_hours * HOUR,
        intensity=intensity,
        category="tech",
        description="SIGMOD attendees tweet about the conference in Athens",
        extra_tags=("conference",),
    )


class TweetStreamGenerator:
    """Generate a hashtag stream over a few days of simulated time."""

    def __init__(
        self,
        hours: int = 72,
        tweets_per_hour: int = 60,
        schedule: Optional[EventSchedule] = None,
        include_sigmod_event: bool = True,
        seed: int = 23,
    ):
        if hours <= 0:
            raise ValueError("hours must be positive")
        if tweets_per_hour <= 0:
            raise ValueError("tweets_per_hour must be positive")
        self.hours = int(hours)
        self.tweets_per_hour = int(tweets_per_hour)
        if schedule is None:
            events = []
            if include_sigmod_event:
                events.append(sigmod_athens_event())
            events.append(EmergentEvent(
                name="volcano-travel-chaos",
                tags=("iceland", "travel"),
                start=12 * HOUR, duration=18 * HOUR, intensity=6.0,
                category="places",
                description="ash cloud over Europe strands travellers",
                extra_tags=("europe",),
            ))
            schedule = EventSchedule(events)
        self.schedule = schedule
        self.seed = int(seed)

    def _generator(self) -> SyntheticStreamGenerator:
        return SyntheticStreamGenerator(
            vocabulary=twitter_vocabulary(),
            schedule=self.schedule,
            docs_per_step=self.tweets_per_hour,
            tags_per_doc=(1, 3),
            step=HOUR,
            start_time=0.0,
            seed=self.seed,
            doc_prefix="tweet",
        )

    def generate(self) -> Tuple[Corpus, EventSchedule]:
        corpus = self._generator().generate(self.hours)
        return corpus, self.schedule

    def iter_batches(
        self, batch_size: Optional[int] = None
    ) -> Iterator[List[Document]]:
        """Yield the tweet stream as time-ordered chunks (default: per hour).

        A fresh replay each call — identical documents to :meth:`generate`
        thanks to the fixed seed — suitable for the engine's batched
        ingestion path without materialising the whole corpus.
        """
        yield from self._generator().iter_batches(self.hours, batch_size)
