"""Synthetic RSS/blog feeds for show case 2.

The demo consumes "several RSS feeds from blogs and online newspapers"
alongside Twitter.  Each synthetic feed has its own thematic slant (its own
tag vocabulary weighting) and a lower posting rate than the tweet stream;
the feeds are meant to be merged with the tweet stream through
:class:`repro.streams.MergedSource`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.datasets.documents import Corpus
from repro.datasets.events import EventSchedule
from repro.datasets.synthetic import SyntheticStreamGenerator
from repro.datasets.vocabulary import TagVocabulary, news_vocabulary

#: Seconds per hour.
HOUR = 3600.0

#: Default feed line-up: name -> the vocabulary categories it emphasises.
DEFAULT_FEEDS: Dict[str, Tuple[str, ...]] = {
    "world-news-blog": ("world", "politics"),
    "tech-review": ("technology", "business"),
    "sports-desk": ("sports",),
}


class RssFeedGenerator:
    """Generate one or more thematically slanted feeds."""

    def __init__(
        self,
        hours: int = 72,
        posts_per_hour: int = 6,
        feeds: Optional[Dict[str, Tuple[str, ...]]] = None,
        schedule: Optional[EventSchedule] = None,
        seed: int = 31,
    ):
        if hours <= 0:
            raise ValueError("hours must be positive")
        if posts_per_hour <= 0:
            raise ValueError("posts_per_hour must be positive")
        self.hours = int(hours)
        self.posts_per_hour = int(posts_per_hour)
        self.feeds = dict(DEFAULT_FEEDS) if feeds is None else dict(feeds)
        if not self.feeds:
            raise ValueError("at least one feed is required")
        self.schedule = schedule or EventSchedule()
        self.seed = int(seed)

    def _feed_vocabulary(self, categories: Tuple[str, ...]) -> TagVocabulary:
        base = news_vocabulary()
        vocabulary = TagVocabulary()
        selected = categories or tuple(base.categories())
        for category in selected:
            vocabulary.add_category(category, base.tags(category))
        return vocabulary

    def generate_feed(self, feed_name: str) -> Corpus:
        """Generate one feed's corpus."""
        if feed_name not in self.feeds:
            raise KeyError(f"unknown feed {feed_name!r}")
        categories = self.feeds[feed_name]
        generator = SyntheticStreamGenerator(
            vocabulary=self._feed_vocabulary(categories),
            schedule=self.schedule,
            docs_per_step=self.posts_per_hour,
            tags_per_doc=(2, 4),
            step=HOUR,
            start_time=0.0,
            seed=self.seed + sum(ord(c) for c in feed_name),
            doc_prefix=f"rss-{feed_name}",
        )
        return generator.generate(self.hours)

    def generate_all(self) -> Dict[str, Corpus]:
        """Generate every configured feed."""
        return {name: self.generate_feed(name) for name in self.feeds}

    def feed_names(self) -> List[str]:
        return list(self.feeds)
