"""A synthetic New York Times-style archive for show case 1.

The real archive (1.8 million full-text articles, 1987-2007, each manually
assigned to categories and annotated with descriptors) is proprietary.  The
generator below reproduces its *shape*: articles carry one or two broad
editorial categories plus a handful of descriptors, both used as tags, and a
schedule of scripted historic events (elections, hurricanes, sport events —
the categories the paper names for show case 1) creates genuine correlation
shifts at known archive dates.

Timestamps are seconds from the archive start; one "archive day" is 86400
seconds, so benchmarks can speak in days the way the demo does.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.datasets.documents import Corpus, Document
from repro.datasets.events import EmergentEvent, EventSchedule
from repro.datasets.synthetic import SyntheticStreamGenerator
from repro.datasets.vocabulary import TagVocabulary

#: Seconds per archive day.
DAY = 86400.0


def nyt_vocabulary() -> TagVocabulary:
    """Categories and descriptors modelled on NYT back-office annotations."""
    return TagVocabulary({
        "us elections": [
            "politics", "elections", "presidential campaign", "primaries",
            "voting", "debates", "swing states", "congress", "white house",
        ],
        "hurricanes": [
            "weather", "hurricane", "storm damage", "evacuation",
            "flooding", "disaster relief", "gulf coast", "new orleans",
            "louisiana", "florida",
        ],
        "sports": [
            "sports", "baseball", "world series", "tennis", "olympics",
            "super bowl", "championship", "athletes",
        ],
        "business": [
            "business", "economy", "stocks", "banking", "wall street",
            "recession", "federal reserve", "bailout", "housing market",
        ],
        "world news": [
            "world", "europe", "travel", "air traffic", "volcano",
            "iceland", "greece", "united nations",
        ],
        "science": [
            "science", "research", "space", "health", "medicine",
            "technology", "internet",
        ],
    })


def default_historic_events(years: float = 2.0) -> EventSchedule:
    """Scripted historic events spread over ``years`` archive years.

    The three demo categories are all represented: a US election cycle, two
    hurricanes making landfall, and championship sport events; a financial
    crisis and a volcano/air-traffic disruption (the paper's running example)
    round out the schedule.  Event times scale with the archive length so a
    compressed archive keeps the same relative layout.
    """
    if years <= 0:
        raise ValueError("years must be positive")
    span = years * 365.0 * DAY

    def at(fraction: float) -> float:
        return fraction * span

    return EventSchedule([
        EmergentEvent(
            name="primary-upset",
            tags=("primaries", "swing states"),
            start=at(0.10), duration=20 * DAY, intensity=5.0,
            category="us elections",
            description="an unexpected primary result reshapes the campaign",
        ),
        EmergentEvent(
            name="election-night",
            tags=("elections", "white house"),
            start=at(0.45), duration=12 * DAY, intensity=7.0,
            category="us elections",
            description="election night and the transition to the white house",
        ),
        EmergentEvent(
            name="hurricane-landfall",
            tags=("hurricane", "new orleans"),
            start=at(0.30), duration=15 * DAY, intensity=8.0,
            category="hurricanes",
            description="Hurricane Katrina makes landfall near New Orleans",
            extra_tags=("evacuation",),
        ),
        EmergentEvent(
            name="second-storm",
            tags=("hurricane", "florida"),
            start=at(0.62), duration=10 * DAY, intensity=5.0,
            category="hurricanes",
            description="a second hurricane threatens Florida",
        ),
        EmergentEvent(
            name="world-series-upset",
            tags=("baseball", "world series"),
            start=at(0.55), duration=8 * DAY, intensity=6.0,
            category="sports",
            description="an underdog reaches the World Series",
        ),
        EmergentEvent(
            name="olympic-record",
            tags=("olympics", "athletes"),
            start=at(0.75), duration=10 * DAY, intensity=6.0,
            category="sports",
            description="Olympic records fall, Michael Phelps dominates",
        ),
        EmergentEvent(
            name="bank-collapse",
            tags=("banking", "bailout"),
            start=at(0.85), duration=14 * DAY, intensity=7.0,
            category="business",
            description="Lehman Brothers collapses and a bailout is debated",
            extra_tags=("wall street",),
        ),
        EmergentEvent(
            name="volcano-air-traffic",
            tags=("volcano", "air traffic"),
            start=at(0.92), duration=9 * DAY, intensity=7.0,
            category="world news",
            description=(
                "the eruption of Eyjafjallajokull in Iceland disrupts "
                "European air traffic"
            ),
            extra_tags=("iceland",),
        ),
    ])


class NytArchiveGenerator:
    """Generate a compressed NYT-style archive with scripted events."""

    def __init__(
        self,
        years: float = 2.0,
        articles_per_day: int = 24,
        schedule: Optional[EventSchedule] = None,
        seed: int = 19,
    ):
        if years <= 0:
            raise ValueError("years must be positive")
        if articles_per_day <= 0:
            raise ValueError("articles_per_day must be positive")
        self.years = float(years)
        self.articles_per_day = int(articles_per_day)
        self.schedule = schedule or default_historic_events(years)
        self.seed = int(seed)

    @property
    def num_days(self) -> int:
        return int(self.years * 365)

    def _generator(self) -> SyntheticStreamGenerator:
        return SyntheticStreamGenerator(
            vocabulary=nyt_vocabulary(),
            schedule=self.schedule,
            docs_per_step=self.articles_per_day,
            tags_per_doc=(2, 5),
            step=DAY,
            start_time=0.0,
            seed=self.seed,
            doc_prefix="nyt",
        )

    def generate(self) -> Tuple[Corpus, EventSchedule]:
        """Build the archive corpus and return it with its ground truth."""
        corpus = self._generator().generate(self.num_days)
        return corpus, self.schedule

    def iter_batches(
        self, batch_size: Optional[int] = None
    ) -> Iterator[List[Document]]:
        """Yield the archive as time-ordered chunks (default: one per day).

        A fresh replay each call — identical documents to :meth:`generate`
        thanks to the fixed seed — suitable for the engine's batched
        ingestion path without materialising the whole archive.
        """
        yield from self._generator().iter_batches(self.num_days, batch_size)

    def categories(self) -> List[str]:
        return nyt_vocabulary().categories()
