"""The generic synthetic stream generator and the Figure 1 scenario.

The generator produces a background stream of documents whose tags follow a
Zipf distribution over a domain vocabulary, and weaves in the extra
co-tagged documents demanded by an :class:`~repro.datasets.events.EventSchedule`.
Time advances in discrete steps (e.g. one step per hour); within a step the
documents are spread uniformly so the stream engine still sees strictly
ordered timestamps.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.datasets.documents import Corpus, Document
from repro.datasets.events import EmergentEvent, EventSchedule
from repro.datasets.vocabulary import TagVocabulary, ZipfSampler, news_vocabulary


class SyntheticStreamGenerator:
    """Background tag stream plus injected correlation-shift events."""

    def __init__(
        self,
        vocabulary: Optional[TagVocabulary] = None,
        schedule: Optional[EventSchedule] = None,
        docs_per_step: int = 20,
        tags_per_doc: Tuple[int, int] = (2, 4),
        step: float = 3600.0,
        start_time: float = 0.0,
        zipf_exponent: float = 1.1,
        seed: int = 7,
        doc_prefix: str = "doc",
    ):
        if docs_per_step <= 0:
            raise ValueError("docs_per_step must be positive")
        if step <= 0:
            raise ValueError("step must be positive")
        if tags_per_doc[0] < 1 or tags_per_doc[1] < tags_per_doc[0]:
            raise ValueError("tags_per_doc must be a (min, max) pair with min >= 1")
        self.vocabulary = vocabulary or news_vocabulary()
        self.schedule = schedule or EventSchedule()
        self.docs_per_step = int(docs_per_step)
        self.tags_per_doc = (int(tags_per_doc[0]), int(tags_per_doc[1]))
        self.step = float(step)
        self.start_time = float(start_time)
        self.seed = int(seed)
        self.doc_prefix = doc_prefix
        self._rng = random.Random(seed)
        self._sampler = ZipfSampler(
            self.vocabulary.tags(), exponent=zipf_exponent, rng=self._rng
        )
        self._doc_counter = 0

    # -- document construction ---------------------------------------------

    def _next_doc_id(self) -> str:
        self._doc_counter += 1
        return f"{self.doc_prefix}-{self._doc_counter:07d}"

    def _background_document(self, timestamp: float) -> Document:
        count = self._rng.randint(*self.tags_per_doc)
        tags = self._sampler.sample_distinct(count)
        text = "coverage of " + " and ".join(tags)
        return Document(
            timestamp=timestamp,
            doc_id=self._next_doc_id(),
            tags=frozenset(tags),
            text=text,
            metadata={"kind": "background"},
        )

    def _event_document(self, timestamp: float, event: EmergentEvent) -> Document:
        tags = set(event.pair) | set(event.extra_tags)
        # A little background noise keeps event documents from being
        # trivially separable from the rest of the stream.
        tags.add(self._sampler.sample())
        text = event.description or (
            f"breaking: {event.pair[0]} and {event.pair[1]} — {event.name}"
        )
        return Document(
            timestamp=timestamp,
            doc_id=self._next_doc_id(),
            tags=frozenset(tags),
            text=text,
            metadata={"kind": "event", "event": event.name},
        )

    # -- generation ----------------------------------------------------------

    def steps(self, num_steps: int) -> Iterator[List[Document]]:
        """Yield the documents of each time step, already time-ordered."""
        if num_steps <= 0:
            raise ValueError("num_steps must be positive")
        for index in range(num_steps):
            step_start = self.start_time + index * self.step
            documents: List[Document] = []
            total_background = self.docs_per_step
            event_documents: List[Tuple[float, EmergentEvent]] = []
            for event in self.schedule.active_at(step_start):
                injected = self._poisson(event.intensity_at(step_start))
                for _ in range(injected):
                    offset = self._rng.random() * self.step
                    event_documents.append((step_start + offset, event))
            offsets = sorted(self._rng.random() * self.step for _ in range(total_background))
            background = [
                self._background_document(step_start + offset) for offset in offsets
            ]
            documents = background + [
                self._event_document(timestamp, event)
                for timestamp, event in event_documents
            ]
            documents.sort(key=lambda doc: doc.timestamp)
            yield documents

    def generate(self, num_steps: int) -> Corpus:
        """Materialise ``num_steps`` steps into a corpus."""
        corpus = Corpus()
        for step_documents in self.steps(num_steps):
            corpus.extend(step_documents)
        return corpus

    def stream(self, num_steps: int) -> Iterator[Document]:
        """Yield documents one by one in time order."""
        for step_documents in self.steps(num_steps):
            for document in step_documents:
                yield document

    def iter_batches(
        self, num_steps: int, batch_size: Optional[int] = None
    ) -> Iterator[List[Document]]:
        """Yield time-ordered chunks of documents for batched ingestion.

        Without ``batch_size`` each time step becomes one chunk (the natural
        arrival unit of the generator); with it the stream is re-chunked into
        lists of up to ``batch_size`` documents.
        """
        if batch_size is None:
            yield from self.steps(num_steps)
            return
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        batch: List[Document] = []
        for step_documents in self.steps(num_steps):
            for document in step_documents:
                batch.append(document)
                if len(batch) >= batch_size:
                    yield batch
                    batch = []
        if batch:
            yield batch

    def _poisson(self, rate: float) -> int:
        """Small-rate Poisson sample (inversion method) for injection counts."""
        if rate <= 0:
            return 0
        # Knuth's algorithm is fine for the small rates used here.
        import math

        limit = math.exp(-rate)
        k = 0
        product = 1.0
        while True:
            product *= self._rng.random()
            if product <= limit:
                return k
            k += 1


def correlation_shift_stream(
    num_events: int = 4,
    num_steps: int = 72,
    shift_start: int = 40,
    shift_length: int = 16,
    stagger: int = 4,
    popular_rate: int = 8,
    rare_rate: int = 3,
    background_docs_per_step: int = 40,
    step: float = 3600.0,
    seed: int = 17,
) -> Tuple[Corpus, EventSchedule]:
    """Pure correlation shifts with *constant* per-tag frequencies.

    This is the workload on which enBlogue and burst-based trend detection
    genuinely differ (Section 3 / Figure 1): for each scripted event the
    popular tag keeps appearing ``popular_rate`` times per step and the rare
    tag ``rare_rate`` times per step for the whole stream — no tag ever
    bursts.  What changes during the event window is only *which* documents
    the rare tag appears in: before the shift its documents carry filler
    co-tags, during the shift most of them also carry the popular tag.  A
    detector looking at single-tag frequencies sees nothing; a detector
    tracking pair correlations sees the overlap jump.

    Event ``i`` starts ``i * stagger`` steps after ``shift_start`` so the
    shifts do not all fire simultaneously.  Returns the corpus and the
    ground-truth schedule.
    """
    if num_events <= 0:
        raise ValueError("num_events must be positive")
    if num_steps <= 0:
        raise ValueError("num_steps must be positive")
    if not 0 <= shift_start < num_steps:
        raise ValueError("shift_start must fall inside the generated range")
    if shift_length <= 0:
        raise ValueError("shift_length must be positive")
    if popular_rate < 1 or rare_rate < 1:
        raise ValueError("popular_rate and rare_rate must be at least 1")
    if popular_rate <= rare_rate:
        raise ValueError("popular_rate must exceed rare_rate")
    rng = random.Random(seed)
    vocabulary = news_vocabulary()
    all_tags = vocabulary.tags()
    if len(all_tags) < 2 * num_events + 5:
        raise ValueError("vocabulary too small for the requested number of events")
    popular_tags = all_tags[:num_events]
    rare_tags = all_tags[-num_events:]
    filler = [t for t in all_tags if t not in popular_tags and t not in rare_tags]
    # Perennially co-occurring background pairs (e.g. "politics"+"congress"
    # style category pairs).  They keep the popularity baseline's top-k busy
    # with always-frequent pairs, the way real category tags do.
    perennial_pairs = [
        (filler[i], filler[i + 1]) for i in range(0, min(24, len(filler) - 1), 2)
    ]

    schedule = EventSchedule()
    starts = []
    for index in range(num_events):
        event_start = min(shift_start + index * stagger, num_steps - 1)
        starts.append(event_start)
        schedule.add(EmergentEvent(
            name=f"shift-{index}",
            tags=(popular_tags[index], rare_tags[index]),
            start=event_start * step,
            duration=shift_length * step,
            intensity=float(rare_rate),
            category="correlation-shift",
            description=(
                f"{rare_tags[index]} suddenly co-occurs with {popular_tags[index]} "
                "without either tag changing frequency"
            ),
        ))

    corpus = Corpus()
    doc_counter = 0

    def emit(timestamp: float, tags: Sequence[str], kind: str) -> None:
        nonlocal doc_counter
        doc_counter += 1
        corpus.add(Document(
            timestamp=timestamp,
            doc_id=f"shift-{doc_counter:06d}",
            tags=frozenset(tags),
            text=" ".join(tags),
            metadata={"kind": kind},
        ))

    for step_index in range(num_steps):
        step_start = step_index * step
        planned: List[Tuple[List[str], str]] = []
        for _ in range(background_docs_per_step):
            pair = perennial_pairs[rng.randrange(len(perennial_pairs))]
            planned.append(([pair[0], pair[1]], "background"))
        for index in range(num_events):
            popular, rare = popular_tags[index], rare_tags[index]
            active = starts[index] <= step_index < starts[index] + shift_length
            # Both tags keep their exact per-step rates; during the shift the
            # overlap documents are carved out of both tags' quotas so neither
            # marginal frequency changes.
            shifted = rare_rate - 1 if active else 0
            for _ in range(popular_rate - shifted):
                planned.append(([popular, rng.choice(filler)], "popular"))
            for occurrence in range(rare_rate):
                if occurrence < shifted:
                    planned.append(([rare, popular, rng.choice(filler)], "overlap"))
                else:
                    planned.append(([rare, rng.choice(filler)], "rare"))
        offsets = sorted(rng.random() * step for _ in planned)
        rng.shuffle(planned)
        for offset, (tags, kind) in zip(offsets, planned):
            emit(step_start + offset, tags, kind)

    return corpus, schedule


def figure1_stream(
    popular_tag: str = "politics",
    rare_tag: str = "volcano",
    num_steps: int = 60,
    shift_start: int = 30,
    shift_length: int = 12,
    popularity_peaks: Sequence[int] = (15, 40),
    docs_per_step: int = 30,
    step: float = 3600.0,
    seed: int = 11,
) -> Tuple[Corpus, EventSchedule]:
    """Generate the two-tag scenario illustrated in Figure 1 of the paper.

    The popular tag ``t1`` appears throughout and peaks at
    ``popularity_peaks`` without any change in its overlap with ``t2``; the
    rare tag ``t2`` appears at a low constant rate.  From ``shift_start`` the
    two tags start co-occurring heavily — the correlation shift the paper's
    figure highlights — even though the individual frequencies of the tags do
    not explain it.
    """
    if num_steps <= 0:
        raise ValueError("num_steps must be positive")
    if not 0 <= shift_start < num_steps:
        raise ValueError("shift_start must fall inside the generated range")
    rng = random.Random(seed)
    vocabulary = news_vocabulary()
    filler = [t for t in vocabulary.tags() if t not in (popular_tag, rare_tag)]
    corpus = Corpus()
    doc_counter = 0

    def emit(timestamp: float, tags: Sequence[str], kind: str) -> None:
        nonlocal doc_counter
        doc_counter += 1
        corpus.add(Document(
            timestamp=timestamp,
            doc_id=f"fig1-{doc_counter:06d}",
            tags=frozenset(tags),
            text=" ".join(tags),
            metadata={"kind": kind},
        ))

    for index in range(num_steps):
        step_start = index * step
        popular_count = 8
        if index in popularity_peaks:
            popular_count = 24  # a burst of t1 alone: no correlation change
        rare_count = 2
        overlap_count = 1 if index < shift_start else 0
        if shift_start <= index < shift_start + shift_length:
            # The emergent topic: many documents tagged with both t1 and t2.
            overlap_count = 6 + min(6, index - shift_start)
        offsets = sorted(
            rng.random() * step
            for _ in range(popular_count + rare_count + overlap_count)
        )
        cursor = 0
        for _ in range(popular_count):
            emit(step_start + offsets[cursor],
                 [popular_tag, rng.choice(filler)], "popular")
            cursor += 1
        for _ in range(rare_count):
            emit(step_start + offsets[cursor],
                 [rare_tag, rng.choice(filler)], "rare")
            cursor += 1
        for _ in range(overlap_count):
            emit(step_start + offsets[cursor],
                 [popular_tag, rare_tag, rng.choice(filler)], "overlap")
            cursor += 1

    schedule = EventSchedule([
        EmergentEvent(
            name="figure1-shift",
            tags=(popular_tag, rare_tag),
            start=shift_start * step,
            duration=shift_length * step,
            intensity=6.0,
            category="illustration",
            description="the correlation shift of Figure 1",
        )
    ])
    return corpus, schedule
