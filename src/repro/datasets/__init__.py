"""Dataset generators and replay wrappers.

The demo uses three kinds of data the reproduction cannot ship: the New York
Times annotated archive (1.8 million articles, 1987-2007), live Twitter, and
a set of RSS feeds.  The generators in this package produce synthetic
streams with the same shape — timestamped documents carrying tag sets
(categories, descriptors, hashtags, feed categories) plus free text for the
entity tagger — and, crucially, *scripted emergent events* with known onset
times and tag pairs, which gives the benchmarks ground truth the original
demo judged only by eye.
"""

from repro.datasets.documents import Document, Corpus
from repro.datasets.vocabulary import TagVocabulary, ZipfSampler
from repro.datasets.events import EmergentEvent, EventSchedule
from repro.datasets.synthetic import (
    SyntheticStreamGenerator,
    correlation_shift_stream,
    figure1_stream,
)
from repro.datasets.nyt import NytArchiveGenerator, default_historic_events
from repro.datasets.twitter import TweetStreamGenerator, sigmod_athens_event
from repro.datasets.rss import RssFeedGenerator

__all__ = [
    "Document",
    "Corpus",
    "TagVocabulary",
    "ZipfSampler",
    "EmergentEvent",
    "EventSchedule",
    "SyntheticStreamGenerator",
    "figure1_stream",
    "correlation_shift_stream",
    "NytArchiveGenerator",
    "default_historic_events",
    "TweetStreamGenerator",
    "sigmod_athens_event",
    "RssFeedGenerator",
]
