"""The on-disk checkpoint format: manifest + state files + delta journal.

A checkpoint directory holds::

    MANIFEST.json               format version, generations, engine
                                kind/config, file table with CRC-32s,
                                journal segment table
    engine-00000003.json        the engine-level *base* snapshot (gen 3)
    shard-0000-00000003.json    one file per shard worker (sharded engines)
    shard-0001-00000003.json    ...
    engine-00000004.delta       journal segment: what changed since gen 3
    shard-0000-00000004.delta   (one per shard, CRC-framed)
    ...

State files carry a monotonically increasing *generation* suffix and are
never overwritten: a new checkpoint writes a fresh generation's files
(each through a ``.tmp`` sibling, fsynced, atomically renamed), then
commits by atomically replacing the manifest, and only then prunes the
previous generations.  A crash at *any* point therefore leaves the last
committed checkpoint fully restorable — before the manifest rename the
old manifest still references the old, untouched files; after it the new
ones.  This matters most for cadence checkpointing into one directory
(``--checkpoint-every``), whose entire purpose is surviving exactly such
crashes.

Delta checkpoints (:func:`append_delta`) extend the base with an
append-only journal: a cadence tick writes one CRC-framed ``.delta``
segment per component — kilobytes proportional to the documents since the
previous tick, not megabytes proportional to the window.  The manifest
pins the chain (its ``base_generation`` and shard count); the segments
themselves commit through their self-verifying frames at strictly
consecutive generations, with one directory-fsync durability barrier per
tick.  A power cut can therefore tear a trailing run of ticks — the
frames detect exactly that and the reader falls back to the longest
verified prefix.  Damage *inside* the chain — a bad CRC with an intact
segment after it, or a generation gap, which no interrupted append can
produce — raises
:class:`~repro.persistence.snapshot.SnapshotCorruptionError`: a chain
prefix is restored whole or not at all, never partially.  The next full
checkpoint (:func:`write_checkpoint`) starts a fresh base and prunes the
journal; compaction is simply restore-then-full-snapshot.

:func:`read_checkpoint` verifies the format version and every CRC before
any state reaches a ``restore`` call, then folds the journal onto the
base through :mod:`repro.persistence.delta`, so callers always receive a
complete engine state regardless of how it was written.
"""

from __future__ import annotations

import json
import os
import re
import time
import zlib
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.persistence.snapshot import (
    SnapshotCorruptionError,
    SnapshotMismatchError,
    SnapshotVersionError,
)

#: Version of the directory layout + manifest schema (component snapshots
#: carry their own ``version`` fields on top of this).  Version 2 added
#: the delta journal; version-1 checkpoints (no journal) remain readable.
FORMAT_VERSION = 2

SUPPORTED_FORMAT_VERSIONS = (1, FORMAT_VERSION)

MANIFEST_NAME = "MANIFEST.json"

#: State files end in ``-<generation>.json``, journal segments in
#: ``-<generation>.delta``; the suffix is how stale generations are
#: recognised for pruning and collision avoidance.
_GENERATION_SUFFIX = re.compile(r"-(\d{8})\.(?:json|delta)$")

#: Header of a journal segment: magic, payload length, payload CRC-32.
#: The frame makes every segment self-verifying even without its manifest
#: entry (the manifest CRC covers the whole framed file on top).
_FRAME_MAGIC = b"ENBDELTA1"


def _engine_file_name(generation: int) -> str:
    return f"engine-{generation:08d}.json"


def _shard_file_name(shard_id: int, generation: int) -> str:
    return f"shard-{shard_id:04d}-{generation:08d}.json"


def _engine_delta_name(generation: int) -> str:
    return f"engine-{generation:08d}.delta"


def _shard_delta_name(shard_id: int, generation: int) -> str:
    return f"shard-{shard_id:04d}-{generation:08d}.delta"


def _next_generation(directory: Path) -> int:
    """One past the newest generation any file in ``directory`` belongs to.

    The committed manifest's ``generation`` is the authority, but the scan
    over file names guards the case of a corrupt manifest plus orphaned
    state files from an interrupted write: new files must never collide
    with (and thereby destroy) anything already on disk.
    """
    newest = 0
    try:
        manifest = json.loads((directory / MANIFEST_NAME).read_bytes())
        newest = int(manifest.get("generation", 0))
    except (OSError, ValueError, TypeError, AttributeError):
        pass
    for pattern in ("*.json", "*.delta"):
        for path in directory.glob(pattern):
            match = _GENERATION_SUFFIX.search(path.name)
            if match:
                newest = max(newest, int(match.group(1)))
    return newest + 1


def _prune_stale(directory: Path, generation: int) -> None:
    """Best-effort removal of state files older than ``generation``.

    Runs only after the new manifest has committed, so everything removed
    is unreferenced; failures are ignored (a leftover file costs disk, a
    raised error would fail a checkpoint that already succeeded).
    """
    for pattern in ("*.json.tmp", "*.delta.tmp"):
        for path in directory.glob(pattern):
            try:
                path.unlink()
            except OSError:
                pass
    for pattern in ("*.json", "*.delta"):
        for path in directory.glob(pattern):
            match = _GENERATION_SUFFIX.search(path.name)
            if match and int(match.group(1)) < generation:
                try:
                    path.unlink()
                except OSError:
                    pass


def _atomic_write(path: Path, payload: bytes, durable: bool = True) -> None:
    """Write ``payload`` via a temporary sibling and an atomic rename.

    ``durable=False`` skips the data fsync: journal segments use it
    because their CRC frame makes a power-cut-torn tail *detectable* and
    the reader falls back to the committed prefix — one durability
    barrier per cadence tick (the manifest's) instead of three is most of
    the difference between journaling and re-serialising the window.
    """
    tmp_path = path.with_name(path.name + ".tmp")
    with open(tmp_path, "wb") as handle:
        handle.write(payload)
        handle.flush()
        if durable:
            os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def _fsync_directory(directory: Path) -> None:
    """Persist the directory's entries (renames/unlinks) to stable storage.

    File fsyncs alone do not order the *renames* with respect to a power
    cut; without this, the manifest rename could be lost while the prune
    of the previous generation survives — no restorable checkpoint left.
    Best-effort on filesystems that reject directory fsync.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


try:  # pragma: no cover - exercised implicitly by every store test
    import orjson as _orjson
except ImportError:  # pragma: no cover
    _orjson = None


def _encode(state: Mapping[str, Any]) -> bytes:
    # Compact separators: checkpoints are written on a cadence from a hot
    # loop, and the indented form costs 3x the encode time and twice the
    # bytes for state nobody reads by eye (the manifest stays small anyway).
    # orjson emits the same shortest-round-trip floats as json several
    # times faster — on a cadence tick the encode *is* most of the CPU —
    # so it is used when the interpreter ships it, with the stdlib as the
    # drop-in fallback (both outputs parse with json.loads identically).
    if _orjson is not None:
        return _orjson.dumps(state)
    return json.dumps(state, separators=(",", ":")).encode("utf-8")


def write_checkpoint(
    directory,
    state: Mapping[str, Any],
    extras: Optional[Mapping[str, Any]] = None,
    observer=None,
) -> int:
    """Persist an engine snapshot into ``directory``; returns its generation.

    ``state`` is an engine ``snapshot()`` dict; when it carries a
    ``"shards"`` list (the sharded engine), each shard's state goes into
    its own ``shard-NNNN-<generation>.json`` so a restore — or a future
    per-shard migration — can read shards independently.  ``extras`` is
    free-form metadata recorded in the manifest (the CLI stores the
    dataset parameters there so ``--resume`` can rebuild the stream).
    Writing into a directory that already holds a checkpoint never touches
    the committed generation's files: the previous checkpoint stays
    restorable until the new manifest lands, and is pruned afterwards.

    ``observer`` (optional) is called twice — ``("serialize", seconds)``
    after the encode half and ``("fsync", seconds)`` after the
    write+commit half — splitting the tick's cost into its CPU and its
    durability component; ``None`` (the default) keeps the path untimed.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    generation = _next_generation(directory)

    engine_state = dict(state)
    shard_states = engine_state.pop("shards", None)

    started = time.perf_counter() if observer is not None else 0.0

    files: Dict[str, Dict[str, Any]] = {}
    payloads: List[Tuple[Path, bytes]] = []

    engine_name = _engine_file_name(generation)
    engine_payload = _encode(engine_state)
    files["engine"] = {
        "path": engine_name,
        "crc32": zlib.crc32(engine_payload),
    }
    payloads.append((directory / engine_name, engine_payload))

    if shard_states is not None:
        for shard_id, shard_state in enumerate(shard_states):
            name = _shard_file_name(shard_id, generation)
            payload = _encode(shard_state)
            files[f"shard-{shard_id}"] = {
                "path": name,
                "crc32": zlib.crc32(payload),
            }
            payloads.append((directory / name, payload))

    manifest = {
        "format_version": FORMAT_VERSION,
        "generation": generation,
        "base_generation": generation,
        "kind": state.get("kind"),
        "config": state.get("config"),
        "num_shards": None if shard_states is None else len(shard_states),
        "documents_processed": state.get("documents_processed"),
        "files": files,
        "extras": dict(extras or {}),
    }
    manifest_payload = _encode(manifest)

    if observer is not None:
        now = time.perf_counter()
        observer("serialize", now - started)
        started = now

    for path, payload in payloads:
        _atomic_write(path, payload)
    # The manifest commits the checkpoint: readers start from it, so until
    # this rename lands they keep seeing the previous complete checkpoint.
    _atomic_write(directory / MANIFEST_NAME, manifest_payload)
    # One directory fsync persists every rename above; it must land before
    # the prune may remove the previous generation.
    _fsync_directory(directory)

    if observer is not None:
        observer("fsync", time.perf_counter() - started)

    _prune_stale(directory, generation)
    return generation


def _read_json(path: Path, description: str) -> Any:
    try:
        payload = path.read_bytes()
    except FileNotFoundError:
        raise SnapshotCorruptionError(
            f"checkpoint is missing its {description}: {path}"
        ) from None
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotCorruptionError(
            f"checkpoint {description} {path} is not valid JSON: {exc}"
        ) from exc


def read_manifest(directory) -> Dict[str, Any]:
    """Read and validate a checkpoint's manifest (format version only)."""
    directory = Path(directory)
    manifest = _read_json(directory / MANIFEST_NAME, "manifest")
    if not isinstance(manifest, dict) or "files" not in manifest:
        raise SnapshotCorruptionError(
            f"checkpoint manifest {directory / MANIFEST_NAME} has no file table"
        )
    version = manifest.get("format_version")
    if version not in SUPPORTED_FORMAT_VERSIONS:
        raise SnapshotVersionError(
            f"checkpoint format version {version!r} is not supported "
            f"(this build reads versions {list(SUPPORTED_FORMAT_VERSIONS)})"
        )
    return manifest


def _read_verified_bytes(
    directory: Path, entry: Mapping[str, Any], name: str
) -> Tuple[Path, bytes]:
    path = directory / entry["path"]
    try:
        payload = path.read_bytes()
    except FileNotFoundError:
        raise SnapshotCorruptionError(
            f"checkpoint is missing state file {path} (listed as {name!r})"
        ) from None
    crc = zlib.crc32(payload)
    expected = entry.get("crc32")
    if crc != expected:
        # ``expected`` may be absent/None in a damaged manifest — still a
        # corruption, and the message must not crash formatting it.
        raise SnapshotCorruptionError(
            f"checkpoint state file {path} is corrupt: CRC-32 {crc:#010x} "
            f"does not match the manifest's {expected!r}"
        )
    return path, payload


def _read_verified(directory: Path, entry: Mapping[str, Any], name: str) -> Any:
    path, payload = _read_verified_bytes(directory, entry, name)
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotCorruptionError(
            f"checkpoint state file {path} is not valid JSON: {exc}"
        ) from exc


def _frame(payload: bytes) -> bytes:
    """Wrap a journal payload in its self-verifying header line."""
    header = b"%s %08d %08x\n" % (_FRAME_MAGIC, len(payload), zlib.crc32(payload))
    return header + payload


def _unframe(path: Path, data: bytes) -> bytes:
    """Verify and strip a journal segment's frame; returns the payload.

    Raises :class:`SnapshotCorruptionError` for a missing/foreign magic, a
    truncated or overlong payload, or a payload CRC mismatch — the frame
    catches torn writes even when a damaged manifest no longer can.
    """
    header, separator, payload = data.partition(b"\n")
    parts = header.split(b" ")
    if not separator or len(parts) != 3 or parts[0] != _FRAME_MAGIC:
        raise SnapshotCorruptionError(
            f"journal segment {path} has no {_FRAME_MAGIC.decode()} frame header"
        )
    try:
        length = int(parts[1])
        crc = int(parts[2], 16)
    except ValueError:
        raise SnapshotCorruptionError(
            f"journal segment {path} has a malformed frame header"
        ) from None
    if len(payload) != length:
        raise SnapshotCorruptionError(
            f"journal segment {path} is torn: frame announces {length} "
            f"payload bytes, file carries {len(payload)}"
        )
    actual = zlib.crc32(payload)
    if actual != crc:
        raise SnapshotCorruptionError(
            f"journal segment {path} is corrupt: payload CRC-32 "
            f"{actual:#010x} does not match the frame's {crc:#010x}"
        )
    return payload


def _read_framed_file(path: Path, description: str) -> Any:
    """Read a CRC-framed journal segment; the frame is its sole checksum."""
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        raise SnapshotCorruptionError(
            f"checkpoint is missing its {description}: {path}"
        ) from None
    payload = _unframe(path, data)
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotCorruptionError(
            f"journal segment {path} is not valid JSON: {exc}"
        ) from exc


def append_delta(
    directory,
    delta_state: Mapping[str, Any],
    expected_base: Optional[int] = None,
    expected_generation: Optional[int] = None,
    observer=None,
) -> int:
    """Append one journal segment to the checkpoint in ``directory``.

    ``delta_state`` is an engine ``delta_since()`` dict; a ``"shards"``
    list (the sharded engine) lands in one CRC-framed
    ``shard-NNNN-<gen>.delta`` per shard next to ``engine-<gen>.delta``.
    The manifest pins the chain (base generation, shard count); each
    segment *commits itself* through its CRC frame — generations are
    strictly consecutive from the base, so the committed chain is the
    longest verifiable prefix and no per-tick manifest rewrite is needed.
    Nothing is pruned: the journal accumulates until the next full
    :func:`write_checkpoint` re-bases the directory (compaction is simply
    restore-then-full-snapshot).

    One durability barrier per tick: the segment files are written and
    atomically renamed without their own fsync, then a single directory
    fsync persists the renames (ordered-journal filesystems flush the
    renamed files' data first; elsewhere the data may lag by a few
    ticks).  A power cut can therefore tear a trailing run of ticks —
    the frames detect it and the reader falls back to the verified
    prefix.  The tear can never end up mid-chain (before an intact
    segment): losing unsynced writes implies the writing process died,
    and a new writer must re-base with a full checkpoint before
    appending again.

    ``expected_base``/``expected_generation`` guard chain continuity:
    when given, the manifest's base generation and the directory's next
    free generation must match the caller's record (i.e. nobody re-based
    or extended the chain since), otherwise
    :class:`SnapshotMismatchError`.  Returns the new generation.

    ``observer`` splits the tick into its encode and its write+barrier
    half exactly as in :func:`write_checkpoint`.
    """
    directory = Path(directory)
    manifest = read_manifest(directory)
    base_generation = manifest.get("base_generation",
                                   manifest.get("generation"))
    if expected_base is not None and base_generation != expected_base:
        raise SnapshotMismatchError(
            f"checkpoint in {directory} was re-based at generation "
            f"{base_generation!r}, not the expected {expected_base} — "
            f"another writer owns the directory; write a fresh full "
            f"checkpoint first"
        )
    generation = _next_generation(directory)
    if expected_generation is not None \
            and generation != expected_generation + 1:
        raise SnapshotMismatchError(
            f"checkpoint in {directory} continues at generation "
            f"{generation}, not the expected {expected_generation + 1} — "
            f"another writer extended the chain (or an append was "
            f"interrupted); write a fresh full checkpoint first"
        )

    engine_delta = dict(delta_state)
    shard_deltas = engine_delta.pop("shards", None)
    manifest_shards = manifest.get("num_shards")
    delta_shards = None if shard_deltas is None else len(shard_deltas)
    if delta_shards != manifest_shards:
        raise SnapshotMismatchError(
            f"delta carries state for {delta_shards!r} shard(s) but the "
            f"checkpoint in {directory} holds {manifest_shards!r}; a delta "
            f"chain cannot change the shard count (re-shard on restore)"
        )

    started = time.perf_counter() if observer is not None else 0.0

    payloads: List[Tuple[Path, bytes]] = []
    if shard_deltas is not None:
        for shard_id, shard_delta in enumerate(shard_deltas):
            payloads.append((
                directory / _shard_delta_name(shard_id, generation),
                _frame(_encode(shard_delta)),
            ))
    payloads.append((
        directory / _engine_delta_name(generation),
        _frame(_encode(engine_delta)),
    ))

    if observer is not None:
        now = time.perf_counter()
        observer("serialize", now - started)
        started = now

    for path, payload in payloads:
        _atomic_write(path, payload, durable=False)
    # The tick's one durability barrier (see the docstring).
    _fsync_directory(directory)

    if observer is not None:
        observer("fsync", time.perf_counter() - started)

    return generation


def read_checkpoint(directory) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Load a checkpoint; returns ``(manifest, state)``.

    The returned ``state`` is the engine snapshot with the per-shard files
    reassembled under ``"shards"`` (in shard order) and — for a delta
    checkpoint — the committed journal segments folded in, ready for an
    engine's ``restore``.  Validation order: manifest format version
    first, then the CRC-32 of every state file and the CRC frame of every
    journal segment — corrupted bytes never reach a restore, and a
    corrupt committed segment fails the whole load rather than silently
    restoring a partial chain.
    """
    directory = Path(directory)
    manifest = read_manifest(directory)
    files = manifest["files"]
    if "engine" not in files:
        raise SnapshotCorruptionError(
            f"checkpoint manifest in {directory} lists no engine state file"
        )
    state = _read_verified(directory, files["engine"], "engine")
    if not isinstance(state, dict):
        raise SnapshotCorruptionError(
            f"engine state in {directory} is not a mapping"
        )
    num_shards = manifest.get("num_shards")
    if num_shards is not None:
        shards = []
        for shard_id in range(num_shards):
            name = f"shard-{shard_id}"
            if name not in files:
                raise SnapshotCorruptionError(
                    f"checkpoint manifest in {directory} is missing the "
                    f"entry for shard {shard_id}"
                )
            shards.append(_read_verified(directory, files[name], name))
        state["shards"] = shards

    base_generation = manifest.get("base_generation",
                                   manifest.get("generation", 0))
    # The journal generation the returned state actually reflects: the
    # base when no segments fold, else the last verified segment.  The
    # supervision layer matches this against its drain markers to decide
    # how much of its in-memory operation log the disk already covers.
    manifest["restored_generation"] = int(base_generation)
    chain = _journal_chain(directory, int(base_generation))
    if chain:
        # Imported lazily: the delta module shares the count-history
        # replay rule with repro.core, which itself imports this package.
        from repro.persistence.delta import (
            apply_engine_delta,
            finalize_engine_state,
        )

        folded = False
        for index, generation in enumerate(chain):
            try:
                delta = _read_segment(directory, generation, num_shards)
            except SnapshotCorruptionError as exc:
                # A power cut tears a contiguous *suffix*: segment data is
                # not fsynced per tick, so on filesystems without ordered
                # data flushing several trailing ticks may be torn at
                # once.  If everything after the failure is torn too, fall
                # back to the verified prefix; an *intact* later segment
                # rules the crash explanation out — that is damage
                # mid-chain, and restoring around it would be a lie.
                for later in chain[index + 1:]:
                    try:
                        _read_segment(directory, later, num_shards)
                    except SnapshotCorruptionError:
                        continue
                    raise SnapshotCorruptionError(
                        f"journal segment {generation} in {directory} is "
                        f"damaged mid-chain (segment {later} after it is "
                        f"intact, so this is not an interrupted append): "
                        f"{exc}"
                    ) from exc
                break
            # Per-fold derivations are deferred; one finalize pass below
            # keeps an N-segment restore O(window + journal), not O(N·window).
            state = apply_engine_delta(state, delta, derive=False)
            folded = True
            manifest["restored_generation"] = int(generation)
        if folded:
            state = finalize_engine_state(state)
    return manifest, state


def _journal_chain(directory: Path, base_generation: int) -> List[int]:
    """The journal generations following ``base_generation``, validated.

    Appends are strictly sequential, so the chain is the consecutive run
    of ``engine-<gen>.delta`` generations starting right after the base.
    A *gap* — segment files beyond a missing generation — cannot result
    from any crash (a crashed writer's successor re-bases first) and is
    reported as corruption rather than silently skipped.
    """
    generations = set()
    for path in directory.glob("engine-*.delta"):
        match = _GENERATION_SUFFIX.search(path.name)
        if match:
            generations.add(int(match.group(1)))
    chain: List[int] = []
    generation = base_generation + 1
    while generation in generations:
        chain.append(generation)
        generation += 1
    orphans = [g for g in generations if g > generation]
    if orphans:
        raise SnapshotCorruptionError(
            f"journal in {directory} has a gap: segment generation(s) "
            f"{sorted(orphans)} exist beyond the consecutive chain ending "
            f"at {generation - 1} — refusing to guess which prefix is real"
        )
    return chain


def _read_segment(
    directory: Path, generation: int, num_shards: Optional[int]
) -> Dict[str, Any]:
    """Read and verify one journal tick's delta files (engine + shards)."""
    delta = _read_framed_file(
        directory / _engine_delta_name(generation), "engine delta"
    )
    if num_shards is not None:
        shard_deltas = []
        for shard_id in range(num_shards):
            shard_deltas.append(_read_framed_file(
                directory / _shard_delta_name(shard_id, generation),
                f"shard-{shard_id} delta",
            ))
        delta["shards"] = shard_deltas
    return delta
