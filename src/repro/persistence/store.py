"""The on-disk checkpoint format: manifest + per-component state files.

A checkpoint directory holds::

    MANIFEST.json               format version, generation, engine
                                kind/config, file table with CRC-32s
    engine-00000003.json        the engine-level snapshot of generation 3
    shard-0000-00000003.json    one file per shard worker (sharded engines)
    shard-0001-00000003.json    ...

State files carry a monotonically increasing *generation* suffix and are
never overwritten: a new checkpoint writes a fresh generation's files
(each through a ``.tmp`` sibling, fsynced, atomically renamed), then
commits by atomically replacing the manifest, and only then prunes the
previous generation.  A crash at *any* point therefore leaves the last
committed checkpoint fully restorable — before the manifest rename the
old manifest still references the old, untouched files; after it the new
ones.  This matters most for cadence checkpointing into one directory
(``--checkpoint-every``), whose entire purpose is surviving exactly such
crashes.  :func:`read_checkpoint` verifies the format version and every
CRC before any state reaches a ``restore`` call, raising
:class:`~repro.persistence.snapshot.SnapshotVersionError` or
:class:`~repro.persistence.snapshot.SnapshotCorruptionError` respectively.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.persistence.snapshot import (
    SnapshotCorruptionError,
    SnapshotVersionError,
)

#: Version of the directory layout + manifest schema (component snapshots
#: carry their own ``version`` fields on top of this).
FORMAT_VERSION = 1

MANIFEST_NAME = "MANIFEST.json"

#: State files end in ``-<generation>.json``; the suffix is how stale
#: generations are recognised for pruning and collision avoidance.
_GENERATION_SUFFIX = re.compile(r"-(\d{8})\.json$")


def _engine_file_name(generation: int) -> str:
    return f"engine-{generation:08d}.json"


def _shard_file_name(shard_id: int, generation: int) -> str:
    return f"shard-{shard_id:04d}-{generation:08d}.json"


def _next_generation(directory: Path) -> int:
    """One past the newest generation any file in ``directory`` belongs to.

    The committed manifest's ``generation`` is the authority, but the scan
    over file names guards the case of a corrupt manifest plus orphaned
    state files from an interrupted write: new files must never collide
    with (and thereby destroy) anything already on disk.
    """
    newest = 0
    try:
        manifest = json.loads((directory / MANIFEST_NAME).read_bytes())
        newest = int(manifest.get("generation", 0))
    except (OSError, ValueError, TypeError, AttributeError):
        pass
    for path in directory.glob("*.json"):
        match = _GENERATION_SUFFIX.search(path.name)
        if match:
            newest = max(newest, int(match.group(1)))
    return newest + 1


def _prune_stale(directory: Path, generation: int) -> None:
    """Best-effort removal of state files older than ``generation``.

    Runs only after the new manifest has committed, so everything removed
    is unreferenced; failures are ignored (a leftover file costs disk, a
    raised error would fail a checkpoint that already succeeded).
    """
    for path in directory.glob("*.json.tmp"):
        try:
            path.unlink()
        except OSError:
            pass
    for path in directory.glob("*.json"):
        match = _GENERATION_SUFFIX.search(path.name)
        if match and int(match.group(1)) < generation:
            try:
                path.unlink()
            except OSError:
                pass


def _atomic_write(path: Path, payload: bytes) -> None:
    """Write ``payload`` via a temporary sibling and an atomic rename."""
    tmp_path = path.with_name(path.name + ".tmp")
    with open(tmp_path, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def _fsync_directory(directory: Path) -> None:
    """Persist the directory's entries (renames/unlinks) to stable storage.

    File fsyncs alone do not order the *renames* with respect to a power
    cut; without this, the manifest rename could be lost while the prune
    of the previous generation survives — no restorable checkpoint left.
    Best-effort on filesystems that reject directory fsync.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _encode(state: Mapping[str, Any]) -> bytes:
    # Compact separators: checkpoints are written on a cadence from a hot
    # loop, and the indented form costs 3x the encode time and twice the
    # bytes for state nobody reads by eye (the manifest stays small anyway).
    return json.dumps(state, separators=(",", ":")).encode("utf-8")


def write_checkpoint(
    directory,
    state: Mapping[str, Any],
    extras: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Persist an engine snapshot into ``directory``; returns the path.

    ``state`` is an engine ``snapshot()`` dict; when it carries a
    ``"shards"`` list (the sharded engine), each shard's state goes into
    its own ``shard-NNNN-<generation>.json`` so a restore — or a future
    per-shard migration — can read shards independently.  ``extras`` is
    free-form metadata recorded in the manifest (the CLI stores the
    dataset parameters there so ``--resume`` can rebuild the stream).
    Writing into a directory that already holds a checkpoint never touches
    the committed generation's files: the previous checkpoint stays
    restorable until the new manifest lands, and is pruned afterwards.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    generation = _next_generation(directory)

    engine_state = dict(state)
    shard_states = engine_state.pop("shards", None)

    files: Dict[str, Dict[str, Any]] = {}
    payloads: List[Tuple[Path, bytes]] = []

    engine_name = _engine_file_name(generation)
    engine_payload = _encode(engine_state)
    files["engine"] = {
        "path": engine_name,
        "crc32": zlib.crc32(engine_payload),
    }
    payloads.append((directory / engine_name, engine_payload))

    if shard_states is not None:
        for shard_id, shard_state in enumerate(shard_states):
            name = _shard_file_name(shard_id, generation)
            payload = _encode(shard_state)
            files[f"shard-{shard_id}"] = {
                "path": name,
                "crc32": zlib.crc32(payload),
            }
            payloads.append((directory / name, payload))

    manifest = {
        "format_version": FORMAT_VERSION,
        "generation": generation,
        "kind": state.get("kind"),
        "config": state.get("config"),
        "num_shards": None if shard_states is None else len(shard_states),
        "documents_processed": state.get("documents_processed"),
        "files": files,
        "extras": dict(extras or {}),
    }

    for path, payload in payloads:
        _atomic_write(path, payload)
    # The manifest commits the checkpoint: readers start from it, so until
    # this rename lands they keep seeing the previous complete checkpoint.
    _atomic_write(directory / MANIFEST_NAME, _encode(manifest))
    # One directory fsync persists every rename above; it must land before
    # the prune may remove the previous generation.
    _fsync_directory(directory)
    _prune_stale(directory, generation)
    return directory


def _read_json(path: Path, description: str) -> Any:
    try:
        payload = path.read_bytes()
    except FileNotFoundError:
        raise SnapshotCorruptionError(
            f"checkpoint is missing its {description}: {path}"
        ) from None
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotCorruptionError(
            f"checkpoint {description} {path} is not valid JSON: {exc}"
        ) from exc


def read_manifest(directory) -> Dict[str, Any]:
    """Read and validate a checkpoint's manifest (format version only)."""
    directory = Path(directory)
    manifest = _read_json(directory / MANIFEST_NAME, "manifest")
    if not isinstance(manifest, dict) or "files" not in manifest:
        raise SnapshotCorruptionError(
            f"checkpoint manifest {directory / MANIFEST_NAME} has no file table"
        )
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise SnapshotVersionError(
            f"checkpoint format version {version!r} is not supported "
            f"(this build reads version {FORMAT_VERSION})"
        )
    return manifest


def _read_verified(directory: Path, entry: Mapping[str, Any], name: str) -> Any:
    path = directory / entry["path"]
    try:
        payload = path.read_bytes()
    except FileNotFoundError:
        raise SnapshotCorruptionError(
            f"checkpoint is missing state file {path} (listed as {name!r})"
        ) from None
    crc = zlib.crc32(payload)
    expected = entry.get("crc32")
    if crc != expected:
        # ``expected`` may be absent/None in a damaged manifest — still a
        # corruption, and the message must not crash formatting it.
        raise SnapshotCorruptionError(
            f"checkpoint state file {path} is corrupt: CRC-32 {crc:#010x} "
            f"does not match the manifest's {expected!r}"
        )
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotCorruptionError(
            f"checkpoint state file {path} is not valid JSON: {exc}"
        ) from exc


def read_checkpoint(directory) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Load a checkpoint; returns ``(manifest, state)``.

    The returned ``state`` is the engine snapshot with the per-shard files
    reassembled under ``"shards"`` (in shard order), ready for an engine's
    ``restore``.  Validation order: manifest format version first, then the
    CRC-32 of every state file — corrupted bytes never reach a restore.
    """
    directory = Path(directory)
    manifest = read_manifest(directory)
    files = manifest["files"]
    if "engine" not in files:
        raise SnapshotCorruptionError(
            f"checkpoint manifest in {directory} lists no engine state file"
        )
    state = _read_verified(directory, files["engine"], "engine")
    if not isinstance(state, dict):
        raise SnapshotCorruptionError(
            f"engine state in {directory} is not a mapping"
        )
    num_shards = manifest.get("num_shards")
    if num_shards is not None:
        shards = []
        for shard_id in range(num_shards):
            name = f"shard-{shard_id}"
            if name not in files:
                raise SnapshotCorruptionError(
                    f"checkpoint manifest in {directory} is missing the "
                    f"entry for shard {shard_id}"
                )
            shards.append(_read_verified(directory, files[name], name))
        state["shards"] = shards
    return manifest, state
