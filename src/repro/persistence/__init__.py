"""Checkpoint/restore persistence for the detection engines.

A long-running emergent-topic service must survive restarts without
replaying the stream from cold, so the state every layer maintains — the
correlation window, the candidate postings, the detector scores, the
published rankings — is externalized behind one uniform protocol:

* :class:`~repro.persistence.snapshot.Snapshotable` — ``snapshot()``
  returns a versioned, JSON-serialisable dict; ``restore(state)`` puts an
  identically-configured instance back into exactly that state.  The
  protocol is implemented by :class:`~repro.core.tracker.CorrelationTracker`,
  :class:`~repro.core.candidates.CandidateIndex`,
  :class:`~repro.core.shift.ShiftDetector`,
  :class:`~repro.core.ranking.RankingBuilder`,
  :class:`~repro.sharding.worker.ShardWorker` and both detection engines.
* :mod:`~repro.persistence.store` — the on-disk checkpoint format: a
  ``MANIFEST.json`` plus one generation-suffixed state file per component
  (``engine-<gen>.json``, ``shard-NNNN-<gen>.json``), each
  CRC-32-checksummed and written atomically via write-then-rename with the
  manifest rename as the sole commit point (the previous checkpoint stays
  restorable through a crash), and distinct errors for corruption and for
  format version mismatches.  Delta checkpoints
  (:class:`~repro.persistence.snapshot.DeltaSnapshotable`,
  :func:`~repro.persistence.store.append_delta`,
  :mod:`~repro.persistence.delta`) extend a base with CRC-framed journal
  segments (``engine-<gen>.delta``, ``shard-NNNN-<gen>.delta``) sized by
  the documents since the previous tick; the reader folds the journal back
  onto the base before any ``restore`` runs.
* :func:`~repro.persistence.resume.load_engine` — rebuild an engine from a
  checkpoint directory, optionally re-partitioning a sharded checkpoint
  into a different shard count (the pair space is re-routed through the
  same stable CRC-32 hash that partitioned it originally).

Restoring an engine from a checkpoint and continuing the stream produces
rankings **bit-identical** to an uninterrupted run — including when the
shard count changes across the restore — which the test-suite pins on both
backends.
"""

from repro.persistence.cadence import CheckpointCadence
from repro.persistence.snapshot import (
    DeltaSnapshotable,
    Snapshotable,
    SnapshotCorruptionError,
    SnapshotError,
    SnapshotMismatchError,
    SnapshotVersionError,
)
from repro.persistence.store import (
    MANIFEST_NAME,
    append_delta,
    read_checkpoint,
    read_manifest,
    write_checkpoint,
)

__all__ = [
    "Snapshotable",
    "DeltaSnapshotable",
    "SnapshotError",
    "SnapshotVersionError",
    "SnapshotCorruptionError",
    "SnapshotMismatchError",
    "MANIFEST_NAME",
    "CheckpointCadence",
    "write_checkpoint",
    "append_delta",
    "read_checkpoint",
    "read_manifest",
    "apply_engine_delta",
    "load_engine",
]


def __getattr__(name):
    # ``load_engine`` needs the engine classes and ``apply_engine_delta``
    # the shared count-history rule from repro.core — modules that
    # themselves use this package; importing them lazily keeps the package
    # a leaf layer that core/ and sharding/ can depend on without a cycle.
    if name == "load_engine":
        from repro.persistence.resume import load_engine

        return load_engine
    if name == "apply_engine_delta":
        from repro.persistence.delta import apply_engine_delta

        return apply_engine_delta
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
