"""Rebuild a detection engine from a checkpoint directory.

The checkpoint manifest records everything needed to reconstruct the
engine that wrote it — kind (single vs. sharded), full configuration and
shard count — so a resume needs nothing but the directory.  A sharded
checkpoint may be restored into a *different* shard count (the pair state
is re-routed through the stable CRC-32 partitioner) and onto either
backend; both are runtime choices, not stream state.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, Union

from repro.core.config import EnBlogueConfig
from repro.core.engine import DetectionEngineBase, EnBlogue
from repro.persistence.snapshot import (
    SnapshotCorruptionError,
    SnapshotMismatchError,
)
from repro.persistence.store import read_checkpoint
from repro.sharding.backends import ShardBackend
from repro.sharding.engine import ShardedEnBlogue


def load_engine(
    directory,
    num_shards: Optional[int] = None,
    backend: Optional[Union[str, ShardBackend]] = None,
    chunk_size: Optional[int] = None,
    observability=None,
) -> Tuple[DetectionEngineBase, Dict[str, Any]]:
    """Restore the engine checkpointed in ``directory``.

    Returns ``(engine, manifest)`` — the manifest exposes the ``extras``
    recorded at save time (the CLI keeps its dataset parameters there).
    For a sharded checkpoint, ``num_shards`` selects the restored shard
    count (default: the checkpointed one; differing counts re-partition
    the pair state), ``backend`` the execution backend (default: serial)
    and ``chunk_size`` the dispatch chunk (default: the checkpointed one).
    A single-engine checkpoint ignores ``backend``/``chunk_size`` and
    rejects ``num_shards`` other than 1 — its tracker holds tag-level
    state that cannot be partitioned by pair.  ``observability`` is
    runtime wiring handed to the restored engine, never checkpoint state.
    """
    manifest, state = read_checkpoint(directory)
    try:
        config = EnBlogueConfig(**state["config"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotCorruptionError(
            f"checkpoint in {directory} carries an unusable configuration: {exc}"
        ) from exc
    kind = state.get("kind")

    if kind == EnBlogue.SNAPSHOT_KIND:
        if num_shards not in (None, 1):
            raise SnapshotMismatchError(
                "a single-engine checkpoint cannot be restored into "
                f"{num_shards} shards: its tracker holds tag-level state "
                "(usage distributions, count history) that is not "
                "partitioned by pair; resume it with EnBlogue instead"
            )
        engine = EnBlogue(config, observability=observability)
        engine.restore(state)
        return engine, manifest

    if kind == ShardedEnBlogue.SNAPSHOT_KIND:
        target_shards = num_shards or len(state["shards"])
        engine = ShardedEnBlogue(
            config,
            num_shards=target_shards,
            backend="serial" if backend is None else backend,
            chunk_size=chunk_size or int(state.get("chunk_size") or 256),
            observability=observability,
        )
        try:
            engine.restore(state)
        except BaseException:
            engine.close()
            raise
        return engine, manifest

    raise SnapshotMismatchError(
        f"checkpoint in {directory} was written by an unknown engine kind "
        f"{kind!r}; this build can restore "
        f"{[EnBlogue.SNAPSHOT_KIND, ShardedEnBlogue.SNAPSHOT_KIND]}"
    )
