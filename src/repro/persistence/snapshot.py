"""The uniform snapshot protocol and its error taxonomy.

Every stateful component of the detection pipeline externalizes its state
the same way: ``snapshot()`` returns a plain, JSON-serialisable dict that
starts with a ``kind`` tag and an integer ``version``, and ``restore(state)``
puts an identically-configured instance back into exactly that state.  The
helpers here are the shared validation surface: :func:`require_state`
rejects foreign or future-format snapshots, :func:`require_compatible`
rejects snapshots taken under different structural parameters (a tracker
with another window horizon, a detector with another decay), so a bad
restore fails loudly at the door instead of silently corrupting a stream.
"""

from __future__ import annotations

from typing import Any, Mapping, Protocol, runtime_checkable


class SnapshotError(RuntimeError):
    """Base class of every checkpoint/restore failure."""


class SnapshotVersionError(SnapshotError):
    """The snapshot was written by an unsupported format version."""


class SnapshotCorruptionError(SnapshotError):
    """The snapshot's bytes or structure are damaged (bad JSON, bad CRC)."""


class SnapshotMismatchError(SnapshotError):
    """The snapshot is valid but does not fit the restoring instance."""


@runtime_checkable
class Snapshotable(Protocol):
    """State that can round-trip through a versioned, JSON-safe dict."""

    def snapshot(self) -> dict:
        """The component's complete state as a versioned dict."""
        ...

    def restore(self, state: Mapping[str, Any]) -> None:
        """Replace this instance's state with a snapshot's."""
        ...


@runtime_checkable
class DeltaSnapshotable(Snapshotable, Protocol):
    """A :class:`Snapshotable` that can also externalize *incremental* state.

    Between a full :meth:`~Snapshotable.snapshot` (the *base*) and the
    present, the component records what changed — appended window events,
    dirty per-pair entries, replayable evaluation rows — and
    :meth:`delta_since` drains that record as a versioned, JSON-safe dict
    that is kilobytes proportional to the new documents rather than
    megabytes proportional to the window.  The matching pure functions in
    :mod:`repro.persistence.delta` fold a delta onto a base snapshot dict,
    reproducing exactly the state a fresh ``snapshot()`` would return, so
    a base plus a journal of deltas restores through the unchanged
    ``restore`` path.

    Recording is opt-in (``begin_delta_tracking``) because the buffers
    cost memory until drained; ``restore`` implicitly ends tracking (the
    buffers would describe a state that no longer exists).
    """

    def begin_delta_tracking(self) -> None:
        """Start (or re-arm, emptying the buffers) delta recording."""
        ...

    def delta_since(self, generation: int) -> dict:
        """Drain everything recorded since the last base/drain as a dict.

        ``generation`` is an opaque caller-side chain position stamped
        into the delta as ``"since"`` (the on-disk journal order is the
        authority; the stamp exists for debugging and audits).  Tracking
        stays armed: the next call returns only what happened after this
        one.
        """
        ...

    def end_delta_tracking(self) -> None:
        """Stop recording and discard any buffered deltas."""
        ...


def require_state(state: Any, kind: str, version: int) -> Mapping[str, Any]:
    """Validate a snapshot's envelope; returns ``state`` for chaining.

    Raises :class:`SnapshotCorruptionError` when ``state`` is not a mapping,
    :class:`SnapshotMismatchError` when it describes a different component,
    and :class:`SnapshotVersionError` when its version is unsupported.
    """
    if not isinstance(state, Mapping):
        raise SnapshotCorruptionError(
            f"a {kind!r} snapshot must be a mapping, got {type(state).__name__}"
        )
    found_kind = state.get("kind")
    if found_kind != kind:
        raise SnapshotMismatchError(
            f"expected a {kind!r} snapshot, got {found_kind!r}"
        )
    found_version = state.get("version")
    if found_version != version:
        raise SnapshotVersionError(
            f"{kind!r} snapshot version {found_version!r} is not supported "
            f"(this build reads version {version})"
        )
    return state


def require_compatible(
    kind: str, expected: Mapping[str, Any], state: Mapping[str, Any]
) -> None:
    """Reject a snapshot whose structural parameters differ from ours.

    ``expected`` maps parameter names to the restoring instance's values;
    every one must appear in ``state`` with an equal value.  The error
    message names each differing key with both values, so a mismatched
    restore is actionable without reading the checkpoint by hand.
    """
    differing = [
        f"{key}: snapshot has {state.get(key)!r}, instance has {value!r}"
        for key, value in expected.items()
        if state.get(key) != value
    ]
    if differing:
        raise SnapshotMismatchError(
            f"cannot restore this {kind!r} snapshot into an instance with "
            f"different parameters — " + "; ".join(differing)
        )
