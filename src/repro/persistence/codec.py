"""JSON-safe encodings of the core value types.

Snapshots must round-trip through JSON without losing a bit: floats are
written with Python's shortest-repr rule (which round-trips exactly),
:class:`~repro.core.types.TagPair` keys become two-element lists (JSON
objects only allow string keys), and rankings/topics are flattened to
positional lists so the per-pair state stays compact.  Only value types
live here — the stateful components encode themselves via their own
``snapshot``/``restore`` methods.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.types import EmergentTopic, Ranking, TagPair
from repro.persistence.snapshot import SnapshotCorruptionError


def string_interner() -> Tuple[Callable[[str], int], List[str]]:
    """An ``(intern, table)`` pair for per-delta string tables.

    Journal deltas reference every tag by index into one table per delta
    (``intern`` returns the index, appending on first sight), which is
    most of the difference between a cadence tick sized by the new
    documents and one sized by their repeated tag strings.  The encoders
    in the tracker and the shift detector share this one definition so
    they cannot drift from the decoders in
    :mod:`repro.persistence.delta`.
    """
    table: List[str] = []
    index: Dict[str, int] = {}

    def intern(value: str) -> int:
        position = index.get(value)
        if position is None:
            position = index[value] = len(table)
            table.append(value)
        return position

    return intern, table


def pair_to_state(pair: TagPair) -> List[str]:
    """A canonical pair as the two-element list ``[first, second]``."""
    return [pair.first, pair.second]


def pair_from_state(state: Sequence[str]) -> TagPair:
    """Rebuild a pair; :class:`TagPair` re-canonicalises and validates."""
    try:
        first, second = state
        return TagPair(str(first), str(second))
    except (TypeError, ValueError) as exc:
        raise SnapshotCorruptionError(
            f"malformed tag-pair state {state!r}: {exc}"
        ) from exc


def topic_to_state(topic: EmergentTopic) -> List[Any]:
    """One ranking entry as a positional list (order matches the fields)."""
    return [
        topic.pair.first,
        topic.pair.second,
        topic.score,
        topic.correlation,
        topic.predicted_correlation,
        topic.prediction_error,
        topic.seed_tag,
        topic.timestamp,
    ]


def topic_from_state(state: Sequence[Any]) -> EmergentTopic:
    try:
        first, second, score, correlation, predicted, error, seed, ts = state
        return EmergentTopic(
            pair=TagPair(str(first), str(second)),
            score=float(score),
            correlation=float(correlation),
            predicted_correlation=float(predicted),
            prediction_error=float(error),
            seed_tag=None if seed is None else str(seed),
            timestamp=float(ts),
        )
    except (TypeError, ValueError) as exc:
        raise SnapshotCorruptionError(
            f"malformed topic state {state!r}: {exc}"
        ) from exc


def ranking_to_state(ranking: Ranking) -> dict:
    return {
        "timestamp": ranking.timestamp,
        "label": ranking.label,
        "topics": [topic_to_state(topic) for topic in ranking.topics],
    }


def ranking_from_state(state: Mapping[str, Any]) -> Ranking:
    try:
        return Ranking(
            timestamp=float(state["timestamp"]),
            topics=[topic_from_state(entry) for entry in state["topics"]],
            label=str(state.get("label", "")),
        )
    except (KeyError, TypeError) as exc:
        raise SnapshotCorruptionError(
            f"malformed ranking state: {exc}"
        ) from exc


def optional_float(value: Any) -> Optional[float]:
    """A float or None, the encoding of nullable stream timestamps."""
    return None if value is None else float(value)
