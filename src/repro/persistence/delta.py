"""Folding journal deltas onto base snapshots, at the dict level.

Every stateful component that implements
:class:`~repro.persistence.snapshot.DeltaSnapshotable` externalizes *what
changed* since its last base snapshot: appended window events, dirty
per-pair entries, replayable count-history rows, absolute counters.  The
functions here are their pure inverses — they take a base ``snapshot()``
dict plus one ``delta_since()`` dict and return exactly the dict a fresh
``snapshot()`` would produce at the later point in time, so a chain of
deltas restores through the *unchanged* ``restore`` path.

Two rules make the fold exact without shipping the whole window:

* **Eviction is replayed, not recorded.**  Windows evict by the one
  monotone rule ``timestamp <= latest - horizon``; given the delta's final
  ``latest``, dropping expired events from the merged list reproduces the
  live deque bit for bit (intermediate evictions with earlier ``now``
  values are subsumed by the final cutoff).
* **Derived state is recomputed.**  The candidate postings counts are by
  construction the pair multiset of the live pair events, so the merged
  events determine them exactly — the delta only carries the (mutable)
  ``min_support`` threshold.

Apply functions treat their inputs as consumable and may mutate/alias
them; callers needing the originals must copy first (the store's reader
owns its freshly decoded dicts, which is the intended call site).
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any, Dict, List, Mapping, Tuple

from repro.core.tracker import _DELTA_DOC, record_count_history
from repro.persistence.snapshot import SnapshotMismatchError, require_state
from repro.sketches.tier import SketchTier


def _require_delta(state: Any, kind: str, version: int = 1) -> Mapping[str, Any]:
    return require_state(state, kind, version)


def _evict_events(events: List[list], latest, horizon: float) -> List[list]:
    """Drop leading events at or past the horizon, the windows' one rule."""
    if latest is None:
        return events
    cutoff = float(latest) - float(horizon)
    drop = 0
    while drop < len(events) and float(events[drop][0]) <= cutoff:
        drop += 1
    return events[drop:] if drop else events


def _merge_keyed(base: List[list], updates: List[list]) -> List[list]:
    """Replace/extend per-pair table entries, re-emitting in snapshot order.

    ``base`` and ``updates`` are lists of ``[first, second, ...]`` rows,
    keyed by their canonical pair; the result is sorted exactly like the
    components' ``snapshot()`` methods sort (canonical pairs order as
    their ``(first, second)`` tuples).
    """
    table: Dict[Tuple, list] = {tuple(row[:2]): row for row in base}
    for row in updates:
        table[tuple(row[:2])] = row
    return [table[key] for key in sorted(table)]


def _merge_histories(
    base: List[list], groups: List[list], tags: List[str],
    history_length: int,
) -> List[list]:
    """Extend per-pair correlation series with their delta points.

    ``base`` rows are ``[first, second, series_snapshot]``; ``groups``
    are ``[timestamp, [[first_idx, second_idx, value], ...]]`` — the
    points appended since the base, grouped under their evaluation
    timestamp, tag names interned through ``tags``.  Extending each
    series in group order and re-trimming to its ``maxlen`` reproduces
    the live bounded ring bit for bit (``maxlen`` appended points are the
    whole ring); new pairs start an empty ring bounded to the tracker's
    ``history_length``.
    """
    table: Dict[Tuple[str, str], list] = {
        tuple(row[:2]): row for row in base
    }
    for timestamp, rows in groups:
        for first_idx, second_idx, value in rows:
            key = (tags[first_idx], tags[second_idx])
            row = table.get(key)
            if row is None:
                row = table[key] = [key[0], key[1], {
                    "kind": "timeseries",
                    "version": 1,
                    "maxlen": int(history_length),
                    "timestamps": [],
                    "values": [],
                }]
            series = row[2]
            series["timestamps"].append(timestamp)
            series["values"].append(value)
    for row in table.values():
        series = row[2]
        maxlen = series.get("maxlen")
        if maxlen is not None and len(series["timestamps"]) > int(maxlen):
            series["timestamps"] = series["timestamps"][-int(maxlen):]
            series["values"] = series["values"][-int(maxlen):]
    return [table[key] for key in sorted(table)]


def _replay_count_rows(
    count_history: Mapping[str, list], rows: List[Mapping[str, int]],
    history_length: int,
) -> Dict[str, List[int]]:
    """Replay per-evaluation tag-count rows through the one shared rule."""
    history: Dict[str, Any] = {
        str(tag): deque((int(v) for v in values), maxlen=int(history_length))
        for tag, values in count_history.items()
    }
    for row in rows:
        record_count_history(history, row, int(history_length))
    return {tag: list(values) for tag, values in history.items()}


def derive_candidates(tracker_state: dict) -> dict:
    """Recompute a tracker state's candidate postings from its live events.

    The candidate counts are by construction the pair multiset of the
    live pair events, so this is the one derivation a folded chain needs;
    it costs O(window) and is therefore run once per restore
    (:func:`apply_tracker_delta` with ``derive=False`` defers it), not
    once per folded segment.
    """
    counts: Counter = Counter()
    for _, pairs in tracker_state["pair_events"]:
        counts.update(tuple(pair) for pair in pairs)
    tracker_state["candidates"] = {
        "kind": "candidate-index",
        "version": 1,
        "min_support": int(tracker_state["candidates"]["min_support"]),
        "pairs": [[first, second, count]
                  for (first, second), count in sorted(counts.items())],
    }
    return tracker_state


def finalize_engine_state(state: dict) -> dict:
    """Run the deferred per-restore derivations on a folded engine state.

    The inverse bracket of folding segments with ``derive=False``: call
    once after the last fold (the store's reader does) and the state is
    indistinguishable from one produced by fully-deriving folds.
    """
    kind = state.get("kind") if isinstance(state, Mapping) else None
    if kind == "enblogue":
        derive_candidates(state["tracker"])
    elif kind == "sharded-enblogue":
        for shard_state in state["shards"]:
            derive_candidates(shard_state["tracker"])
    return state


def apply_tracker_delta(
    state: dict, delta: Mapping[str, Any], derive: bool = True
) -> dict:
    """Fold a tracker delta onto a tracker snapshot dict.

    A document event in the delta carries only the ordered tag set; its
    tag-window entry and its pair list — every ``(i, j)`` combination of
    the sorted tags, the one decomposition rule of the system — are
    derived here, where restore-time cost is paid once instead of on
    every cadence tick.  ``derive=False`` additionally defers the
    O(window) candidate-postings recomputation to one
    :func:`derive_candidates` call after the *last* fold of a chain
    (only ``min_support`` is carried through), keeping an N-segment
    restore O(window + journal) instead of O(N × window).
    """
    require_state(state, "correlation-tracker", 1)
    _require_delta(delta, "correlation-tracker-delta")
    horizon = float(state["window_horizon"])
    latest = delta["latest"]
    table = delta["tags"]

    # A tiered tracker journals raw documents; re-running admission from
    # the base snapshot's tier reproduces both the admitted weighted pair
    # stream and the advanced tier state, exactly as the live run did.
    tier_state = state.get("tier")
    tier = (
        SketchTier.from_snapshot(tier_state)
        if tier_state is not None else None
    )

    events = list(state["pair_events"])
    window = state["tag_window"]
    window_events = list(window["events"])
    for kind, timestamp, payload in delta["events"]:
        if kind == _DELTA_DOC:
            tags = [table[index] for index in payload]
            window_events.append([timestamp, tags])
            pairs = [
                (tags[i], tags[j])
                for i in range(len(tags))
                for j in range(i + 1, len(tags))
            ]
            if tier is not None and pairs:
                pairs = tier.filter_pairs(timestamp, pairs)
            events.append(
                [timestamp, [[first, second] for first, second in pairs]]
            )
        else:
            events.append([timestamp, [
                [table[first_idx], table[second_idx]]
                for first_idx, second_idx in payload
            ]])
    events = _evict_events(events, latest, horizon)
    state["pair_events"] = events

    state["candidates"]["min_support"] = int(delta["min_support"])
    if derive:
        derive_candidates(state)

    usage = list(state["usage_events"])
    usage.extend(delta["usage_events"])
    state["usage_events"] = _evict_events(usage, latest, horizon)

    window_latest = delta["tag_window_latest"]
    window["events"] = _evict_events(
        window_events, window_latest, float(window["horizon"])
    )
    window["latest"] = window_latest

    state["histories"] = _merge_histories(
        list(state["histories"]), list(delta["histories"]), table,
        int(state["history_length"]),
    )
    state["count_history"] = _replay_count_rows(
        state["count_history"], delta["count_rows"],
        int(state["history_length"]),
    )
    state["documents_seen"] = int(delta["documents_seen"])
    state["latest"] = latest
    if tier is not None:
        state["tier"] = tier.snapshot()
    return state


def apply_detector_delta(state: dict, delta: Mapping[str, Any]) -> dict:
    """Fold a shift-detector delta (dirty decayed-score rows) onto a base.

    Delta rows arrive grouped under their shared ``last_update`` with tag
    names interned through the delta's ``tags`` table; each carries the
    pair's absolute state, so the merge replaces table entries outright.
    """
    require_state(state, "shift-detector", 1)
    _require_delta(delta, "shift-detector-delta")
    tags = delta["tags"]
    updates = [
        [tags[first_idx], tags[second_idx], value, last_update]
        for last_update, rows in delta["scores"]
        for first_idx, second_idx, value in rows
    ]
    state["scores"] = _merge_keyed(list(state["scores"]), updates)
    return state


def apply_builder_delta(state: dict, delta: Mapping[str, Any]) -> dict:
    """Adopt the ranking policy carried by a builder delta (tiny, absolute)."""
    require_state(state, "ranking-builder", 1)
    _require_delta(delta, "ranking-builder-delta")
    state["top_k"] = int(delta["top_k"])
    state["min_score"] = float(delta["min_score"])
    return state


def apply_worker_delta(
    state: dict, delta: Mapping[str, Any], derive: bool = True
) -> dict:
    """Fold a shard-worker delta onto one shard's snapshot dict."""
    require_state(state, "shard-worker", 1)
    _require_delta(delta, "shard-worker-delta")
    if state.get("shard_id") != delta.get("shard_id"):
        raise SnapshotMismatchError(
            f"shard-worker delta is addressed to shard "
            f"{delta.get('shard_id')!r} but the base snapshot belongs to "
            f"shard {state.get('shard_id')!r}"
        )
    state["tracker"] = apply_tracker_delta(
        state["tracker"], delta["tracker"], derive=derive
    )
    state["detector"] = apply_detector_delta(
        state["detector"], delta["detector"]
    )
    state["builder"] = apply_builder_delta(state["builder"], delta["builder"])
    return state


def _apply_base_bookkeeping(state: dict, delta: Mapping[str, Any]) -> None:
    """The boundary bookkeeping shared by both engines: absolute + append."""
    state["documents_processed"] = int(delta["documents_processed"])
    state["current_seeds"] = list(delta["current_seeds"])
    state["next_evaluation"] = delta["next_evaluation"]
    rankings = list(state["rankings"])
    rankings.extend(delta["rankings"])
    limit = (state.get("config") or {}).get("max_ranking_history")
    if limit is not None and len(rankings) > int(limit):
        rankings = rankings[-int(limit):]
    state["rankings"] = rankings


def apply_engine_delta(
    state: dict, delta: Mapping[str, Any], derive: bool = True
) -> dict:
    """Fold one engine-level journal delta onto an engine snapshot dict.

    Dispatches on the base's ``kind`` (``enblogue`` / ``sharded-enblogue``)
    and validates the delta matches; the sharded fold requires one shard
    delta per base shard (a chain never changes the shard count — restore
    into a different count re-partitions the *merged* state afterwards,
    exactly as for a full checkpoint).  Folding a multi-segment chain?
    Pass ``derive=False`` per fold and call :func:`finalize_engine_state`
    once at the end, as the store's reader does.
    """
    kind = state.get("kind") if isinstance(state, Mapping) else None
    if kind == "enblogue":
        _require_delta(delta, "enblogue-delta")
        _apply_base_bookkeeping(state, delta)
        state["tracker"] = apply_tracker_delta(
            state["tracker"], delta["tracker"], derive=derive
        )
        state["detector"] = apply_detector_delta(
            state["detector"], delta["detector"]
        )
        state["builder"] = apply_builder_delta(
            state["builder"], delta["builder"]
        )
        return state
    if kind == "sharded-enblogue":
        # Version 2 interned the coordinator's tag events (one string
        # table per delta, events reference it by index) — the same
        # encoding the tracker deltas use; version-1 journals predate the
        # table and are rejected by the envelope check below.
        _require_delta(delta, "sharded-enblogue-delta", 2)
        _apply_base_bookkeeping(state, delta)
        latest = delta["latest"]
        state["latest"] = latest
        table = delta["tags"]
        window = state["tag_window"]
        window_events = list(window["events"])
        window_events.extend(
            [timestamp, [table[index] for index in indices]]
            for timestamp, indices in delta["tag_events"]
        )
        window["events"] = _evict_events(
            window_events, delta["tag_window_latest"], float(window["horizon"])
        )
        window["latest"] = delta["tag_window_latest"]
        # A tiered coordinator's shard deltas already carry the admitted
        # weighted pairs (shard workers are tier-less), so admission is
        # re-run here only to advance the coordinator's tier state — the
        # returned weights are deliberately discarded.
        tier_state = state.get("tier")
        if tier_state is not None:
            tier = SketchTier.from_snapshot(tier_state)
            for timestamp, indices in delta["tag_events"]:
                if len(indices) < 2:
                    continue
                tags = [table[index] for index in indices]
                for i in range(len(tags)):
                    for j in range(i + 1, len(tags)):
                        tier.admit(timestamp, tags[i], tags[j])
            state["tier"] = tier.snapshot()
        config = state.get("config") or {}
        state["count_history"] = _replay_count_rows(
            state["count_history"], delta["count_rows"],
            int(config["history_length"]),
        )
        state["builder"] = apply_builder_delta(
            state["builder"], delta["builder"]
        )
        base_shards = state["shards"]
        shard_deltas = delta["shards"]
        if len(shard_deltas) != len(base_shards):
            raise SnapshotMismatchError(
                f"delta carries {len(shard_deltas)} shard state(s) but the "
                f"base checkpoint holds {len(base_shards)}; a delta chain "
                f"cannot change the shard count"
            )
        state["shards"] = [
            apply_worker_delta(shard_state, shard_delta, derive=derive)
            for shard_state, shard_delta in zip(base_shards, shard_deltas)
        ]
        return state
    raise SnapshotMismatchError(
        f"cannot apply a journal delta to engine kind {kind!r}; this build "
        f"folds ['enblogue', 'sharded-enblogue'] states"
    )
