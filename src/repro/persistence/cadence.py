"""The checkpoint cadence policy shared by CLI replays and the serving layer.

Both the ``replay`` command (``--checkpoint-every/--checkpoint-mode``) and
the asyncio serving layer persist the engine on the same policy: every
N-th published ranking triggers a write; in ``full`` mode each write
re-serializes the whole window, in ``delta`` mode the chain starts from an
eagerly written base (compacting any inherited journal on resume) and
every write until the ``full_every``-th appends a journal segment sized by
the new documents.  Keeping the policy in one class means the serving
layer's checkpoint-while-serving behaviour cannot drift from what
``--resume`` was tested against.

The cadence itself is synchronous — callers decide where it runs (the CLI
calls it inline from the harness hook; the serving layer schedules it on
the engine executor so the event loop never blocks on an fsync).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional


class CheckpointCadence:
    """Every N-th ranking persists the engine, full or base+journal.

    With ``directory`` unset the cadence is inert (counts rankings,
    writes nothing) so callers need no conditional wiring.  ``extras``
    lands in the checkpoint manifest at base/re-base time (the CLI stores
    its dataset parameters there, the serving layer its ingest counters).
    """

    def __init__(
        self,
        engine,
        directory=None,
        every: Optional[int] = None,
        mode: str = "full",
        full_every: int = 16,
        extras: Optional[Mapping] = None,
        extras_provider: Optional[Callable[[], Mapping]] = None,
    ):
        if mode not in ("full", "delta"):
            raise ValueError(f"mode must be 'full' or 'delta', got {mode!r}")
        if every is not None and every < 1:
            raise ValueError("every must be a positive ranking count")
        if full_every < 1:
            raise ValueError("full_every must be at least 1")
        if every is not None and directory is None:
            raise ValueError("a checkpoint cadence needs a directory")
        if mode == "delta" and every is None:
            raise ValueError(
                "mode='delta' requires a cadence (every=N): a delta journal "
                "only exists on a cadence (a one-off save is a full "
                "checkpoint already)"
            )
        self.engine = engine
        self.directory = directory
        self.every = every
        self.mode = mode
        self.full_every = int(full_every)
        self.extras = dict(extras or {})
        # Live metadata merged into the manifest extras at every write
        # (the serving CLI rides its metrics snapshot along here so a
        # resumed server's counters continue instead of resetting).
        self.extras_provider = extras_provider
        self.rankings_seen = 0
        self.checkpoints_written = 0

    # -- lifecycle -------------------------------------------------------------

    def begin(self) -> None:
        """Arm the cadence; delta mode writes the chain's base eagerly.

        The base is the cadence-start state (for a resume: the
        just-restored state, which compacts any inherited journal), so
        every tick until the next re-base appends a segment.
        """
        if self.directory is not None and self.every and self.mode == "delta":
            self.engine.save_checkpoint(
                self.directory, extras=self._extras(), track_deltas=True
            )
            self.checkpoints_written += 1

    def note_ranking(self) -> bool:
        """Count one published ranking; write if the cadence is due.

        Call only between documents (the harness ``after_ranking`` hook,
        or the serving layer between micro-batches) — the engine state is
        then boundary-consistent and the written checkpoint resumable.
        Returns whether a checkpoint was written.
        """
        self.rankings_seen += 1
        if not (self.directory is not None and self.every):
            return False
        if self.rankings_seen % self.every != 0:
            return False
        self._write_tick()
        return True

    def note_rankings(self, count: int) -> int:
        """Count ``count`` rankings at once; returns checkpoints written."""
        return sum(self.note_ranking() for _ in range(count))

    def finalize(self) -> bool:
        """The bare ``--checkpoint-dir`` save: end state, no cadence.

        Used by the replay CLI, which deliberately does *not* persist the
        end of a cadenced replay — mid-stream cadence ticks are resumable
        stream states, the forced final evaluation is not.
        """
        if self.directory is not None and not self.every:
            self.engine.save_checkpoint(self.directory, extras=self._extras())
            self.checkpoints_written += 1
            return True
        return False

    def shutdown(self) -> bool:
        """Persist the end state at service shutdown, cadence or not.

        The serving layer's closing bracket: a served stream is live
        (documents cannot be re-fed from a dataset), so the documents
        accepted after the last cadence tick must reach disk before the
        process exits — as one more cadence tick (a journal segment in
        delta mode), or as the one-off end-state save when no cadence was
        configured.  Call only when the engine is quiescent (the service
        drains its queue first).
        """
        if self.directory is None:
            return False
        if not self.every:
            return self.finalize()
        self._write_tick()
        return True

    def hook(self) -> Optional[Callable[[Any], None]]:
        """An ``after_ranking`` harness hook, or None when no cadence."""
        if not self.every:
            return None

        def after_ranking(ranking) -> None:
            self.note_ranking()

        return after_ranking

    # -- internals -------------------------------------------------------------

    def _extras(self) -> Mapping:
        """Static extras merged with the provider's live ones, if any."""
        extras = dict(self.extras)
        if self.extras_provider is not None:
            try:
                extras.update(self.extras_provider() or {})
            except Exception:
                # Extras are metadata; a broken provider must not fail a
                # checkpoint whose state half is perfectly writable.
                pass
        return extras

    def _write_tick(self) -> None:
        observability = getattr(self.engine, "observability", None)
        if observability is None or not observability.enabled:
            self._write_tick_inner()
            return
        is_full = (
            self.mode == "full"
            or self.checkpoints_written % self.full_every == 0
        )
        mode = "full" if is_full else "delta"
        clock = observability.clock
        with observability.tracer.span(f"checkpoint_{mode}"):
            started = clock()
            self._write_tick_inner()
            elapsed = clock() - started
            # Emitted inside the span so the record carries the
            # checkpoint trace id, pairing /logs with /trace.
            observability.log.emit(
                "checkpoint",
                mode=mode,
                seconds=round(elapsed, 6),
                checkpoints_written=self.checkpoints_written,
            )
        registry = observability.registry
        registry.histogram("repro_persistence_checkpoint_seconds") \
            .labels(mode=mode).observe(elapsed)
        registry.counter("repro_persistence_checkpoints_total") \
            .labels(mode=mode).inc()

    def _write_tick_inner(self) -> None:
        if self.mode == "full":
            self.engine.save_checkpoint(self.directory, extras=self._extras())
        elif self.checkpoints_written % self.full_every == 0:
            # Re-base: a fresh full checkpoint compacts the journal.
            self.engine.save_checkpoint(
                self.directory, extras=self._extras(), track_deltas=True
            )
        else:
            # Manifest extras were recorded at the base/re-base tick.
            self.engine.save_delta_checkpoint(self.directory)
        self.checkpoints_written += 1
