"""Exporters: Prometheus text, NDJSON trace dumps, the CLI stage table.

Three views over the same registry/tracer:

* :func:`render_prometheus` — the text exposition format served by
  ``GET /metrics`` (``# HELP``/``# TYPE`` per family, cumulative
  ``_bucket{le=...}``/``_sum``/``_count`` for histograms).  Families are
  rendered even when they have no samples yet, so scrapers — and the CI
  required-families check — see the full naming contract from the first
  scrape.
* :func:`render_trace_ndjson` — one JSON line per trace (a per-batch
  span tree), served by ``GET /trace?last=N``.
* :func:`format_stage_table` — the per-stage time table ``replay
  --metrics`` prints at exit, aggregated from the tracer's
  ``repro_pipeline_stage_seconds`` histogram.
"""

from __future__ import annotations

import json
from typing import List, Mapping, Optional, Tuple

from repro.observability.tracing import STAGE_METRIC

#: Content type of the Prometheus text exposition format, version 0.0.4.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

NDJSON_CONTENT_TYPE = "application/x-ndjson"


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _format_value(value: float) -> str:
    value = float(value)
    if value != value:  # NaN never compares equal to itself
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(key: Tuple[Tuple[str, str], ...],
                   extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    rendered = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + rendered + "}"


def render_prometheus(registry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        if family.kind in ("counter", "gauge"):
            for key, child in family.samples():
                lines.append(
                    f"{family.name}{_format_labels(key)} "
                    f"{_format_value(child.value)}"
                )
        else:  # histogram
            for key, child in family.samples():
                cumulative, total_sum, count = child.merged()
                bounds = list(child.buckets) + [float("inf")]
                for bound, cumulated in zip(bounds, cumulative):
                    labels = _format_labels(
                        key, extra=("le", _format_value(bound))
                    )
                    lines.append(
                        f"{family.name}_bucket{labels} "
                        f"{_format_value(cumulated)}"
                    )
                lines.append(
                    f"{family.name}_sum{_format_labels(key)} "
                    f"{_format_value(total_sum)}"
                )
                lines.append(
                    f"{family.name}_count{_format_labels(key)} "
                    f"{_format_value(count)}"
                )
    return "\n".join(lines) + "\n"


def render_trace_ndjson(tracer, last: Optional[int] = None) -> str:
    """The tracer's most recent traces, one JSON object per line."""
    lines = [
        json.dumps(trace, sort_keys=True)
        for trace in tracer.traces(last=last)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def format_stage_table(registry, title: str = "stage times") -> str:
    """A fixed-width per-stage time table from the stage histogram.

    Stages sort by total time spent, so the table reads as "where did
    this replay's wall time go".  Returns a note instead of a table when
    nothing was recorded (e.g. a replay too short to cross a boundary).
    """
    family = registry.get(STAGE_METRIC)
    samples = [] if family is None else family.samples()
    rows: List[Tuple[str, int, float]] = []
    for key, child in samples:
        labels = dict(key)
        _cumulative, total_sum, count = child.merged()
        if count:
            rows.append((labels.get("stage", "?"), int(count), total_sum))
    if not rows:
        return f"{title}: no stages recorded"
    rows.sort(key=lambda row: row[2], reverse=True)
    name_width = max(len("stage"), max(len(row[0]) for row in rows))
    lines = [
        title,
        f"{'stage':<{name_width}}  {'calls':>8}  {'total ms':>10}  "
        f"{'mean µs':>10}",
    ]
    for name, count, total in rows:
        mean_us = (total / count) * 1e6 if count else 0.0
        lines.append(
            f"{name:<{name_width}}  {count:>8}  {total * 1e3:>10.2f}  "
            f"{mean_us:>10.1f}"
        )
    return "\n".join(lines)


def parse_prometheus_families(text: str) -> Mapping[str, str]:
    """Family name → kind from ``# TYPE`` lines (scrape-validation helper).

    Raises ``ValueError`` on structurally malformed exposition text: a
    sample line that does not parse, or a sample for a family that never
    declared its ``# TYPE``.  Used by the CI smoke check and the tests;
    not a full parser, but strict enough to catch a broken renderer.
    """
    families = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram"):
                raise ValueError(f"malformed TYPE line: {line!r}")
            families[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        name = line.split("{", 1)[0].split(" ", 1)[0]
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                base = name[: -len(suffix)]
                break
        if base not in families:
            raise ValueError(f"sample {name!r} has no TYPE declaration")
        value = line.rsplit(" ", 1)[-1]
        if value not in ("+Inf", "-Inf", "NaN"):
            float(value)  # raises ValueError when malformed
    return families
