"""Stage tracing: bounded ring-buffer spans over the pipeline's hot joints.

A :class:`StageTracer` records *spans* — named, timed intervals with
parent/child structure — around the pipeline's stage boundaries: batch
ingest, per-shard dispatch, candidate generation, scalar-vs-vectorized
evaluation, k-way merge, ranking publish, SSE fan-out and checkpoint
ticks.  Spans live in a bounded in-memory deque (oldest traces fall off),
grouped into *traces* by a trace id.

Determinism is load-bearing: trace ids derive from the engine's batch
sequence (its ``documents_processed`` count at batch start — state that
is checkpointed and restored), never from wall clocks or randomness, so
the trace a batch gets after a checkpoint→resume equals the trace the
uninterrupted run would have given it.  Span timing comes from the
injected clock (``time.perf_counter`` by default), which frozen-clock
tests replace.

Spans recorded outside any active trace (a cadence checkpoint between
batches, an SSE fan-out on the event loop) open an implicit auxiliary
trace of their own, so nothing is silently dropped.

The tracer doubles as the stage-time aggregator: when built over a
registry, every completed span lands its duration in the
``repro_pipeline_stage_seconds`` histogram labeled by stage name — the
source of the ``replay --metrics`` stage table and the stage families on
``GET /metrics``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

#: Bound of the span ring buffer.  A batch trace holds a handful of
#: spans, so ~4k spans keep a few hundred recent batches inspectable.
DEFAULT_SPAN_CAPACITY = 4096

#: Name of the one histogram family every span's duration feeds.
STAGE_METRIC = "repro_pipeline_stage_seconds"


class Span:
    """One completed (or active) stage interval."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start",
                 "duration", "attrs")

    def __init__(self, trace_id: str, span_id: int, parent_id: Optional[int],
                 name: str, start: float):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.duration = 0.0
        self.attrs: Dict[str, object] = {}

    def set(self, **attrs) -> None:
        """Attach attributes to the span (batch sizes, paths, modes)."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict:
        payload = {
            "span_id": self.span_id,
            "name": self.name,
            "start": self.start,
            "duration_us": round(self.duration * 1e6, 3),
        }
        if self.parent_id is not None:
            payload["parent_id"] = self.parent_id
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        return payload


class _TraceState(threading.local):
    """Per-thread active trace: id, next span id, open-span stack."""

    def __init__(self):
        self.trace_id: Optional[str] = None
        self.next_span_id = 0
        self.stack: List[Span] = []


class _SpanContext:
    """Context manager closing one span (and, for roots, its trace)."""

    __slots__ = ("_tracer", "_span", "_owns_trace")

    def __init__(self, tracer: "StageTracer", span: Span, owns_trace: bool):
        self._tracer = tracer
        self._span = span
        self._owns_trace = owns_trace

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc_value, exc_traceback) -> None:
        self._tracer._finish(self._span, self._owns_trace)


class StageTracer:
    """Record spans into a bounded ring buffer; export per-batch trees."""

    enabled = True

    def __init__(self, clock=None, capacity: int = DEFAULT_SPAN_CAPACITY,
                 registry=None):
        self.clock = clock or time.perf_counter
        self._spans: Deque[Span] = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self._state = _TraceState()
        # Auxiliary traces (spans outside a batch) number themselves from
        # a process-local counter: deterministic within a run, and kept
        # out of the per-batch ids the determinism tests pin.
        self._aux_sequence = 0
        self._stage = None
        if registry is not None and registry.enabled:
            self._stage = registry.histogram(
                STAGE_METRIC,
                help="Wall time per pipeline stage, labeled by stage name.",
            )
            self._stage_children: Dict[str, object] = {}

    # -- recording -------------------------------------------------------------

    def trace(self, sequence, name: str = "batch") -> _SpanContext:
        """Open a trace (and its root span) for one batch.

        ``sequence`` is the batch's deterministic sequence number — the
        engine passes ``documents_processed`` at batch start, which a
        checkpoint restores, so resumed runs reproduce the same ids.
        """
        state = self._state
        trace_id = f"batch-{int(sequence):012d}" \
            if not isinstance(sequence, str) else sequence
        owns = state.trace_id is None
        if owns:
            state.trace_id = trace_id
            state.next_span_id = 0
        span = self._open(name)
        return _SpanContext(self, span, owns)

    def span(self, name: str) -> _SpanContext:
        """Open a child span of the current trace.

        Outside any trace the span opens its own auxiliary trace, so
        stages that run between batches (checkpoint ticks, fan-out) are
        still captured.
        """
        state = self._state
        owns = state.trace_id is None
        if owns:
            with self._lock:
                self._aux_sequence += 1
                sequence = self._aux_sequence
            state.trace_id = f"aux-{name}-{sequence:08d}"
            state.next_span_id = 0
        span = self._open(name)
        return _SpanContext(self, span, owns)

    def _open(self, name: str) -> Span:
        state = self._state
        parent = state.stack[-1] if state.stack else None
        span = Span(
            trace_id=state.trace_id,
            span_id=state.next_span_id,
            parent_id=None if parent is None else parent.span_id,
            name=name,
            start=self.clock(),
        )
        state.next_span_id += 1
        state.stack.append(span)
        return span

    def _finish(self, span: Span, owns_trace: bool) -> None:
        span.duration = self.clock() - span.start
        state = self._state
        if state.stack and state.stack[-1] is span:
            state.stack.pop()
        if owns_trace:
            state.trace_id = None
            state.stack = []
        with self._lock:
            self._spans.append(span)
        if self._stage is not None:
            child = self._stage_children.get(span.name)
            if child is None:
                child = self._stage.labels(stage=span.name)
                self._stage_children[span.name] = child
            child.observe(span.duration)

    # -- export ----------------------------------------------------------------

    def traces(self, last: Optional[int] = None) -> List[dict]:
        """The most recent traces as span trees, oldest first.

        Each entry is ``{"trace_id": ..., "spans": [tree, ...]}`` where a
        tree node carries ``name``/``start``/``duration_us``/``attrs``
        and nested ``children``.  ``last`` caps how many traces return.
        """
        with self._lock:
            spans = list(self._spans)
        grouped: Dict[str, List[Span]] = {}
        order: List[str] = []
        for span in spans:
            if span.trace_id not in grouped:
                grouped[span.trace_id] = []
                order.append(span.trace_id)
            grouped[span.trace_id].append(span)
        if last is not None and last >= 0:
            order = order[len(order) - min(last, len(order)):]
        result = []
        for trace_id in order:
            result.append({
                "trace_id": trace_id,
                "spans": _assemble(grouped[trace_id]),
            })
        return result

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


def _assemble(spans: List[Span]) -> List[dict]:
    """Nest a trace's flat spans into trees by ``parent_id``."""
    nodes = {span.span_id: span.to_dict() for span in spans}
    roots: List[dict] = []
    for span in spans:
        node = nodes[span.span_id]
        parent = None if span.parent_id is None \
            else nodes.get(span.parent_id)
        if parent is None:
            roots.append(node)
        else:
            parent.setdefault("children", []).append(node)
    return roots


class _NullSpan:
    """Shared inert span: ``set`` discards, nothing is recorded."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        pass


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self):
        return NULL_SPAN

    def __exit__(self, exc_type, exc_value, exc_traceback) -> None:
        pass


NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """The zero-cost default: context managers are shared no-op singletons."""

    enabled = False
    clock = staticmethod(time.perf_counter)

    def trace(self, sequence, name: str = "batch") -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def span(self, name: str) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def traces(self, last: Optional[int] = None) -> list:
        return []

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
