"""Declarative SLOs with multi-window burn rates over the live registry.

An :class:`SloTracker` turns the raw counter/histogram families into
answers to the operator's actual question — "are we inside our latency
and availability objectives, and how fast are we burning error budget
right now?":

* every objective reduces to a cumulative ``(good, total)`` pair read
  from the registry — an **availability** objective divides a good
  counter by good+bad (e.g. batches processed vs batch errors), a
  **latency** objective counts histogram observations at or under the
  threshold bucket (Prometheus ``le`` semantics, so the answer is exact
  at bucket bounds, conservative between them);
* :meth:`tick` — called at batch boundaries by the serving consumer —
  appends the reductions to a bounded ring of timestamped snapshots;
* :meth:`report` replays that ring into per-window deltas: attainment
  over the last 5 minutes / last hour / process lifetime, and the burn
  rate ``(1 - attainment) / (1 - target)`` (1.0 = burning budget
  exactly at the sustainable rate; 14.4 on a 99.9% objective is the
  classic "page now" threshold).

Objectives are plain declarative specs (see :data:`DEFAULT_OBJECTIVES`
and :meth:`SloObjective.from_spec`), so a deployment can swap its own
in without touching the reduction machinery.  Attainment and burn rate
are re-exported as ``repro_slo_*`` gauges on every report, so scrape
pipelines can alert on them without parsing ``GET /slo``.
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

#: Rolling windows reported per objective, besides the implicit
#: process-lifetime ``total`` window: (label, seconds).
DEFAULT_WINDOWS: Tuple[Tuple[str, float], ...] = (
    ("5m", 300.0),
    ("1h", 3600.0),
)

#: Bound of the tick ring: at one tick per served batch this spans
#: hours of history, and old ticks only matter up to the widest window.
DEFAULT_TICK_CAPACITY = 4096


class SloObjective:
    """One declarative objective: what counts as good, and the target."""

    __slots__ = ("name", "kind", "target", "metric", "threshold_s",
                 "good", "bad", "description")

    def __init__(self, name: str, kind: str, target: float,
                 metric: Optional[str] = None,
                 threshold_s: Optional[float] = None,
                 good: Optional[str] = None,
                 bad: Optional[str] = None,
                 description: str = ""):
        if kind not in ("latency", "availability"):
            raise ValueError(f"unknown objective kind {kind!r}")
        if not 0.0 < float(target) < 1.0:
            raise ValueError("target must be a ratio in (0, 1)")
        if kind == "latency" and (metric is None or threshold_s is None):
            raise ValueError("latency objectives need metric + threshold_s")
        if kind == "availability" and (good is None or bad is None):
            raise ValueError("availability objectives need good + bad")
        self.name = name
        self.kind = kind
        self.target = float(target)
        self.metric = metric
        self.threshold_s = None if threshold_s is None else float(threshold_s)
        self.good = good
        self.bad = bad
        self.description = description

    @classmethod
    def from_spec(cls, spec: dict) -> "SloObjective":
        """Build from a plain dict (the README's configuration shape)."""
        return cls(**{key: spec[key] for key in spec
                      if key in cls.__slots__})

    def to_spec(self) -> dict:
        spec = {"name": self.name, "kind": self.kind, "target": self.target}
        if self.kind == "latency":
            spec["metric"] = self.metric
            spec["threshold_s"] = self.threshold_s
        else:
            spec["good"] = self.good
            spec["bad"] = self.bad
        if self.description:
            spec["description"] = self.description
        return spec

    # -- reduction -------------------------------------------------------------

    def reduce(self, registry) -> Tuple[float, float]:
        """The cumulative ``(good, total)`` this objective reads now."""
        if self.kind == "availability":
            good = _counter_total(registry, self.good)
            bad = _counter_total(registry, self.bad)
            return good, good + bad
        good = total = 0.0
        family = registry.get(self.metric)
        for _key, child in ([] if family is None else family.samples()):
            cumulative, _sum, count = child.merged()
            index = bisect.bisect_left(child.buckets, self.threshold_s)
            index = min(index, len(cumulative) - 1)
            good += cumulative[index]
            total += count
        return good, total


def _counter_total(registry, name: str) -> float:
    family = registry.get(name)
    if family is None:
        return 0.0
    return sum(child.value for _key, child in family.samples())


#: The serving stack's out-of-the-box objectives; deployments pass
#: their own list (or ``SloObjective.from_spec`` dicts) to override.
DEFAULT_OBJECTIVES: Tuple[SloObjective, ...] = (
    SloObjective(
        name="batch_latency",
        kind="latency",
        metric="repro_serving_batch_seconds",
        threshold_s=0.250,
        target=0.99,
        description="99% of served batches go ingest→publish in <250ms.",
    ),
    SloObjective(
        name="ingest_availability",
        kind="availability",
        good="repro_serving_batches_processed_total",
        bad="repro_serving_batch_errors_total",
        target=0.999,
        description="99.9% of accepted batches reach the engine cleanly.",
    ),
    SloObjective(
        name="sse_delivery",
        kind="availability",
        good="repro_serving_sse_frames_total",
        bad="repro_serving_sse_dropped_frames_total",
        target=0.999,
        description="99.9% of ranking frames reach subscriber buffers.",
    ),
)


class SloTracker:
    """Tick-driven multi-window burn-rate computation over the registry."""

    enabled = True

    def __init__(self, registry,
                 objectives: Optional[Sequence] = None,
                 clock=None,
                 windows: Sequence[Tuple[str, float]] = DEFAULT_WINDOWS,
                 capacity: int = DEFAULT_TICK_CAPACITY):
        self._registry = registry
        if objectives is None:
            objectives = DEFAULT_OBJECTIVES
        self.objectives: List[SloObjective] = [
            objective if isinstance(objective, SloObjective)
            else SloObjective.from_spec(objective)
            for objective in objectives
        ]
        self.clock = clock or time.monotonic
        self.windows = tuple((str(label), float(seconds))
                             for label, seconds in windows)
        self._ticks: Deque[Tuple[float, Tuple[Tuple[float, float], ...]]] = \
            deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self._metric_ticks = None
        self._gauge_attainment = None
        self._gauge_burn = None
        if registry is not None and registry.enabled:
            self._metric_ticks = registry.counter(
                "repro_slo_ticks_total",
                help="SLO evaluation ticks taken at batch boundaries.",
            )
            self._gauge_attainment = registry.gauge(
                "repro_slo_attainment",
                help="Fraction of good events, by objective and window.",
            )
            self._gauge_burn = registry.gauge(
                "repro_slo_burn_rate",
                help="Error-budget burn rate, by objective and window "
                     "(1.0 = sustainable).",
            )

    # -- recording -------------------------------------------------------------

    def tick(self, now: Optional[float] = None) -> None:
        """Snapshot every objective's cumulative (good, total) pair."""
        if now is None:
            now = self.clock()
        reductions = tuple(
            objective.reduce(self._registry) for objective in self.objectives
        )
        with self._lock:
            self._ticks.append((float(now), reductions))
        if self._metric_ticks is not None:
            self._metric_ticks.inc()

    # -- reporting -------------------------------------------------------------

    def report(self, now: Optional[float] = None) -> List[dict]:
        """Per-objective attainment + burn rate across every window."""
        if now is None:
            now = self.clock()
        with self._lock:
            ticks = list(self._ticks)
        reports = []
        for position, objective in enumerate(self.objectives):
            current = (ticks[-1][1][position] if ticks
                       else objective.reduce(self._registry))
            windows = {}
            for label, seconds in self.windows + (("total", None),):
                base = (0.0, 0.0)
                if seconds is not None:
                    base = _baseline(ticks, position, now - seconds)
                good = current[0] - base[0]
                total = current[1] - base[1]
                attainment = (good / total) if total > 0 else 1.0
                burn = (1.0 - attainment) / (1.0 - objective.target)
                windows[label] = {
                    "good": good,
                    "total": total,
                    "attainment": attainment,
                    "burn_rate": burn,
                }
                self._export(objective.name, label, attainment, burn)
            reports.append({
                **objective.to_spec(),
                "windows": windows,
                "met": windows["total"]["attainment"] >= objective.target,
            })
        return reports

    def summary(self) -> dict:
        """The compact per-objective digest ``GET /status`` inlines."""
        digest = {}
        for report in self.report():
            worst = max(
                window["burn_rate"] for window in report["windows"].values()
            )
            digest[report["name"]] = {
                "target": report["target"],
                "attainment": report["windows"]["total"]["attainment"],
                "worst_burn_rate": worst,
                "met": report["met"],
            }
        return digest

    def _export(self, objective: str, window: str,
                attainment: float, burn: float) -> None:
        if self._gauge_attainment is None:
            return
        labels = {"objective": objective, "window": window}
        self._gauge_attainment.labels(**labels).set(attainment)
        self._gauge_burn.labels(**labels).set(burn)


def _baseline(ticks, position: int, cutoff: float) -> Tuple[float, float]:
    """The cumulative pair at the last tick at or before ``cutoff``.

    No tick that old (the process is younger than the window) means the
    window degenerates to "since start", i.e. a zero baseline.
    """
    base = (0.0, 0.0)
    for timestamp, reductions in ticks:
        if timestamp > cutoff:
            break
        base = reductions[position]
    return base


class NullSloTracker:
    """The zero-cost default: ticks discard, reports are empty."""

    enabled = False
    objectives: tuple = ()
    windows: tuple = ()

    def tick(self, now: Optional[float] = None) -> None:
        pass

    def report(self, now: Optional[float] = None) -> list:
        return []

    def summary(self) -> dict:
        return {}


NULL_SLO = NullSloTracker()
