"""End-to-end observability: metrics, tracing, logging, profiling, SLOs.

One :class:`Observability` object bundles what the pipeline layers need:

* ``registry`` — a :class:`~repro.observability.metrics.MetricsRegistry`
  (or the shared no-op when disabled),
* ``tracer`` — a :class:`~repro.observability.tracing.StageTracer`
  feeding the same registry's stage histogram,
* ``log`` — a :class:`~repro.observability.logging.EventLog` of
  structured NDJSON records correlated with the tracer's trace ids,
* ``profiler`` — a
  :class:`~repro.observability.profiling.SamplingProfiler` for
  wall-clock folded-stack sampling (``GET /profile``),
* ``slo`` — an :class:`~repro.observability.slo.SloTracker` computing
  multi-window burn rates over the registry (``GET /slo``),
* ``clock`` — the injected time source every duration comes from.

The library default is :data:`NOOP` — instrumented code paths cost one
no-op call and **zero allocations** per event, so embedding the engines
stays free.  Runtimes that want visibility (``repro.cli serve``, ``replay
--metrics``) construct an enabled bundle and hand it to the engine, the
service and the cadence, which is what guarantees ``GET /status`` and
``GET /metrics`` read the same counters.

Metric names follow one contract — ``repro_<layer>_<thing>_<unit>`` —
and the standard families are pre-declared at construction so the very
first ``/metrics`` scrape already shows the full surface (the CI smoke
check counts on that).

``snapshot()``/``restore()`` ride the checkpoint manifest's extras, so a
resumed server's counters continue monotonically instead of resetting.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping, Optional

from repro.observability.export import (
    NDJSON_CONTENT_TYPE,
    PROMETHEUS_CONTENT_TYPE,
    format_stage_table,
    parse_prometheus_families,
    render_prometheus,
    render_trace_ndjson,
)
from repro.observability.logging import (
    DEFAULT_LOG_CAPACITY,
    EventLog,
    NULL_EVENT_LOG,
    NullEventLog,
)
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.observability.profiling import (
    NULL_PROFILER,
    NullProfiler,
    SamplingProfiler,
    render_collapsed,
)
from repro.observability.slo import (
    DEFAULT_OBJECTIVES,
    NULL_SLO,
    NullSloTracker,
    SloObjective,
    SloTracker,
)
from repro.observability.tracing import (
    NULL_TRACER,
    STAGE_METRIC,
    NullTracer,
    Span,
    StageTracer,
)

#: The standard family surface, pre-declared on every enabled registry
#: (name → (kind, help)).  Layers re-register on use — registration is
#: idempotent — but declaring them up front keeps the first scrape
#: complete and documents the naming contract in one place.
STANDARD_FAMILIES = {
    "repro_core_documents_total":
        ("counter", "Documents ingested by the detection engine."),
    "repro_core_batches_total":
        ("counter", "Batches processed via process_batch."),
    "repro_core_rankings_total":
        ("counter", "Rankings published by the engine."),
    "repro_core_evaluation_seconds":
        ("histogram", "Wall time per evaluation, labeled by path "
                      "(scalar or vectorized)."),
    "repro_pipeline_stage_seconds":
        ("histogram", "Wall time per pipeline stage, labeled by stage "
                      "name."),
    "repro_tracking_promotions":
        ("gauge", "Pairs the sketch tier promoted into exact tracking."),
    "repro_tracking_filtered_occurrences":
        ("gauge", "Pair occurrences absorbed by the sketch tier."),
    "repro_tracking_sketched_keys":
        ("gauge", "Bloom-known pair keys across the two live sketch "
                  "epochs (tier occupancy)."),
    "repro_tracking_sketch_error_bound":
        ("gauge", "Count-Min overcount bound (e/width x windowed total) "
                  "of the sketch tier."),
    "repro_sharding_dispatch_seconds":
        ("histogram", "Per-shard chunk dispatch latency."),
    "repro_sharding_pair_events_total":
        ("counter", "Pair events dispatched per shard."),
    "repro_sharding_queue_depth":
        ("gauge", "Pending mailbox items per shard (threads backend)."),
    "repro_sharding_ingest_failures_total":
        ("counter", "Sticky worker ingest failures, per shard."),
    "repro_sharding_worker_failures_total":
        ("counter", "Worker failures surfaced at a sync point, per shard."),
    "repro_sharding_dead_workers_total":
        ("counter", "Shard workers found dead (process/thread gone)."),
    "repro_sharding_recoveries_total":
        ("counter", "Shard pool recoveries completed by the supervisor."),
    "repro_sharding_recovery_seconds":
        ("histogram", "Wall time per supervised pool recovery."),
    "repro_sharding_retry_attempts_total":
        ("counter", "Supervised retry attempts, labeled by operation."),
    "repro_sharding_backoff_seconds_total":
        ("counter", "Seconds spent in supervised retry backoff."),
    "repro_sharding_permanent_failures_total":
        ("counter", "Supervised failures that exhausted the retry budget."),
    "repro_sharding_shard_stage_seconds":
        ("histogram", "Worker-side stage wall time, labeled by shard "
                      "and stage (ingest or evaluate)."),
    "repro_serving_documents_submitted_total":
        ("counter", "Documents accepted into the ingest queue."),
    "repro_serving_batches_submitted_total":
        ("counter", "Batches accepted into the ingest queue."),
    "repro_serving_documents_processed_total":
        ("counter", "Documents the consumer fed to the engine."),
    "repro_serving_batches_processed_total":
        ("counter", "Batches the consumer fed to the engine."),
    "repro_serving_rankings_published_total":
        ("counter", "Rankings pushed to the dispatcher."),
    "repro_serving_batch_errors_total":
        ("counter", "Batches the engine rejected."),
    "repro_serving_publish_errors_total":
        ("counter", "Ranking publishes that raised."),
    "repro_serving_source_errors_total":
        ("counter", "Producer iterators that raised mid-pump."),
    "repro_serving_source_retries_total":
        ("counter", "Producer pumps restarted after a transient error."),
    "repro_serving_sse_frames_total":
        ("counter", "Frames delivered to SSE subscriber buffers."),
    "repro_serving_sse_dropped_frames_total":
        ("counter", "Frames dropped on full SSE subscriber buffers."),
    "repro_serving_batch_seconds":
        ("histogram", "Ingest-to-publish wall time per served batch."),
    "repro_serving_subscribers":
        ("gauge", "Open SSE subscriptions."),
    "repro_serving_queue_depth":
        ("gauge", "Batches waiting in the ingest queue."),
    "repro_serving_queue_high_watermark":
        ("gauge", "Deepest the ingest queue has been."),
    "repro_serving_checkpoints_written":
        ("gauge", "Checkpoints the serving cadence has written."),
    "repro_persistence_checkpoints_total":
        ("counter", "Cadence checkpoint ticks, labeled by mode "
                    "(full or delta)."),
    "repro_persistence_checkpoint_seconds":
        ("histogram", "Wall time per cadence checkpoint tick, by mode."),
    "repro_persistence_serialize_seconds":
        ("histogram", "Checkpoint encode time (the serialize half), "
                      "by mode."),
    "repro_persistence_fsync_seconds":
        ("histogram", "Checkpoint write+fsync time (the durability "
                      "half), by mode."),
    "repro_logging_records_total":
        ("counter", "Structured log records emitted, labeled by level."),
    "repro_profiling_samples_total":
        ("counter", "Stack samples captured by the wall-clock profiler."),
    "repro_slo_ticks_total":
        ("counter", "SLO evaluation ticks taken at batch boundaries."),
    "repro_slo_attainment":
        ("gauge", "Fraction of good events, by objective and window."),
    "repro_slo_burn_rate":
        ("gauge", "Error-budget burn rate, by objective and window "
                  "(1.0 = sustainable)."),
}


class Observability:
    """Registry + tracer + clock, enabled or inert, handed down the stack."""

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 enabled: bool = True,
                 trace_capacity: Optional[int] = None,
                 stripes: Optional[int] = None,
                 log_capacity: Optional[int] = None,
                 log_path: Optional[str] = None,
                 slo_objectives=None,
                 slo_clock: Optional[Callable[[], float]] = None):
        self.enabled = bool(enabled)
        self.clock = clock or time.perf_counter
        if self.enabled:
            self.registry = MetricsRegistry(
                stripes=stripes if stripes is not None else 4
            )
            self.tracer = StageTracer(
                clock=self.clock,
                capacity=trace_capacity or 4096,
                registry=self.registry,
            )
            self.log = EventLog(
                capacity=log_capacity or DEFAULT_LOG_CAPACITY,
                tracer=self.tracer,
                registry=self.registry,
                path=log_path,
            )
            self.profiler = SamplingProfiler(registry=self.registry)
            self.slo = SloTracker(
                self.registry,
                objectives=slo_objectives,
                clock=slo_clock,
            )
            for name, (kind, help_text) in STANDARD_FAMILIES.items():
                getattr(self.registry, kind)(name, help=help_text)
        else:
            self.registry = NULL_REGISTRY
            self.tracer = NULL_TRACER
            self.log = NULL_EVENT_LOG
            self.profiler = NULL_PROFILER
            self.slo = NULL_SLO

    # -- persistence -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Counters, log sequence and profiler totals for the manifest.

        Version 2 wraps the registry snapshot so the event-log sequence
        and the profiler's cumulative sample count resume monotonically
        too; :meth:`restore` still accepts the bare version-1 registry
        snapshots older checkpoints carry.
        """
        if not self.enabled:
            return self.registry.snapshot()
        return {
            "version": 2,
            "registry": self.registry.snapshot(),
            "log_seq": self.log.sequence,
            "profile_samples": self.profiler.samples_total,
        }

    def restore(self, state: Optional[Mapping]) -> None:
        """Seed registry/log/profiler from a manifest's metrics snapshot."""
        if not state:
            return
        if "registry" in state:
            registry_state = state.get("registry")
            if registry_state:
                self.registry.restore(registry_state)
            self.log.restore_sequence(state.get("log_seq", 0))
            self.profiler.restore_samples(state.get("profile_samples", 0))
        else:
            # Version 1: the manifest carried the registry snapshot bare.
            self.registry.restore(state)

    def close(self) -> None:
        """Stop the profiler thread and flush/close the log file sink."""
        self.profiler.stop()
        self.log.close()

    # -- store hook ------------------------------------------------------------

    def store_observer(self, mode: str):
        """The serialize/fsync split callback for the checkpoint store.

        Returns ``None`` when disabled, so the store's hot path stays
        untimed; otherwise a ``(event, seconds)`` callable feeding the
        ``repro_persistence_{serialize,fsync}_seconds`` histograms.
        """
        if not self.enabled:
            return None
        serialize = self.registry.histogram(
            "repro_persistence_serialize_seconds"
        ).labels(mode=mode)
        fsync = self.registry.histogram(
            "repro_persistence_fsync_seconds"
        ).labels(mode=mode)

        def observe(event: str, seconds: float) -> None:
            (serialize if event == "serialize" else fsync).observe(seconds)

        return observe


#: The library default: one shared inert bundle, safe to hand to any
#: layer; every instrumented call through it is a no-op.
NOOP = Observability(enabled=False)

__all__ = [
    "Observability",
    "NOOP",
    "STANDARD_FAMILIES",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "NULL_METRIC",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "StageTracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "STAGE_METRIC",
    "EventLog",
    "NullEventLog",
    "NULL_EVENT_LOG",
    "DEFAULT_LOG_CAPACITY",
    "SamplingProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "render_collapsed",
    "SloTracker",
    "SloObjective",
    "NullSloTracker",
    "NULL_SLO",
    "DEFAULT_OBJECTIVES",
    "render_prometheus",
    "render_trace_ndjson",
    "format_stage_table",
    "parse_prometheus_families",
    "PROMETHEUS_CONTENT_TYPE",
    "NDJSON_CONTENT_TYPE",
]
