"""A dependency-free wall-clock sampling profiler over the live process.

The :class:`SamplingProfiler` answers "*where* is the serving stack
spending its time right now" without cProfile's per-call overhead or
any third-party agent: a background daemon thread wakes at a fixed
interval (default 100 Hz), snapshots every thread's current Python
frame via ``sys._current_frames()``, folds each stack into the
flamegraph "collapsed" form (``root;caller;...;leaf``, outermost frame
first) and counts how often each folded stack was seen.

Sampling never touches the sampled threads — no signals, no sys
tracing hooks — so the engine's rankings stay bit-identical with the
profiler running; the only cost is the GIL time the sampler thread
itself takes (bounded by the interval, pinned by the throughput gate
in ``BENCH_throughput.json``).

``GET /profile?seconds=N`` serves a windowed diff of the counts in
collapsed text (pipe it straight into ``flamegraph.pl``) or JSON.  The
cumulative sample count rides :meth:`Observability.snapshot`, so a
resumed server's ``samples_total`` continues monotonically.
"""

from __future__ import annotations

import sys
import threading
from typing import Dict, Optional

#: Default sampling period: 100 Hz — coarse enough to be unmeasurable
#: on the replay workload, fine enough to attribute stage-level time.
DEFAULT_INTERVAL = 0.01

#: Hard cap on frames kept per stack; deeper frames (towards the root)
#: are folded into one ``...`` segment so a pathological recursion
#: cannot balloon the folded keys.
MAX_STACK_DEPTH = 64


def _fold(frame) -> str:
    """One thread's stack as a collapsed ``root;...;leaf`` string."""
    parts = []
    depth = 0
    while frame is not None and depth < MAX_STACK_DEPTH:
        code = frame.f_code
        parts.append(f"{code.co_name} ({code.co_filename}:{frame.f_lineno})")
        frame = frame.f_back
        depth += 1
    if frame is not None:
        parts.append("...")
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """Folded-stack wall-clock sampler with a start/stop/snapshot API."""

    enabled = True

    def __init__(self, interval: float = DEFAULT_INTERVAL, registry=None):
        self.interval = float(interval)
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._samples_total = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._metric_samples = None
        if registry is not None and registry.enabled:
            self._metric_samples = registry.counter(
                "repro_profiling_samples_total",
                help="Stack samples captured by the wall-clock profiler.",
            )

    # -- lifecycle -------------------------------------------------------------

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self, interval: Optional[float] = None) -> None:
        """Start the background sampler (idempotent while running)."""
        if self.running:
            return
        if interval is not None:
            if interval <= 0:
                raise ValueError("sampling interval must be positive")
            self.interval = float(interval)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def ensure_running(self, interval: Optional[float] = None) -> bool:
        """Start if stopped; True when this call did the starting."""
        if self.running:
            return False
        self.start(interval)
        return True

    def stop(self) -> None:
        """Stop the sampler thread (counts are kept)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    # -- sampling --------------------------------------------------------------

    def sample_once(self) -> int:
        """Take one sample of every thread now; returns stacks captured.

        Exposed for deterministic tests — the background loop calls the
        same method on its cadence.
        """
        me = threading.get_ident()
        frames = sys._current_frames()
        captured = 0
        with self._lock:
            for thread_id, frame in frames.items():
                if thread_id == me:
                    continue
                key = _fold(frame)
                self._counts[key] = self._counts.get(key, 0) + 1
                self._samples_total += 1
                captured += 1
        if self._metric_samples is not None and captured:
            self._metric_samples.inc(captured)
        return captured

    # -- export ----------------------------------------------------------------

    @property
    def samples_total(self) -> int:
        """Cumulative stacks captured across the process lifetime."""
        with self._lock:
            return self._samples_total

    def restore_samples(self, value: int) -> None:
        """Continue the cumulative count from a checkpoint (max-merge)."""
        with self._lock:
            self._samples_total = max(self._samples_total, int(value))

    def counts(self) -> Dict[str, int]:
        """A point-in-time copy of folded-stack → sample count."""
        with self._lock:
            return dict(self._counts)

    def counts_since(self, baseline: Dict[str, int]) -> Dict[str, int]:
        """Counts accumulated since ``baseline`` (a ``counts()`` copy)."""
        current = self.counts()
        return {
            stack: count - baseline.get(stack, 0)
            for stack, count in current.items()
            if count > baseline.get(stack, 0)
        }

    def clear(self) -> None:
        with self._lock:
            self._counts.clear()


def render_collapsed(counts: Dict[str, int]) -> str:
    """Folded counts in flamegraph collapsed format: ``stack count``.

    Stacks sort descending by count so the hottest path leads; the
    output pipes straight into Brendan Gregg's ``flamegraph.pl``.
    """
    lines = [
        f"{stack} {count}"
        for stack, count in sorted(
            counts.items(), key=lambda item: (-item[1], item[0])
        )
    ]
    return "\n".join(lines) + ("\n" if lines else "")


class NullProfiler:
    """The zero-cost default: never samples, readers are empty."""

    enabled = False
    running = False
    interval = DEFAULT_INTERVAL
    samples_total = 0

    def start(self, interval: Optional[float] = None) -> None:
        pass

    def ensure_running(self, interval: Optional[float] = None) -> bool:
        return False

    def stop(self) -> None:
        pass

    def sample_once(self) -> int:
        return 0

    def restore_samples(self, value: int) -> None:
        pass

    def counts(self) -> dict:
        return {}

    def counts_since(self, baseline) -> dict:
        return {}

    def clear(self) -> None:
        pass


NULL_PROFILER = NullProfiler()
