"""Structured event logging: one bounded NDJSON ring for the whole stack.

An :class:`EventLog` is the narrative companion to the metrics registry
and the stage tracer: every interesting *event* — a processed batch, a
cadence checkpoint tick, a supervised recovery, an injected fault, an
SSE subscriber coming or going, an HTTP request line — lands as one
structured record in a bounded in-memory ring (and, optionally, one
NDJSON line in a file sink for ``serve --log-file``).

Records are plain dicts with a fixed envelope::

    {"seq": 41, "ts": 1723111845.2, "level": "info", "event": "batch",
     "trace_id": "batch-000000000256", "span_id": 0, ...fields}

``seq`` is a monotonic sequence number that survives checkpoint→resume
(it rides :meth:`Observability.snapshot`), so a resumed server's log
trail continues where the interrupted run stopped instead of starting
over at zero.  ``trace_id``/``span_id`` are read from the bound
:class:`~repro.observability.tracing.StageTracer`'s thread-local state
at emit time, which is what correlates a log record with the span tree
``GET /trace`` shows — e.g. a recovery record carries the trace id of
the supervisor's ``recovery`` span.

The disabled default is :data:`NULL_EVENT_LOG`: ``emit`` is a no-op
costing one call and zero retained allocations, so library embedders
pay nothing.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Deque, List, Optional

#: Bound of the record ring.  Records are small dicts; ~2k of them keep
#: minutes of serving history inspectable without growing the process.
DEFAULT_LOG_CAPACITY = 2048


class EventLog:
    """Bounded structured-record ring with an optional NDJSON file sink."""

    enabled = True

    def __init__(self, capacity: int = DEFAULT_LOG_CAPACITY,
                 tracer=None, registry=None, now=None,
                 path: Optional[str] = None):
        self._records: Deque[dict] = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self._seq = 0
        self._tracer = tracer
        self._now = now or time.time
        self._sink = None
        self._metric_records = None
        self._metric_children = {}
        if registry is not None and registry.enabled:
            self._metric_records = registry.counter(
                "repro_logging_records_total",
                help="Structured log records emitted, labeled by level.",
            )
        if path is not None:
            self.open_file(path)

    # -- sinks -----------------------------------------------------------------

    def open_file(self, path: str) -> None:
        """Append NDJSON records to ``path`` (line-buffered, best effort)."""
        self.close()
        self._sink = open(path, "a", buffering=1, encoding="utf-8")

    def close(self) -> None:
        sink, self._sink = self._sink, None
        if sink is not None:
            try:
                sink.close()
            except OSError:
                pass

    # -- recording -------------------------------------------------------------

    def emit(self, event: str, level: str = "info", **fields) -> dict:
        """Record one structured event; trace/span ids attach themselves.

        ``fields`` must be JSON-safe (strings, numbers, bools, short
        lists) — the record is rendered verbatim on ``GET /logs`` and in
        the file sink.
        """
        record = {"seq": 0, "ts": self._now(), "level": level,
                  "event": event}
        state = getattr(self._tracer, "_state", None)
        if state is not None and state.trace_id is not None:
            record["trace_id"] = state.trace_id
            if state.stack:
                record["span_id"] = state.stack[-1].span_id
        if fields:
            record.update(fields)
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            self._records.append(record)
        if self._metric_records is not None:
            child = self._metric_children.get(level)
            if child is None:
                child = self._metric_records.labels(level=level)
                self._metric_children[level] = child
            child.inc()
        sink = self._sink
        if sink is not None:
            try:
                sink.write(json.dumps(record, sort_keys=True) + "\n")
            except (OSError, ValueError):
                # A full disk or a closed sink must never take the
                # serving path down; the ring still has the record.
                pass
        return record

    def merge(self, record: dict, **extra_fields) -> dict:
        """Adopt a record produced elsewhere (a shard worker's pending
        log), restamping it with this log's sequence and the current
        trace context, plus ``extra_fields`` (e.g. ``shard=``)."""
        fields = {
            key: value for key, value in record.items()
            if key not in ("seq", "ts", "level", "event",
                           "trace_id", "span_id")
        }
        fields.update(extra_fields)
        return self.emit(
            record.get("event", "event"),
            level=record.get("level", "info"),
            **fields,
        )

    # -- export ----------------------------------------------------------------

    @property
    def sequence(self) -> int:
        """The last assigned record sequence number."""
        with self._lock:
            return self._seq

    def restore_sequence(self, value: int) -> None:
        """Continue numbering from a checkpointed sequence (max-merge)."""
        with self._lock:
            self._seq = max(self._seq, int(value))

    def records(self, last: Optional[int] = None) -> List[dict]:
        """The most recent records, oldest first; ``last`` caps them."""
        with self._lock:
            records = list(self._records)
        if last is not None and last >= 0:
            records = records[len(records) - min(last, len(records)):]
        return [dict(record) for record in records]

    def render_ndjson(self, last: Optional[int] = None) -> str:
        """The ring as NDJSON, one record per line (``GET /logs``)."""
        lines = [
            json.dumps(record, sort_keys=True)
            for record in self.records(last=last)
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def clear(self) -> None:
        with self._lock:
            self._records.clear()


class NullEventLog:
    """The zero-cost default: ``emit`` discards, readers are empty."""

    enabled = False
    sequence = 0

    def emit(self, event: str, level: str = "info", **fields) -> None:
        pass

    def merge(self, record: dict, **extra_fields) -> None:
        pass

    def open_file(self, path: str) -> None:
        pass

    def close(self) -> None:
        pass

    def restore_sequence(self, value: int) -> None:
        pass

    def records(self, last: Optional[int] = None) -> list:
        return []

    def render_ndjson(self, last: Optional[int] = None) -> str:
        return ""

    def clear(self) -> None:
        pass


NULL_EVENT_LOG = NullEventLog()
