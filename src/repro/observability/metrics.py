"""A dependency-free metrics registry: counters, gauges, histograms.

The registry follows the Prometheus data model — labeled *families* of
``Counter``/``Gauge``/``Histogram`` children — without importing anything
beyond the stdlib, so the library keeps its zero-dependency core and the
``no-numpy`` CI job stays honest.

Thread safety reuses the MRV striping idiom of
:class:`~repro.windows.striped.StripedCounter`: every counter and
histogram splits its cells into per-thread stripes chosen by
``threading.get_ident()``, each guarded by a stripe-local lock, and reads
merge the stripes.  Counts are integers/float sums, so the merge is exact
— the registry reports the same totals a single-lock implementation
would, without serialising the shard threads of the ``threads`` backend
on one hot lock.

Two registries exist:

* :class:`MetricsRegistry` — the real thing, used whenever observability
  is enabled (the serving layer, ``replay --metrics``).
* :class:`NullRegistry` — the library default.  Every family/child it
  hands out is a shared module-level singleton whose mutators are empty
  methods, so instrumented hot paths allocate **nothing** per event and
  cost one no-op call (pinned by an allocation-count regression test).

Histograms use fixed log-scale buckets (powers of two from 1 µs to ~8 s
by default — latencies, the only thing the pipeline observes into them)
so bucket edges are exactly representable floats and two runs of the same
stream land every observation in the same bucket.

``snapshot()``/``restore()`` round-trip counters and histograms through
the checkpoint manifest so a resumed server's counters continue
monotonically instead of resetting to zero.
"""

from __future__ import annotations

import json
import re
import threading
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds: log-scale (factor 2) from one
#: microsecond to ~8.4 seconds, plus the implicit +Inf bucket.  Powers of
#: two are exact binary floats, so edge observations bucket predictably.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(2.0 ** e for e in range(-20, 4))

#: Stripes per counter/histogram cell.  Writers are the coordinator, at
#: most a handful of shard threads and the event loop; four stripes keep
#: them off each other's locks without making merged reads expensive.
DEFAULT_STRIPES = 4

_NAME_PATTERN = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_PATTERN = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _validate_name(name: str) -> str:
    if not _NAME_PATTERN.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _label_key(labels: Mapping[str, str]) -> Tuple[Tuple[str, str], ...]:
    """The canonical child key: sorted (name, value) pairs."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _StripedCells:
    """Per-thread float cells merged on read — the striping idiom."""

    __slots__ = ("_values", "_locks")

    def __init__(self, stripes: int, width: int = 1):
        self._values: List[List[float]] = [
            [0.0] * width for _ in range(stripes)
        ]
        self._locks = [threading.Lock() for _ in range(stripes)]

    def add(self, index: int, amount: float) -> None:
        stripe = threading.get_ident() % len(self._values)
        with self._locks[stripe]:
            self._values[stripe][index] += amount

    def merged(self) -> List[float]:
        width = len(self._values[0])
        totals = [0.0] * width
        for stripe, lock in enumerate(self._locks):
            with lock:
                cells = self._values[stripe]
                for index in range(width):
                    totals[index] += cells[index]
        return totals

    def seed(self, values: Sequence[float]) -> None:
        """Adopt absolute values (restore path); lands in stripe 0."""
        for stripe, lock in enumerate(self._locks):
            with lock:
                cells = self._values[stripe]
                for index in range(len(cells)):
                    cells[index] = 0.0
        with self._locks[0]:
            cells = self._values[0]
            for index, value in enumerate(values):
                cells[index] = float(value)


class Counter:
    """A monotonically increasing value (one labeled child of a family)."""

    __slots__ = ("_cells",)

    def __init__(self, stripes: int = DEFAULT_STRIPES):
        self._cells = _StripedCells(stripes)

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self._cells.add(0, amount)

    @property
    def value(self) -> float:
        return self._cells.merged()[0]


class Gauge:
    """A settable value, or a live callback read at collection time."""

    __slots__ = ("_lock", "_value", "_function")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0
        self._function: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is above the current one."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    def set_function(self, function: Callable[[], float]) -> None:
        """Read the gauge live from ``function`` at collection time."""
        self._function = function

    @property
    def value(self) -> float:
        function = self._function
        if function is not None:
            try:
                return float(function())
            except Exception:
                # A live gauge must never take /metrics down with it
                # (e.g. a queue read after its service closed).
                return 0.0
        with self._lock:
            return self._value


class Histogram:
    """Fixed log-scale buckets; striped per-bucket counts, sum and count.

    ``observe(v)`` lands in the first bucket whose upper bound satisfies
    ``v <= bound`` (Prometheus ``le`` semantics); values above the last
    bound land only in the implicit +Inf bucket.
    """

    __slots__ = ("buckets", "_cells")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS,
                 stripes: int = DEFAULT_STRIPES):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.buckets = bounds
        # Cell layout: one count per finite bucket, then +Inf count,
        # then the running sum of observed values.
        self._cells = _StripedCells(stripes, width=len(bounds) + 2)

    def observe(self, value: float) -> None:
        index = len(self.buckets)  # +Inf by default
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                index = position
                break
        cells = self._cells
        cells.add(index, 1)
        cells.add(len(self.buckets) + 1, value)

    def merged(self) -> Tuple[List[float], float, float]:
        """``(cumulative_bucket_counts, sum, count)`` — +Inf included."""
        raw = self._cells.merged()
        counts = raw[: len(self.buckets) + 1]
        total = 0.0
        cumulative = []
        for count in counts:
            total += count
            cumulative.append(total)
        return cumulative, raw[-1], total

    @property
    def count(self) -> int:
        return int(self.merged()[2])

    @property
    def sum(self) -> float:
        return self.merged()[1]


class MetricFamily:
    """One named family: a kind, help text and labeled children."""

    def __init__(self, registry: "MetricsRegistry", name: str, kind: str,
                 help: str = "", buckets: Optional[Sequence[float]] = None):
        self.name = _validate_name(name)
        self.kind = kind
        self.help = help
        self.buckets = tuple(buckets) if buckets is not None else None
        self._registry = registry
        self._children: Dict[Tuple[Tuple[str, str], ...], object] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: str):
        """The child for this label set (created on first use)."""
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            for label_name, _value in key:
                if not _LABEL_PATTERN.match(label_name):
                    raise ValueError(f"invalid label name {label_name!r}")
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    def _make_child(self):
        stripes = self._registry.stripes
        if self.kind == "counter":
            return Counter(stripes)
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets or DEFAULT_BUCKETS, stripes)

    def samples(self) -> List[Tuple[Tuple[Tuple[str, str], ...], object]]:
        """Every (label_key, child) pair, in insertion order."""
        with self._lock:
            return list(self._children.items())

    # -- unlabeled passthrough -------------------------------------------------

    def _default(self):
        return self.labels()

    def inc(self, amount: float = 1) -> None:
        self._default().inc(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def set_max(self, value: float) -> None:
        self._default().set_max(value)

    def dec(self, amount: float = 1) -> None:
        self._default().dec(amount)

    def set_function(self, function: Callable[[], float]) -> None:
        self._default().set_function(function)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def merged(self):
        return self._default().merged()

    @property
    def value(self) -> float:
        return self._default().value

    @property
    def count(self) -> int:
        return self._default().count

    @property
    def sum(self) -> float:
        return self._default().sum


class MetricsRegistry:
    """Families keyed by name; re-registration returns the existing one."""

    #: Real registries answer True so hot paths can skip work entirely.
    enabled = True

    def __init__(self, stripes: int = DEFAULT_STRIPES):
        if stripes < 1:
            raise ValueError("stripes must be at least 1")
        self.stripes = int(stripes)
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _family(self, name: str, kind: str, help: str,
                buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind:
                raise ValueError(
                    f"metric {name!r} is already registered as a "
                    f"{family.kind}, not a {kind}"
                )
            return family
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(self, name, kind, help, buckets)
                self._families[name] = family
            return family

    def counter(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, "gauge", help)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        return self._family(name, "histogram", help, buckets)

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # -- persistence -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Counters and histograms as a JSON-safe dict (gauges are live).

        Label keys are JSON-encoded sorted pair lists so the snapshot
        round-trips through the checkpoint manifest unchanged.
        """
        counters: Dict[str, Dict[str, float]] = {}
        histograms: Dict[str, dict] = {}
        for family in self.families():
            if family.kind == "counter":
                values = {
                    json.dumps(key): child.value
                    for key, child in family.samples()
                }
                if values:
                    counters[family.name] = values
            elif family.kind == "histogram":
                children = {}
                for key, child in family.samples():
                    raw = child._cells.merged()
                    children[json.dumps(key)] = {
                        "counts": raw[:-1],
                        "sum": raw[-1],
                    }
                if children:
                    histograms[family.name] = {
                        "buckets": list(child.buckets),
                        "children": children,
                    }
        return {"version": 1, "counters": counters, "histograms": histograms}

    def restore(self, state: Mapping) -> None:
        """Seed counters/histograms from a :meth:`snapshot` so they
        continue monotonically after a resume.  Unknown families are
        registered on the fly (their help text arrives when the
        instrumented layer re-registers them)."""
        if not state:
            return
        for name, values in dict(state.get("counters", {})).items():
            family = self.counter(name)
            for key_json, value in values.items():
                labels = dict(tuple(pair) for pair in json.loads(key_json))
                family.labels(**labels)._cells.seed([float(value)])
        for name, payload in dict(state.get("histograms", {})).items():
            family = self.histogram(
                name, buckets=payload.get("buckets") or None
            )
            for key_json, cells in payload["children"].items():
                labels = dict(tuple(pair) for pair in json.loads(key_json))
                child = family.labels(**labels)
                child._cells.seed(
                    list(cells["counts"]) + [float(cells["sum"])]
                )


class _NullMetric:
    """The one no-op child: mutators are empty, reads are zero.

    A single module-level instance stands in for every counter, gauge and
    histogram of the :class:`NullRegistry`, so disabled instrumentation
    performs one attribute call and allocates nothing per event.
    """

    __slots__ = ()

    def labels(self, **labels):
        return self

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def set_function(self, function) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0

    def samples(self) -> list:
        return []


NULL_METRIC = _NullMetric()


class NullRegistry:
    """The zero-cost default: every family is the shared no-op metric."""

    enabled = False
    stripes = 1

    def counter(self, name: str, help: str = "") -> _NullMetric:
        return NULL_METRIC

    def gauge(self, name: str, help: str = "") -> _NullMetric:
        return NULL_METRIC

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None) -> _NullMetric:
        return NULL_METRIC

    def get(self, name: str) -> None:
        return None

    def families(self) -> list:
        return []

    def snapshot(self) -> dict:
        return {}

    def restore(self, state: Mapping) -> None:
        pass


NULL_REGISTRY = NullRegistry()
