"""Bloom filter for approximate membership tests.

Used by the entity tagger as a cheap pre-filter in front of the knowledge
base ("is this 4-gram possibly a Wikipedia title?") and available as a
sketching plug-in for the stream engine.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from repro.sketches.hashing import HashFamily


class BloomFilter:
    """Standard Bloom filter over string keys (no deletions)."""

    def __init__(
        self,
        capacity: int,
        error_rate: float = 0.01,
        seed: int = 0,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < error_rate < 1:
            raise ValueError("error rate must lie in (0, 1)")
        self.capacity = int(capacity)
        self.error_rate = float(error_rate)
        # Optimal parameters for the requested capacity / error rate.
        self.size = max(1, math.ceil(-capacity * math.log(error_rate) / (math.log(2) ** 2)))
        self.hash_count = max(1, round(self.size / capacity * math.log(2)))
        self._hashes = HashFamily(self.hash_count, seed=seed)
        self._bits = bytearray((self.size + 7) // 8)
        self._count = 0

    def __len__(self) -> int:
        """Number of keys added (including duplicates)."""
        return self._count

    def add(self, key: str) -> None:
        for value in self._hashes.hashes(key):
            self._set_bit(value % self.size)
        self._count += 1

    def update(self, keys: Iterable[str]) -> None:
        for key in keys:
            self.add(key)

    def __contains__(self, key: str) -> bool:
        # Hash lazily: a miss usually fails on the first probe, and the
        # membership-heavy sketch-tier admission path leans on that.
        for index in range(self.hash_count):
            if not self._get_bit(self._hashes.hash(key, index) % self.size):
                return False
        return True

    def estimated_false_positive_rate(self) -> float:
        """False-positive probability given the current fill level."""
        if self._count == 0:
            return 0.0
        fill = 1.0 - math.exp(-self.hash_count * self._count / self.size)
        return fill ** self.hash_count

    def merge(self, other: "BloomFilter") -> None:
        """Fold ``other`` into this filter (parameters and seed must match).

        Membership afterwards is the union: any key in either input filter
        tests positive in the merged one (ORed bit arrays), and the add
        counter — the fill-level input — sums.
        """
        if (self.capacity, self.error_rate) != (other.capacity, other.error_rate):
            raise ValueError("cannot merge bloom filters with different parameters")
        if self._hashes.seed != other._hashes.seed:
            raise ValueError("cannot merge bloom filters with different hash seeds")
        for index, byte in enumerate(other._bits):
            self._bits[index] |= byte
        self._count += other._count

    SNAPSHOT_KIND = "bloom-filter"
    SNAPSHOT_VERSION = 1

    def snapshot(self) -> dict:
        """Exact-width serialization: the bit array is recorded verbatim."""
        return {
            "kind": self.SNAPSHOT_KIND,
            "version": self.SNAPSHOT_VERSION,
            "capacity": self.capacity,
            "error_rate": self.error_rate,
            "seed": self._hashes.seed,
            "count": self._count,
            "bits": self._bits.hex(),
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != self.SNAPSHOT_KIND:
            raise ValueError(f"not a bloom snapshot: {state.get('kind')!r}")
        if state.get("version") != self.SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported bloom snapshot version {state.get('version')!r}"
            )
        if (state["capacity"], state["error_rate"]) \
                != (self.capacity, self.error_rate):
            raise ValueError("snapshot parameters do not match the filter's")
        if state["seed"] != self._hashes.seed:
            raise ValueError("snapshot hash seed does not match the filter's")
        bits = bytearray.fromhex(state["bits"])
        if len(bits) != len(self._bits):
            raise ValueError("snapshot bit array does not match the filter size")
        self._bits = bits
        self._count = int(state["count"])

    @classmethod
    def from_snapshot(cls, state: dict) -> "BloomFilter":
        bloom = cls(
            capacity=state["capacity"],
            error_rate=state["error_rate"],
            seed=state["seed"],
        )
        bloom.restore(state)
        return bloom

    def _set_bit(self, index: int) -> None:
        self._bits[index // 8] |= 1 << (index % 8)

    def _get_bit(self, index: int) -> bool:
        return bool(self._bits[index // 8] & (1 << (index % 8)))
