"""Bloom filter for approximate membership tests.

Used by the entity tagger as a cheap pre-filter in front of the knowledge
base ("is this 4-gram possibly a Wikipedia title?") and available as a
sketching plug-in for the stream engine.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from repro.sketches.hashing import HashFamily


class BloomFilter:
    """Standard Bloom filter over string keys (no deletions)."""

    def __init__(
        self,
        capacity: int,
        error_rate: float = 0.01,
        seed: int = 0,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < error_rate < 1:
            raise ValueError("error rate must lie in (0, 1)")
        self.capacity = int(capacity)
        self.error_rate = float(error_rate)
        # Optimal parameters for the requested capacity / error rate.
        self.size = max(1, math.ceil(-capacity * math.log(error_rate) / (math.log(2) ** 2)))
        self.hash_count = max(1, round(self.size / capacity * math.log(2)))
        self._hashes = HashFamily(self.hash_count, seed=seed)
        self._bits = bytearray((self.size + 7) // 8)
        self._count = 0

    def __len__(self) -> int:
        """Number of keys added (including duplicates)."""
        return self._count

    def add(self, key: str) -> None:
        for value in self._hashes.hashes(key):
            self._set_bit(value % self.size)
        self._count += 1

    def update(self, keys: Iterable[str]) -> None:
        for key in keys:
            self.add(key)

    def __contains__(self, key: str) -> bool:
        return all(
            self._get_bit(value % self.size) for value in self._hashes.hashes(key)
        )

    def estimated_false_positive_rate(self) -> float:
        """False-positive probability given the current fill level."""
        if self._count == 0:
            return 0.0
        fill = 1.0 - math.exp(-self.hash_count * self._count / self.size)
        return fill ** self.hash_count

    def _set_bit(self, index: int) -> None:
        self._bits[index // 8] |= 1 << (index % 8)

    def _get_bit(self, index: int) -> bool:
        return bool(self._bits[index // 8] & (1 << (index % 8)))
