"""The sketch tier of the two-tier pair tracker.

The exact :class:`~repro.core.tracker.CorrelationTracker` keeps every live
pair, so its memory grows with the square of the tag vocabulary.  The
sketch tier sits in front of it and absorbs the long tail of cold pairs at
O(1) memory per update: every pair occurrence is counted in a Count-Min
sketch guarded by a Bloom "seen" filter, and only occurrences of pairs
whose sketched windowed support has reached ``promote_support`` pass
through to the exact tracker.

Windowing works by epoch rotation.  Stream time is divided into epochs of
one ``window_horizon`` each; the tier keeps sketches for the current and
the previous epoch, so together they always cover at least the last
window.  When time crosses an epoch boundary the previous epoch's
sketches are dropped and the current ones take their place — that is the
demotion policy: a promoted pair whose occurrences age out of the exact
window disappears from the exact tier through normal eviction, and its
sketched support decays with the epoch rotation, so it must re-earn
promotion.

The estimate never undercounts the true windowed support.  A key's first
occurrence in an epoch pair may be *absorbed* — recorded only in the
Bloom filter, not the sketch — but from then on the key is Bloom-known
and every occurrence is counted, so at most one occurrence per key is
missing from the two live sketches; the membership bit adds it back.
Bloom false positives can only skip the absorption (counting the first
occurrence too) or add a phantom +1, both of which keep the estimate an
overestimate — exactly the bias promotion wants: no genuinely hot pair
is ever held back, a cold pair is at worst promoted early.

On promotion the crossing occurrence is *back-filled* with weight
``promote_support``: the exact tier records the pair as if it had seen
``promote_support`` occurrences at the crossing timestamp.  Because the
sketched estimate never undercounts, the true support at the crossing is
at most ``promote_support``, so back-filling never undercounts either and
overcounts by at most ``promote_support - 1``.

Everything is deterministic given the stream and the configured
dimensions, so the tier participates in the repo's bit-identity
discipline: snapshots serialize the sketches exact-width, and delta
replay re-drives the same admissions.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.sketches.bloom import BloomFilter
from repro.sketches.countmin import CountMinSketch

#: Separator between the two tags inside a sketch key — a control
#: character no normalized tag contains.
_KEY_SEPARATOR = "\x1f"

#: Distinct hash seeds so the Bloom bits and the Count-Min columns of the
#: same key are uncorrelated.
_CMS_SEED = 1
_BLOOM_SEED = 2


class SketchTier:
    """Count-Min + Bloom admission filter in front of the exact tracker."""

    SNAPSHOT_KIND = "sketch-tier"
    SNAPSHOT_VERSION = 1

    def __init__(
        self,
        window_horizon: float,
        promote_support: int,
        width: int = 8192,
        depth: int = 4,
        bloom_capacity: Optional[int] = None,
        bloom_error_rate: float = 0.01,
    ):
        if window_horizon <= 0:
            raise ValueError("window_horizon must be positive")
        if promote_support < 0:
            raise ValueError("promote_support must be non-negative")
        if width <= 0 or depth <= 0:
            raise ValueError("sketch width and depth must be positive")
        self.window_horizon = float(window_horizon)
        self.promote_support = int(promote_support)
        self.width = int(width)
        self.depth = int(depth)
        self.bloom_capacity = (
            int(bloom_capacity) if bloom_capacity is not None
            else max(1024, 4 * self.width)
        )
        self.bloom_error_rate = float(bloom_error_rate)
        self._epoch: Optional[int] = None
        self._current = self._fresh_epoch()
        self._previous = self._fresh_epoch()
        #: Crossing admissions: occurrences that promoted their pair.
        self.promotions = 0
        #: Occurrences of already-promoted pairs passed through at weight 1.
        self.admissions = 0
        #: Occurrences absorbed by the sketch tier (weight 0).
        self.filtered = 0

    def _fresh_epoch(self) -> Tuple[CountMinSketch, BloomFilter]:
        return (
            CountMinSketch(width=self.width, depth=self.depth, seed=_CMS_SEED),
            BloomFilter(
                capacity=self.bloom_capacity,
                error_rate=self.bloom_error_rate,
                seed=_BLOOM_SEED,
            ),
        )

    # -- admission -----------------------------------------------------------

    def admit(self, timestamp: float, first: str, second: str) -> int:
        """Process one occurrence of the pair; return its exact-tier weight.

        ``0`` means the occurrence stays in the sketch tier.  ``1`` is an
        occurrence of an already-promoted pair.  ``promote_support`` is the
        back-filled crossing occurrence that promotes the pair.
        """
        key = first + _KEY_SEPARATOR + second
        self._rotate(timestamp)
        sketch, bloom = self._current
        previous_sketch, previous_bloom = self._previous
        in_current = key in bloom
        if in_current or (len(previous_bloom) and key in previous_bloom):
            # The membership bit stands in for the one occurrence per key
            # that epoch absorption may have kept out of the sketches.
            estimate = sketch.add(key) + 1
            if previous_sketch.total:
                estimate += previous_sketch.estimate(key)
            if not in_current:
                bloom.add(key)
        else:
            bloom.add(key)
            estimate = 1
        if estimate < self.promote_support:
            self.filtered += 1
            return 0
        if estimate - 1 < self.promote_support:
            # The estimate crossed the threshold on this occurrence (adding
            # one occurrence raises it by exactly one): promote with the
            # back-fill weight.  max(..., 1) keeps thresholds 0 and 1
            # degenerate to the exact engine (weight 1 per occurrence).
            self.promotions += 1
            return max(self.promote_support, 1)
        self.admissions += 1
        return 1

    def filter_pairs(self, timestamp: float, pairs: Sequence) -> tuple:
        """Admission over a document's pairs, in order.

        Returns the admitted pairs, with a crossing pair replicated to its
        back-fill weight so downstream counting needs no special case.
        """
        admitted: List = []
        for pair in pairs:
            # Serves both the live TagPair objects and the plain
            # [first, second] pairs the journal replay derives.
            first = getattr(pair, "first", None)
            if first is None:
                first, second = pair
            else:
                second = pair.second
            weight = self.admit(timestamp, first, second)
            if weight == 1:
                admitted.append(pair)
            elif weight > 1:
                admitted.extend([pair] * weight)
        return tuple(admitted)

    def _rotate(self, timestamp: float) -> None:
        if timestamp < 0:
            raise ValueError("timestamp must be non-negative")
        epoch = int(timestamp // self.window_horizon)
        if self._epoch is None:
            self._epoch = epoch
            return
        if epoch == self._epoch:
            return
        if epoch < self._epoch:
            raise ValueError("timestamps must be non-decreasing")
        if epoch == self._epoch + 1:
            self._previous = self._current
        else:
            # A gap larger than one epoch ages both sketch generations out.
            self._previous = self._fresh_epoch()
        self._current = self._fresh_epoch()
        self._epoch = epoch

    # -- introspection -------------------------------------------------------

    def estimated_support(self, first: str, second: str) -> int:
        """Sketched windowed support of the pair (never an underestimate)."""
        key = first + _KEY_SEPARATOR + second
        sketch, bloom = self._current
        previous_sketch, previous_bloom = self._previous
        if key in bloom or key in previous_bloom:
            return sketch.estimate(key) + previous_sketch.estimate(key) + 1
        return 0

    @property
    def tracked_keys(self) -> int:
        """Occupancy proxy: Bloom-known keys across the two live epochs."""
        return len(self._current[1]) + len(self._previous[1])

    @property
    def sketched_total(self) -> int:
        """Total occurrence weight held by the two live sketches."""
        return self._current[0].total + self._previous[0].total

    @property
    def error_bound(self) -> float:
        """Count-Min overcount bound ``(e / width) * N`` over the live total."""
        return math.e / self.width * self.sketched_total

    # -- persistence ---------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "kind": self.SNAPSHOT_KIND,
            "version": self.SNAPSHOT_VERSION,
            "window_horizon": self.window_horizon,
            "promote_support": self.promote_support,
            "width": self.width,
            "depth": self.depth,
            "bloom_capacity": self.bloom_capacity,
            "bloom_error_rate": self.bloom_error_rate,
            "epoch": self._epoch,
            "promotions": self.promotions,
            "admissions": self.admissions,
            "filtered": self.filtered,
            "current": [self._current[0].snapshot(), self._current[1].snapshot()],
            "previous": [self._previous[0].snapshot(), self._previous[1].snapshot()],
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != self.SNAPSHOT_KIND:
            raise ValueError(f"not a sketch-tier snapshot: {state.get('kind')!r}")
        if state.get("version") != self.SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported sketch-tier snapshot version {state.get('version')!r}"
            )
        for field in ("window_horizon", "promote_support", "width", "depth",
                      "bloom_capacity", "bloom_error_rate"):
            if state[field] != getattr(self, field):
                raise ValueError(
                    f"sketch-tier snapshot {field}={state[field]!r} does not "
                    f"match the configured {getattr(self, field)!r}"
                )
        epoch = state["epoch"]
        self._epoch = int(epoch) if epoch is not None else None
        self.promotions = int(state["promotions"])
        self.admissions = int(state["admissions"])
        self.filtered = int(state["filtered"])
        self._current = (
            CountMinSketch.from_snapshot(state["current"][0]),
            BloomFilter.from_snapshot(state["current"][1]),
        )
        self._previous = (
            CountMinSketch.from_snapshot(state["previous"][0]),
            BloomFilter.from_snapshot(state["previous"][1]),
        )

    @classmethod
    def from_snapshot(cls, state: dict) -> "SketchTier":
        tier = cls(
            window_horizon=state["window_horizon"],
            promote_support=state["promote_support"],
            width=state["width"],
            depth=state["depth"],
            bloom_capacity=state["bloom_capacity"],
            bloom_error_rate=state["bloom_error_rate"],
        )
        tier.restore(state)
        return tier
