"""Reservoir sampling over unbounded streams.

A uniform random sample of the documents seen so far, useful as a synopsis
operator in the stream engine and for sampling-based ablations.
"""

from __future__ import annotations

import random
from typing import Generic, List, Optional, TypeVar

T = TypeVar("T")


class ReservoirSample(Generic[T]):
    """Algorithm R reservoir sample of fixed capacity."""

    def __init__(self, capacity: int, seed: Optional[int] = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._rng = random.Random(seed)
        self._items: List[T] = []
        self._seen = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def seen(self) -> int:
        """Total number of items offered to the sampler."""
        return self._seen

    def add(self, item: T) -> None:
        self._seen += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return
        slot = self._rng.randint(0, self._seen - 1)
        if slot < self.capacity:
            self._items[slot] = item

    def items(self) -> List[T]:
        """A copy of the current sample (order is not meaningful)."""
        return list(self._items)
