"""Sketching operators: compact synopses of stream items.

Section 4.1 of the paper describes "plug-in options for sketching operators
that map stream items into synopses".  This package provides the classic
synopses such a plug-in would use: a Count-Min sketch for approximate tag
and pair counting, a Bloom filter for membership tests, a reservoir sample
for unbiased document samples, and the shared hashing utilities.
"""

from repro.sketches.hashing import HashFamily
from repro.sketches.countmin import CountMinSketch, WindowedCountMinSketch
from repro.sketches.bloom import BloomFilter
from repro.sketches.sampling import ReservoirSample
from repro.sketches.tier import SketchTier

__all__ = [
    "HashFamily",
    "CountMinSketch",
    "WindowedCountMinSketch",
    "BloomFilter",
    "ReservoirSample",
    "SketchTier",
]
