"""Count-Min sketch and a windowed variant for stream counting.

The Count-Min sketch overestimates counts but never underestimates them,
which is the right bias for seed-tag selection: a tag reported as popular by
the sketch may occasionally be a false positive, but no genuinely popular
tag is missed.  The windowed variant approximates sliding-window counts by
keeping one sketch per sub-window ("pane") and summing the live panes.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional, Tuple

from repro.sketches.hashing import HashFamily


class CountMinSketch:
    """Classic Count-Min sketch over string keys."""

    def __init__(
        self,
        width: Optional[int] = None,
        depth: Optional[int] = None,
        epsilon: Optional[float] = None,
        delta: Optional[float] = None,
        seed: int = 0,
    ):
        """Create a sketch either from explicit dimensions or error bounds.

        ``epsilon`` bounds the overestimate (relative to the total count) and
        ``delta`` the failure probability; they translate into ``width =
        ceil(e / epsilon)`` and ``depth = ceil(ln(1 / delta))``.
        """
        if width is None or depth is None:
            if epsilon is None or delta is None:
                raise ValueError(
                    "provide either (width, depth) or (epsilon, delta)"
                )
            if not 0 < epsilon < 1 or not 0 < delta < 1:
                raise ValueError("epsilon and delta must lie in (0, 1)")
            width = math.ceil(math.e / epsilon)
            depth = math.ceil(math.log(1.0 / delta))
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        self.width = int(width)
        self.depth = int(depth)
        self._hashes = HashFamily(self.depth, seed=seed)
        self._table = [[0] * self.width for _ in range(self.depth)]
        self._total = 0

    @property
    def total(self) -> int:
        """Total weight added to the sketch."""
        return self._total

    def add(self, key: str, count: int = 1) -> int:
        """Add ``count`` to ``key``; return the post-add estimate.

        The returned value equals ``estimate(key)`` immediately after the
        add, computed from the same row/column walk — callers on hot paths
        (the sketch tier's admission) avoid hashing the key twice.
        """
        if count < 0:
            raise ValueError("counts must be non-negative")
        minimum = None
        for row in range(self.depth):
            column = self._hashes.hash(key, row) % self.width
            cell = self._table[row][column] + count
            self._table[row][column] = cell
            if minimum is None or cell < minimum:
                minimum = cell
        self._total += count
        return minimum

    def estimate(self, key: str) -> int:
        """Estimated count for ``key`` (never an underestimate)."""
        return min(
            self._table[row][self._hashes.hash(key, row) % self.width]
            for row in range(self.depth)
        )

    def merge(self, other: "CountMinSketch") -> None:
        """Fold ``other`` into this sketch (dimensions and seed must match)."""
        if (self.width, self.depth) != (other.width, other.depth):
            raise ValueError("cannot merge sketches with different dimensions")
        if self._hashes.seed != other._hashes.seed:
            raise ValueError("cannot merge sketches with different hash seeds")
        for row in range(self.depth):
            for column in range(self.width):
                self._table[row][column] += other._table[row][column]
        self._total += other._total

    SNAPSHOT_KIND = "count-min"
    SNAPSHOT_VERSION = 1

    def snapshot(self) -> dict:
        """Exact-width serialization: the table is recorded cell for cell,
        so a restored sketch answers every estimate identically."""
        return {
            "kind": self.SNAPSHOT_KIND,
            "version": self.SNAPSHOT_VERSION,
            "width": self.width,
            "depth": self.depth,
            "seed": self._hashes.seed,
            "total": self._total,
            "table": [list(row) for row in self._table],
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != self.SNAPSHOT_KIND:
            raise ValueError(f"not a count-min snapshot: {state.get('kind')!r}")
        if state.get("version") != self.SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported count-min snapshot version {state.get('version')!r}"
            )
        if (state["width"], state["depth"]) != (self.width, self.depth):
            raise ValueError(
                "snapshot dimensions "
                f"{state['width']}x{state['depth']} do not match the sketch's "
                f"{self.width}x{self.depth}"
            )
        if state["seed"] != self._hashes.seed:
            raise ValueError("snapshot hash seed does not match the sketch's")
        table = state["table"]
        if len(table) != self.depth or any(len(row) != self.width for row in table):
            raise ValueError("snapshot table does not match the declared dimensions")
        self._table = [list(row) for row in table]
        self._total = int(state["total"])

    @classmethod
    def from_snapshot(cls, state: dict) -> "CountMinSketch":
        sketch = cls(
            width=state["width"], depth=state["depth"], seed=state["seed"]
        )
        sketch.restore(state)
        return sketch


class WindowedCountMinSketch:
    """Sliding-window counts approximated by per-pane Count-Min sketches.

    The window ``horizon`` is divided into ``panes`` equal sub-intervals.
    Each pane has its own sketch; when time moves past a pane boundary the
    oldest pane is discarded.  Estimates sum the live panes, so they cover a
    period between ``horizon - horizon/panes`` and ``horizon``.
    """

    def __init__(
        self,
        horizon: float,
        panes: int = 8,
        width: int = 512,
        depth: int = 4,
        seed: int = 0,
    ):
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if panes <= 0:
            raise ValueError("there must be at least one pane")
        self.horizon = float(horizon)
        self.panes = int(panes)
        self.pane_length = self.horizon / self.panes
        self._width = width
        self._depth = depth
        self._seed = seed
        # Each live pane is (pane_index, sketch); pane_index = floor(t / pane_length).
        self._live: Deque[Tuple[int, CountMinSketch]] = deque()

    def add(self, timestamp: float, key: str, count: int = 1) -> None:
        pane_index = self._pane_index(timestamp)
        self._advance(pane_index)
        if not self._live or self._live[-1][0] != pane_index:
            sketch = CountMinSketch(
                width=self._width, depth=self._depth, seed=self._seed
            )
            self._live.append((pane_index, sketch))
        self._live[-1][1].add(key, count)

    def advance_to(self, timestamp: float) -> None:
        self._advance(self._pane_index(timestamp))

    def estimate(self, key: str) -> int:
        return sum(sketch.estimate(key) for _, sketch in self._live)

    def _pane_index(self, timestamp: float) -> int:
        if timestamp < 0:
            raise ValueError("timestamp must be non-negative")
        return int(timestamp // self.pane_length)

    def _advance(self, pane_index: int) -> None:
        if self._live and pane_index < self._live[-1][0]:
            raise ValueError("timestamps must be non-decreasing")
        oldest_allowed = pane_index - self.panes + 1
        while self._live and self._live[0][0] < oldest_allowed:
            self._live.popleft()
