"""Deterministic hash families for the sketch data structures.

The sketches need several independent hash functions over arbitrary string
keys.  We derive them from ``hashlib.blake2b`` with a per-function salt,
which is deterministic across processes (unlike Python's built-in ``hash``
with randomised seeds) so tests and benchmarks are reproducible.
"""

from __future__ import annotations

import hashlib
from typing import List


class HashFamily:
    """A family of ``count`` independent hash functions mapping keys to ints."""

    def __init__(self, count: int, seed: int = 0):
        if count <= 0:
            raise ValueError("a hash family needs at least one function")
        if seed < 0:
            raise ValueError("seed must be non-negative")
        self.count = int(count)
        self.seed = int(seed)
        # The per-function salts never change; building them once keeps the
        # hot sketch paths (one blake2b per row per update) allocation-free.
        self._salts = [
            f"{self.seed}:{index}".encode("utf-8")[:16]
            for index in range(self.count)
        ]

    def hash(self, key: str, index: int) -> int:
        """Value of the ``index``-th hash function on ``key``."""
        if not 0 <= index < self.count:
            raise IndexError(f"hash function index {index} out of range")
        digest = hashlib.blake2b(
            key.encode("utf-8"), salt=self._salts[index], digest_size=8
        ).digest()
        return int.from_bytes(digest, "big")

    def hashes(self, key: str) -> List[int]:
        """All hash values for ``key``, one per function in the family."""
        return [self.hash(key, index) for index in range(self.count)]
