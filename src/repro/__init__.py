"""repro — a reproduction of EnBlogue (SIGMOD 2011).

EnBlogue detects *emergent topics* in Web 2.0 streams: pairs of tags whose
correlation suddenly shifts in a way that cannot be predicted from their
history.  The library reproduces the complete system described in the
paper — the push-based stream engine, the three-stage detection pipeline
(seed selection, correlation tracking, shift detection), entity tagging,
personalization and the push-based front end — together with synthetic
stand-ins for the demo's data sources and a TwitterMonitor-style baseline.

Quickstart::

    from repro import EnBlogue, EnBlogueConfig
    from repro.datasets import TweetStreamGenerator

    corpus, events = TweetStreamGenerator(hours=48).generate()
    engine = EnBlogue(EnBlogueConfig(window_horizon=86400.0,
                                     evaluation_interval=3600.0))
    engine.process_many(corpus)
    print(engine.current_ranking().describe(k=5))
"""

from repro.core.config import EnBlogueConfig, live_stream_config, news_archive_config
from repro.core.engine import EnBlogue
from repro.core.personalization import PersonalizationEngine, UserProfile
from repro.core.types import EmergentTopic, Ranking, TagPair
from repro.persistence import load_engine
from repro.portal.server import Portal
from repro.serving import DetectionService, RankingServer
from repro.sharding import ShardedEnBlogue
from repro.streams.item import StreamItem

__version__ = "1.3.0"

__all__ = [
    "EnBlogue",
    "ShardedEnBlogue",
    "DetectionService",
    "RankingServer",
    "load_engine",
    "EnBlogueConfig",
    "news_archive_config",
    "live_stream_config",
    "TagPair",
    "EmergentTopic",
    "Ranking",
    "UserProfile",
    "PersonalizationEngine",
    "Portal",
    "StreamItem",
    "__version__",
]
