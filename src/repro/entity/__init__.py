"""Entity tagging substrate.

The paper enriches incoming documents with named entities: the text is
scanned with a sliding window of up to four successive terms, each window
substring is checked against Wikipedia article titles (following redirects
to canonical names), and an optional second filter restricts matches to
particular entity types via an ontology lookup (YAGO).

The real Wikipedia/YAGO dumps are replaced by an in-memory knowledge base
with the same interface (titles, redirect aliases, typed entities); the
tagger itself is a faithful implementation of the ≤4-term sliding-window
matching described in Section 3.
"""

from repro.entity.tokenizer import tokenize, ngrams
from repro.entity.knowledge_base import KnowledgeBase, KnowledgeBaseEntry
from repro.entity.ontology import Ontology
from repro.entity.tagger import EntityTagger, EntityTaggingOperator

__all__ = [
    "tokenize",
    "ngrams",
    "KnowledgeBase",
    "KnowledgeBaseEntry",
    "Ontology",
    "EntityTagger",
    "EntityTaggingOperator",
]
