"""The sliding-window entity tagger and its stream-operator wrapper.

"When a document arrives, we scan its text content with a sliding window of
up to 4 successive terms, and check whether substrings of these match the
title of a Wikipedia article.  These checks also consider Wikipedia
redirects ... In addition, we have implemented a second filter consisting of
lookups in an ontology (e.g., YAGO), which allows us to focus on particular
entity types." (Section 3, Entity Tagging)
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from repro.entity.knowledge_base import KnowledgeBase, default_knowledge_base
from repro.entity.ontology import Ontology, ontology_from_knowledge_base
from repro.entity.tokenizer import is_stopword, ngrams, tokenize
from repro.sketches.bloom import BloomFilter
from repro.streams.item import StreamItem
from repro.streams.operators import Operator

#: The paper's window size: phrases of up to four successive terms.
DEFAULT_MAX_PHRASE_LENGTH = 4


class EntityTagger:
    """Extract canonical entity names from free text."""

    def __init__(
        self,
        knowledge_base: Optional[KnowledgeBase] = None,
        ontology: Optional[Ontology] = None,
        allowed_types: Iterable[str] = (),
        max_phrase_length: int = DEFAULT_MAX_PHRASE_LENGTH,
        use_prefilter: bool = True,
    ):
        if max_phrase_length <= 0:
            raise ValueError("max_phrase_length must be positive")
        self.knowledge_base = knowledge_base or default_knowledge_base()
        self.ontology = ontology
        if self.ontology is None and allowed_types:
            self.ontology = ontology_from_knowledge_base(self.knowledge_base)
        self.allowed_types = tuple(allowed_types)
        self.max_phrase_length = int(max_phrase_length)
        self._prefilter: Optional[BloomFilter] = None
        if use_prefilter:
            phrases = self.knowledge_base.phrases()
            if phrases:
                self._prefilter = BloomFilter(capacity=max(len(phrases), 16))
                self._prefilter.update(phrases)

    def tag(self, text: str) -> List[str]:
        """Canonical entity names found in ``text`` (deduplicated, ordered).

        Longest-match-first: once a phrase starting at position ``i`` matches,
        shorter phrases starting inside it are skipped, so "hurricane katrina"
        yields one entity rather than also matching "katrina".
        """
        tokens = tokenize(text)
        found: List[str] = []
        seen: Set[str] = set()
        skip_until = 0
        for start, length, phrase in ngrams(tokens, self.max_phrase_length):
            if start < skip_until:
                continue
            if length == 1 and is_stopword(phrase):
                continue
            if self._prefilter is not None and phrase not in self._prefilter:
                continue
            entry = self.knowledge_base.resolve(phrase)
            if entry is None:
                continue
            if not self._type_allowed(entry.title):
                continue
            if entry.title not in seen:
                seen.add(entry.title)
                found.append(entry.title)
            skip_until = start + length
        return found

    def _type_allowed(self, canonical_title: str) -> bool:
        if not self.allowed_types:
            return True
        if self.ontology is None:
            return True
        return self.ontology.matches(canonical_title, self.allowed_types)


class EntityTaggingOperator(Operator):
    """Stream operator enriching items with entities from their text.

    This is one of the shareable operators of the engine: several query
    plans tap the same tagged stream so the (comparatively expensive) text
    scan runs once per document.
    """

    def __init__(
        self,
        tagger: Optional[EntityTagger] = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name or "entity-tagging")
        self.tagger = tagger or EntityTagger()
        self.documents_tagged = 0
        self.entities_added = 0

    def process(self, item: StreamItem) -> Sequence[StreamItem]:
        if not item.text:
            return (item,)
        entities = self.tagger.tag(item.text)
        self.documents_tagged += 1
        if not entities:
            return (item,)
        self.entities_added += len(entities)
        return (item.with_entities(entities),)
