"""Tokenisation helpers for the entity tagger and keyword matching."""

from __future__ import annotations

import re
from typing import Iterator, List, Sequence, Tuple

_TOKEN_PATTERN = re.compile(r"[A-Za-z0-9][A-Za-z0-9'\-]*")

#: Common function words skipped when matching single-term entities.
STOPWORDS = frozenset(
    """a an and are as at be but by for from has have in is it its of on or
    that the this to was were will with over after before during under about
    into not no new says said""".split()
)


def tokenize(text: str, lowercase: bool = True) -> List[str]:
    """Split ``text`` into word tokens, optionally lower-casing them."""
    tokens = _TOKEN_PATTERN.findall(text)
    if lowercase:
        tokens = [token.lower() for token in tokens]
    return tokens


def ngrams(tokens: Sequence[str], max_length: int) -> Iterator[Tuple[int, int, str]]:
    """Enumerate all n-grams of length 1..``max_length`` over ``tokens``.

    Yields ``(start, length, phrase)`` with the longest n-grams at each start
    position first, which lets the tagger prefer the most specific match
    (e.g. "new york times" over "new york").
    """
    if max_length <= 0:
        raise ValueError("max_length must be positive")
    for start in range(len(tokens)):
        longest = min(max_length, len(tokens) - start)
        for length in range(longest, 0, -1):
            phrase = " ".join(tokens[start:start + length])
            yield start, length, phrase


def is_stopword(token: str) -> bool:
    """True for common function words (used to suppress 1-gram noise)."""
    return token.lower() in STOPWORDS
