"""A YAGO-style type ontology used as a second entity filter.

The paper's second filter "consist[s] of lookups in an ontology (e.g.,
YAGO), which allows us to focus on particular entity types".  Our ontology
is a directed acyclic graph of type subsumption (``politician`` is-a
``person``) plus a mapping from entities to their direct types; the filter
accepts an entity when any of its types is subsumed by one of the requested
types.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set


class Ontology:
    """Type hierarchy with entity-to-type assignments."""

    def __init__(self) -> None:
        self._parents: Dict[str, Set[str]] = {}
        self._entity_types: Dict[str, Set[str]] = {}

    # -- schema -----------------------------------------------------------

    def add_type(self, type_name: str, parent: Optional[str] = None) -> None:
        """Register a type, optionally as a subtype of ``parent``."""
        if not type_name:
            raise ValueError("type name must be non-empty")
        self._parents.setdefault(type_name, set())
        if parent is not None:
            self._parents.setdefault(parent, set())
            if self._is_ancestor(type_name, parent):
                raise ValueError(
                    f"adding {type_name} -> {parent} would create a cycle"
                )
            self._parents[type_name].add(parent)

    def has_type(self, type_name: str) -> bool:
        return type_name in self._parents

    def supertypes(self, type_name: str) -> Set[str]:
        """All ancestors of ``type_name`` (excluding itself)."""
        result: Set[str] = set()
        stack = list(self._parents.get(type_name, ()))
        while stack:
            parent = stack.pop()
            if parent in result:
                continue
            result.add(parent)
            stack.extend(self._parents.get(parent, ()))
        return result

    def is_subtype(self, type_name: str, ancestor: str) -> bool:
        """True when ``type_name`` equals or is subsumed by ``ancestor``."""
        return type_name == ancestor or ancestor in self.supertypes(type_name)

    # -- instances ----------------------------------------------------------

    def assign(self, entity: str, types: Iterable[str]) -> None:
        """Attach direct types to an entity, creating unknown types on the fly."""
        entity_types = self._entity_types.setdefault(entity, set())
        for type_name in types:
            self.add_type(type_name)
            entity_types.add(type_name)

    def types_of(self, entity: str) -> Set[str]:
        """Direct and inherited types of ``entity``."""
        direct = self._entity_types.get(entity, set())
        result = set(direct)
        for type_name in direct:
            result |= self.supertypes(type_name)
        return result

    def entities_of_type(self, type_name: str) -> List[str]:
        """Entities whose type set is subsumed by ``type_name``."""
        return [
            entity
            for entity in self._entity_types
            if any(self.is_subtype(t, type_name) for t in self._entity_types[entity])
        ]

    def matches(self, entity: str, allowed_types: Iterable[str]) -> bool:
        """True when ``entity`` has a type subsumed by any allowed type."""
        allowed = list(allowed_types)
        if not allowed:
            return True
        direct = self._entity_types.get(entity)
        if not direct:
            return False
        return any(
            self.is_subtype(entity_type, allowed_type)
            for entity_type in direct
            for allowed_type in allowed
        )

    def _is_ancestor(self, candidate_ancestor: str, type_name: str) -> bool:
        return candidate_ancestor == type_name or candidate_ancestor in self.supertypes(
            type_name
        )


def ontology_from_knowledge_base(knowledge_base) -> Ontology:
    """Build an ontology from the type annotations of a knowledge base.

    The second entry of each knowledge-base type tuple is treated as a
    subtype of the first (e.g. ``("person", "politician")`` registers
    ``politician`` is-a ``person``), mirroring YAGO's subclass structure.
    """
    ontology = Ontology()
    for entry in knowledge_base.entries():
        types = list(entry.types)
        for parent, child in zip(types, types[1:]):
            ontology.add_type(parent)
            ontology.add_type(child, parent=parent)
        ontology.assign(entry.title, types)
    return ontology
