"""An in-memory Wikipedia-style knowledge base: titles, redirects, types.

The paper looks up candidate phrases against "the title of a Wikipedia
article", using "Wikipedia redirects ... to map different namings of a
single entity to one unique name".  This module provides the same lookup
surface over a compact in-memory store, plus a default knowledge base with
the people, places and organisations used by the synthetic datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


def normalize_title(title: str) -> str:
    """Canonical lookup form of a title: lower-case, single spaces."""
    return " ".join(title.strip().lower().split())


@dataclass(frozen=True)
class KnowledgeBaseEntry:
    """One canonical entity: its title, aliases (redirects) and types."""

    title: str
    aliases: Tuple[str, ...] = ()
    types: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.title.strip():
            raise ValueError("entity title must be non-empty")


class KnowledgeBase:
    """Title and redirect index over a set of entities."""

    def __init__(self, entries: Optional[Iterable[KnowledgeBaseEntry]] = None):
        self._entries: Dict[str, KnowledgeBaseEntry] = {}
        self._redirects: Dict[str, str] = {}
        if entries:
            for entry in entries:
                self.add(entry)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, phrase: str) -> bool:
        return self.resolve(phrase) is not None

    def add(self, entry: KnowledgeBaseEntry) -> None:
        """Register an entity; aliases become redirects to the canonical title."""
        key = normalize_title(entry.title)
        if key in self._redirects:
            raise ValueError(
                f"title {entry.title!r} already registered as a redirect"
            )
        self._entries[key] = entry
        for alias in entry.aliases:
            alias_key = normalize_title(alias)
            if alias_key == key:
                continue
            if alias_key in self._entries:
                raise ValueError(
                    f"alias {alias!r} collides with an existing canonical title"
                )
            self._redirects[alias_key] = key

    def add_entity(
        self,
        title: str,
        aliases: Iterable[str] = (),
        types: Iterable[str] = (),
    ) -> KnowledgeBaseEntry:
        """Convenience wrapper building and adding an entry."""
        entry = KnowledgeBaseEntry(
            title=title, aliases=tuple(aliases), types=tuple(types)
        )
        self.add(entry)
        return entry

    def resolve(self, phrase: str) -> Optional[KnowledgeBaseEntry]:
        """Resolve a phrase to its canonical entity, following redirects."""
        key = normalize_title(phrase)
        if key in self._entries:
            return self._entries[key]
        if key in self._redirects:
            return self._entries[self._redirects[key]]
        return None

    def canonical_title(self, phrase: str) -> Optional[str]:
        """Canonical title for ``phrase`` or ``None`` when unknown."""
        entry = self.resolve(phrase)
        return entry.title if entry else None

    def titles(self) -> List[str]:
        return [entry.title for entry in self._entries.values()]

    def phrases(self) -> List[str]:
        """Every lookup phrase (titles and aliases) in normalised form."""
        return list(self._entries) + list(self._redirects)

    def entries(self) -> List[KnowledgeBaseEntry]:
        return list(self._entries.values())


def default_knowledge_base() -> KnowledgeBase:
    """Knowledge base covering the entities in the synthetic datasets.

    Mirrors the kind of coverage the Wikipedia title index provides for the
    demo scenarios: politicians, places, organisations and events used by
    the NYT-style, Twitter-style and RSS-style generators.
    """
    kb = KnowledgeBase()
    people = [
        ("Barack Obama", ("obama",), ("person", "politician")),
        ("John McCain", ("mccain",), ("person", "politician")),
        ("Hillary Clinton", ("clinton",), ("person", "politician")),
        ("George W. Bush", ("george bush", "bush"), ("person", "politician")),
        ("Roger Federer", ("federer",), ("person", "athlete")),
        ("Serena Williams", (), ("person", "athlete")),
        ("Michael Phelps", ("phelps",), ("person", "athlete")),
    ]
    places = [
        ("New Orleans", (), ("place", "city")),
        ("Iceland", (), ("place", "country")),
        ("Athens", (), ("place", "city")),
        ("Greece", (), ("place", "country")),
        ("Florida", (), ("place", "state")),
        ("Louisiana", (), ("place", "state")),
        ("Wall Street", (), ("place", "financial district")),
        ("Eyjafjallajokull", ("eyjafjallajoekull", "iceland volcano"), ("place", "volcano")),
    ]
    organisations = [
        ("Lehman Brothers", ("lehman",), ("organization", "bank")),
        ("Federal Reserve", ("the fed",), ("organization", "central bank")),
        ("SIGMOD", ("acm sigmod",), ("organization", "conference")),
        ("Red Cross", (), ("organization", "ngo")),
        ("FEMA", (), ("organization", "agency")),
        ("United Nations", ("un",), ("organization", "igo")),
    ]
    events = [
        ("Hurricane Katrina", ("katrina",), ("event", "hurricane")),
        ("Hurricane Rita", ("rita",), ("event", "hurricane")),
        ("Olympic Games", ("olympics",), ("event", "sport event")),
        ("World Series", (), ("event", "sport event")),
        ("Super Bowl", (), ("event", "sport event")),
    ]
    for title, aliases, types in people + places + organisations + events:
        kb.add_entity(title, aliases=aliases, types=types)
    return kb
