"""Hot-tags baseline: rank pairs of currently popular tags.

The weakest reasonable comparator: it has no notion of change at all and
simply reports the most frequent co-occurring tag pairs of the current
window.  The paper's point — "spotting such trends is very different from
identifying popular topics" — shows up as this baseline ranking perennial
category pairs instead of emergent ones.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, Iterable, List, Optional, Tuple

from repro.core.types import EmergentTopic, Ranking, TagPair


class PopularityBaseline:
    """Rank tag pairs by windowed co-occurrence count."""

    def __init__(self, window_horizon: float, top_k: int = 10,
                 evaluation_interval: Optional[float] = None):
        if window_horizon <= 0:
            raise ValueError("window_horizon must be positive")
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        self.window_horizon = float(window_horizon)
        self.top_k = int(top_k)
        self.evaluation_interval = float(evaluation_interval or window_horizon / 4)
        self._events: Deque[Tuple[float, Tuple[TagPair, ...]]] = deque()
        self._counts: Counter = Counter()
        self._rankings: List[Ranking] = []
        self._next_evaluation: Optional[float] = None

    def process(self, document) -> Optional[Ranking]:
        """Ingest one document; may emit a ranking on evaluation boundaries."""
        timestamp = float(getattr(document, "timestamp"))
        tags = sorted({str(t).lower() for t in getattr(document, "tags", ()) or ()})
        if self._next_evaluation is None:
            self._next_evaluation = timestamp + self.evaluation_interval
        ranking: Optional[Ranking] = None
        while timestamp >= self._next_evaluation:
            ranking = self._evaluate(self._next_evaluation)
            self._next_evaluation += self.evaluation_interval
        pairs = tuple(
            TagPair(tags[i], tags[j])
            for i in range(len(tags))
            for j in range(i + 1, len(tags))
        )
        self._events.append((timestamp, pairs))
        for pair in pairs:
            self._counts[pair] += 1
        self._evict(timestamp)
        return ranking

    def process_many(self, documents: Iterable) -> List[Ranking]:
        produced = []
        for document in documents:
            ranking = self.process(document)
            if ranking is not None:
                produced.append(ranking)
        return produced

    def current_ranking(self) -> Optional[Ranking]:
        return self._rankings[-1] if self._rankings else None

    def ranking_history(self) -> List[Ranking]:
        return list(self._rankings)

    def _evaluate(self, timestamp: float) -> Ranking:
        ranked = sorted(
            self._counts.items(), key=lambda item: (-item[1], item[0])
        )[: self.top_k]
        topics = [
            EmergentTopic(pair=pair, score=float(count), timestamp=timestamp)
            for pair, count in ranked
        ]
        ranking = Ranking(timestamp=timestamp, topics=topics, label="popularity")
        self._rankings.append(ranking)
        return ranking

    def _evict(self, now: float) -> None:
        cutoff = now - self.window_horizon
        while self._events and self._events[0][0] <= cutoff:
            _, pairs = self._events.popleft()
            for pair in pairs:
                self._counts[pair] -= 1
                if self._counts[pair] <= 0:
                    del self._counts[pair]
