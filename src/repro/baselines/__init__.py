"""Baseline trend detectors that enBlogue is contrasted against.

The related-work discussion singles out TwitterMonitor (Mathioudakis &
Koudas, SIGMOD 2010), which "discovers topic trends in tweets by detecting
bursts of tags or tag groups", and stresses that "unlike looking solely for
bursty tags, we detect shifts in tag correlations as they dynamically
arise".  The comparison benchmark needs working implementations of both the
burst-based detector and a plain popularity ranking, so they live here.
"""

from repro.baselines.popularity import PopularityBaseline
from repro.baselines.twitter_monitor import TwitterMonitorBaseline

__all__ = [
    "PopularityBaseline",
    "TwitterMonitorBaseline",
]
