"""TwitterMonitor-style baseline: bursty tags grouped by co-occurrence.

Mathioudakis & Koudas' TwitterMonitor first detects individual *bursty*
keywords and then groups co-occurring bursty keywords into trends.  This
baseline follows that two-step recipe over the same tag stream enBlogue
consumes:

1. per-tag windowed counts are monitored by a :class:`BurstDetector`
   (z-score against the tag's own history), and
2. at every evaluation the currently bursty tags are greedily grouped by
   their windowed co-occurrence, and each group (reported as its strongest
   pair, so the rankings are comparable to enBlogue's pair-based ones) is
   scored by the sum of its members' burst scores.

Because the trigger is single-tag burstiness, a correlation shift between a
steadily popular tag and a steadily rare tag — the Figure 1 situation —
produces no burst and is invisible to this baseline, which is precisely the
contrast the comparison benchmark measures.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.types import EmergentTopic, Ranking, TagPair
from repro.timeseries.bursts import BurstDetector, MeanDeviationBurstModel
from repro.windows.aggregates import TagFrequencyWindow


class TwitterMonitorBaseline:
    """Burst detection plus greedy co-occurrence grouping."""

    def __init__(
        self,
        window_horizon: float,
        evaluation_interval: float,
        top_k: int = 10,
        burst_threshold: float = 2.5,
        burst_history: int = 24,
        min_tag_count: int = 3,
    ):
        if window_horizon <= 0:
            raise ValueError("window_horizon must be positive")
        if evaluation_interval <= 0:
            raise ValueError("evaluation_interval must be positive")
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        self.window_horizon = float(window_horizon)
        self.evaluation_interval = float(evaluation_interval)
        self.top_k = int(top_k)
        self.min_tag_count = int(min_tag_count)
        self._tag_window = TagFrequencyWindow(window_horizon)
        self._pair_events: Deque[Tuple[float, Tuple[TagPair, ...]]] = deque()
        self._pair_counts: Counter = Counter()
        self._bursts = BurstDetector(
            MeanDeviationBurstModel(history=burst_history, threshold=burst_threshold)
        )
        self._rankings: List[Ranking] = []
        self._next_evaluation: Optional[float] = None
        self._evaluations = 0
        self._known_tags: Set[str] = set()

    # -- ingestion -----------------------------------------------------------

    def process(self, document) -> Optional[Ranking]:
        timestamp = float(getattr(document, "timestamp"))
        tags = sorted({str(t).lower() for t in getattr(document, "tags", ()) or ()})
        if self._next_evaluation is None:
            self._next_evaluation = timestamp + self.evaluation_interval
        ranking: Optional[Ranking] = None
        while timestamp >= self._next_evaluation:
            ranking = self._evaluate(self._next_evaluation)
            self._next_evaluation += self.evaluation_interval
        self._tag_window.add_document(timestamp, tags)
        pairs = tuple(
            TagPair(tags[i], tags[j])
            for i in range(len(tags))
            for j in range(i + 1, len(tags))
        )
        self._pair_events.append((timestamp, pairs))
        for pair in pairs:
            self._pair_counts[pair] += 1
        self._evict(timestamp)
        return ranking

    def process_many(self, documents: Iterable) -> List[Ranking]:
        produced = []
        for document in documents:
            ranking = self.process(document)
            if ranking is not None:
                produced.append(ranking)
        return produced

    def current_ranking(self) -> Optional[Ranking]:
        return self._rankings[-1] if self._rankings else None

    def ranking_history(self) -> List[Ranking]:
        return list(self._rankings)

    # -- evaluation ---------------------------------------------------------------

    def _evaluate(self, timestamp: float) -> Ranking:
        self._tag_window.advance_to(timestamp)
        self._advance_pairs(timestamp)
        # Step 1: which tags are bursting right now?  A tag that has never been
        # seen before implicitly had a count of zero at every past evaluation,
        # so its history is padded with zeros — this is what lets brand-new
        # keywords burst, exactly as in TwitterMonitor.
        snapshot = self._tag_window.snapshot()
        burst_scores: Dict[str, float] = {}
        for tag, count in snapshot.items():
            if count < self.min_tag_count:
                continue
            history = self._bursts.history(tag)
            missing = self._evaluations - len(history)
            if missing > 0:
                history = [0.0] * missing + history
            score = self._bursts.model.score(history, float(count))
            self._bursts.observe(tag, timestamp, float(count))
            self._known_tags.add(tag)
            if score >= self._bursts.model.threshold:
                burst_scores[tag] = score
        # Feed zero observations for known tags that vanished, so their
        # baselines decay instead of freezing at their last high value.
        for tag in self._known_tags:
            if tag not in snapshot:
                self._bursts.observe(tag, timestamp, 0.0)
        self._evaluations += 1
        # Step 2: group bursty tags by co-occurrence and report pairs.
        topics = self._group(burst_scores, timestamp)
        ranking = Ranking(timestamp=timestamp, topics=topics, label="twitter-monitor")
        self._rankings.append(ranking)
        return ranking

    def _group(self, burst_scores: Dict[str, float], timestamp: float) -> List[EmergentTopic]:
        bursty = sorted(burst_scores, key=lambda tag: -burst_scores[tag])
        used: Set[str] = set()
        topics: List[EmergentTopic] = []
        for tag in bursty:
            if tag in used:
                continue
            # The strongest co-occurring partner, preferring other bursty tags.
            best_partner: Optional[str] = None
            best_count = 0
            best_is_bursty = False
            for pair, count in self._pair_counts.items():
                if not pair.contains(tag) or count <= 0:
                    continue
                partner = pair.other(tag)
                partner_is_bursty = partner in burst_scores and partner not in used
                better = (partner_is_bursty, count) > (best_is_bursty, best_count)
                if better:
                    best_partner, best_count, best_is_bursty = partner, count, partner_is_bursty
            if best_partner is None:
                continue
            score = burst_scores[tag] + burst_scores.get(best_partner, 0.0)
            topics.append(EmergentTopic(
                pair=TagPair(tag, best_partner),
                score=score,
                correlation=float(best_count),
                seed_tag=tag,
                timestamp=timestamp,
            ))
            used.add(tag)
            if best_is_bursty:
                used.add(best_partner)
        topics.sort(key=lambda topic: (-topic.score, topic.pair))
        return topics[: self.top_k]

    # -- internals -------------------------------------------------------------------

    def _advance_pairs(self, now: float) -> None:
        cutoff = now - self.window_horizon
        while self._pair_events and self._pair_events[0][0] <= cutoff:
            _, pairs = self._pair_events.popleft()
            for pair in pairs:
                self._pair_counts[pair] -= 1
                if self._pair_counts[pair] <= 0:
                    del self._pair_counts[pair]

    def _evict(self, now: float) -> None:
        self._advance_pairs(now)
