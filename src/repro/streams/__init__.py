"""Push-based stream-processing substrate.

Section 4.1 of the paper: data is represented as tuples ``(timestamp,
docId, set of tags, set of entities)`` consumed by stream operators and
pushed along producer-consumer edges in query-processing plans; sinks at the
end of the operator DAG compute the final rankings.  The engine supports
multiple query plans executing in parallel with shared operators (sources,
sketching, entity tagging, statistics) for efficiency.

This package reproduces that architecture in Python: :class:`StreamItem` is
the tuple, :class:`Operator`/:class:`Sink` are the DAG nodes,
:class:`OperatorDAG` holds the producer-consumer edges, :class:`QueryPlan`
and :class:`PlanExecutor` build and run (possibly shared) plans, and the
sources replay datasets or simulate live feeds under a replay clock.
"""

from repro.streams.item import StreamItem
from repro.streams.clock import ReplayClock, SimulatedClock, SystemClock
from repro.streams.operators import (
    CollectorSink,
    FilterOperator,
    FunctionSink,
    MapOperator,
    Operator,
    Sink,
    StatisticsOperator,
    TagNormalizerOperator,
)
from repro.streams.dag import OperatorDAG
from repro.streams.synopses import SamplingOperator, SketchingOperator, ThrottleOperator
from repro.streams.sources import (
    DocumentStreamSource,
    IterableSource,
    MergedSource,
    Source,
)
from repro.streams.plan import PlanExecutor, QueryPlan

__all__ = [
    "StreamItem",
    "ReplayClock",
    "SimulatedClock",
    "SystemClock",
    "Operator",
    "Sink",
    "MapOperator",
    "FilterOperator",
    "TagNormalizerOperator",
    "StatisticsOperator",
    "CollectorSink",
    "FunctionSink",
    "SketchingOperator",
    "SamplingOperator",
    "ThrottleOperator",
    "OperatorDAG",
    "Source",
    "IterableSource",
    "DocumentStreamSource",
    "MergedSource",
    "QueryPlan",
    "PlanExecutor",
]
