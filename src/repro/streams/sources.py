"""Data-source wrappers.

"At the data source level, [the engine] consists of several wrappers that
either consume live streams or replay existing datasets for experiments."
A source is the root of an operator DAG: it produces time-ordered
:class:`StreamItem` tuples and pushes them into its consumers.  Replay is
pull-driven (``run()`` iterates the backing dataset) but everything
downstream of the source is push-based, matching the paper's architecture.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.streams.clock import SimulatedClock
from repro.streams.item import StreamItem
from repro.streams.operators import Operator


class Source(Operator):
    """Base class for stream sources."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self.clock = SimulatedClock()

    def push(self, item: StreamItem) -> None:
        raise TypeError("sources are roots of the DAG and cannot receive items")

    def push_batch(self, items) -> None:
        raise TypeError("sources are roots of the DAG and cannot receive items")

    def run(self, limit: Optional[int] = None,
            batch_size: Optional[int] = None) -> int:
        """Replay the backing stream, pushing items downstream.

        Returns the number of items emitted.  ``limit`` caps the emission
        count, which is convenient for incremental replays in tests and in
        the interactive examples.  With ``batch_size`` set, items are pushed
        as chunks of up to that many items through the DAG's batch protocol
        instead of one at a time.
        """
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        emitted = 0
        batch: List[StreamItem] = []
        for item in self.stream():
            if limit is not None and emitted >= limit:
                break
            self.clock.advance_to(max(self.clock.now(), item.timestamp))
            emitted += 1
            if batch_size is None:
                self.emit(item)
            else:
                batch.append(item)
                if len(batch) >= batch_size:
                    self.emit_batch(batch)
                    batch = []
        if batch:
            self.emit_batch(batch)
        if limit is None:
            self.flush()
        return emitted

    def stream(self) -> Iterator[StreamItem]:
        raise NotImplementedError


class IterableSource(Source):
    """Source backed by any iterable of pre-built stream items."""

    def __init__(
        self,
        items: Iterable[StreamItem],
        name: Optional[str] = None,
    ):
        super().__init__(name=name or "iterable-source")
        self._items = items

    def stream(self) -> Iterator[StreamItem]:
        previous: Optional[float] = None
        for item in self._items:
            if previous is not None and item.timestamp < previous:
                raise ValueError(
                    "source items must be ordered by timestamp: "
                    f"{item.timestamp} < {previous}"
                )
            previous = item.timestamp
            yield item


class DocumentStreamSource(Source):
    """Source that adapts dataset documents into stream items.

    ``documents`` can be any iterable of objects exposing ``timestamp``,
    ``doc_id``, ``tags``, ``text`` (the dataset generators in
    :mod:`repro.datasets` all do); ``adapter`` can override the default
    conversion.
    """

    def __init__(
        self,
        documents: Iterable,
        source_name: str = "",
        adapter: Optional[Callable[[object], StreamItem]] = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name or (source_name or "document-source"))
        self._documents = documents
        self._source_name = source_name
        self._adapter = adapter or self._default_adapter

    def _default_adapter(self, document: object) -> StreamItem:
        return StreamItem(
            timestamp=float(getattr(document, "timestamp")),
            doc_id=str(getattr(document, "doc_id")),
            tags=frozenset(getattr(document, "tags", ()) or ()),
            text=str(getattr(document, "text", "") or ""),
            source=self._source_name,
            metadata=dict(getattr(document, "metadata", {}) or {}),
        )

    def stream(self) -> Iterator[StreamItem]:
        previous: Optional[float] = None
        for document in self._documents:
            item = self._adapter(document)
            if previous is not None and item.timestamp < previous:
                raise ValueError(
                    "documents must be ordered by timestamp: "
                    f"{item.timestamp} < {previous}"
                )
            previous = item.timestamp
            yield item


class MergedSource(Source):
    """Merge several time-ordered sources into one time-ordered stream.

    Show case 2 consumes Twitter and several RSS feeds at once; the merged
    source interleaves them by timestamp so downstream operators see a single
    coherent stream.
    """

    def __init__(self, sources: Sequence[Source], name: Optional[str] = None):
        super().__init__(name=name or "merged-source")
        if not sources:
            raise ValueError("at least one source is required")
        self._sources = list(sources)

    def stream(self) -> Iterator[StreamItem]:
        iterators: List[Iterator[StreamItem]] = [s.stream() for s in self._sources]
        heap: List = []
        for index, iterator in enumerate(iterators):
            first = next(iterator, None)
            if first is not None:
                heapq.heappush(heap, (first.timestamp, index, first))
        while heap:
            _, index, item = heapq.heappop(heap)
            yield item
            nxt = next(iterators[index], None)
            if nxt is not None:
                heapq.heappush(heap, (nxt.timestamp, index, nxt))
