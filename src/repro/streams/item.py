"""The stream tuple: ``(timestamp, docId, set of tags, set of entities)``."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, FrozenSet, Iterable, Optional


@dataclass(frozen=True)
class StreamItem:
    """One document flowing through the operator DAG.

    ``tags`` are the editorial/user-assigned tags (NYT categories and
    descriptors, hashtags, feed categories); ``entities`` are named entities
    added by the entity-tagging operator.  ``text`` carries the raw content
    for operators that need it (e.g. the entity tagger, personalization
    keyword matching); ``metadata`` is a free-form channel for source- or
    operator-specific annotations.
    """

    timestamp: float
    doc_id: str
    tags: FrozenSet[str] = frozenset()
    entities: FrozenSet[str] = frozenset()
    text: str = ""
    source: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError("timestamp must be non-negative")
        if not self.doc_id:
            raise ValueError("doc_id must be non-empty")
        # Normalise tag containers handed in as lists/sets into frozensets so
        # items remain hashable and safely shareable between plans.
        object.__setattr__(self, "tags", frozenset(self.tags))
        object.__setattr__(self, "entities", frozenset(self.entities))

    @property
    def all_tags(self) -> FrozenSet[str]:
        """Union of regular tags and entity tags.

        The paper allows entity tags to be "handled independently of the
        regular tags, or alternatively combined with regular tags to detect
        tag/entity mixtures as emergent topics"; this property supports the
        combined mode.
        """
        return self.tags | self.entities

    def with_entities(self, entities: Iterable[str]) -> "StreamItem":
        """Copy of this item with ``entities`` added (used by the tagger)."""
        return replace(self, entities=self.entities | frozenset(entities))

    def with_tags(self, tags: Iterable[str]) -> "StreamItem":
        """Copy of this item with extra regular tags."""
        return replace(self, tags=self.tags | frozenset(tags))

    def with_metadata(self, **metadata: Any) -> "StreamItem":
        """Copy of this item with extra metadata entries."""
        merged = dict(self.metadata)
        merged.update(metadata)
        return replace(self, metadata=merged)
