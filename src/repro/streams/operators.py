"""Stream operators: the nodes of the push-based operator DAG.

Every operator consumes :class:`~repro.streams.item.StreamItem` tuples pushed
by its producers and pushes derived items to its consumers.  Sinks terminate
the DAG; the most important sink in enBlogue computes the emergent-topic
ranking and forwards it to the portal (see :mod:`repro.core.engine` and
:mod:`repro.portal`).

The DAG supports two push granularities.  ``push``/``emit`` move one item at
a time; ``push_batch``/``emit_batch`` move a time-ordered chunk through the
same ``process`` logic while paying the per-edge call overhead once per
chunk instead of once per item.  Batch-aware sinks (see
:class:`FunctionSink`) can exploit the chunk directly — the detection engine
feeds it to its batched ingestion path.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.types import normalize_tag
from repro.streams.item import StreamItem


class Operator:
    """Base class for DAG nodes that receive and forward stream items."""

    def __init__(self, name: Optional[str] = None):
        self.name = name or type(self).__name__
        self._consumers: List["Operator"] = []
        self._items_in = 0
        self._items_out = 0

    # -- wiring ---------------------------------------------------------

    def connect(self, consumer: "Operator") -> "Operator":
        """Add a producer-consumer edge from this operator to ``consumer``."""
        if consumer is self:
            raise ValueError("an operator cannot consume its own output")
        if consumer not in self._consumers:
            self._consumers.append(consumer)
        return consumer

    @property
    def consumers(self) -> List["Operator"]:
        return list(self._consumers)

    # -- push protocol ----------------------------------------------------

    def push(self, item: StreamItem) -> None:
        """Receive one item, process it and forward the results."""
        self._items_in += 1
        for result in self.process(item):
            self.emit(result)

    def push_batch(self, items: Sequence[StreamItem]) -> None:
        """Receive a time-ordered chunk, process it and forward one chunk."""
        self._items_in += len(items)
        results: List[StreamItem] = []
        for item in items:
            results.extend(self.process(item))
        self.emit_batch(results)

    def process(self, item: StreamItem) -> Iterable[StreamItem]:
        """Transform one input item into zero or more output items."""
        return (item,)

    def emit(self, item: StreamItem) -> None:
        """Push ``item`` to every downstream consumer."""
        self._items_out += 1
        for consumer in self._consumers:
            consumer.push(item)

    def emit_batch(self, items: Sequence[StreamItem]) -> None:
        """Push a chunk of items to every downstream consumer."""
        if not items:
            return
        self._items_out += len(items)
        for consumer in self._consumers:
            consumer.push_batch(items)

    def flush(self) -> None:
        """Signal end-of-stream; propagated through the DAG."""
        for consumer in self._consumers:
            consumer.flush()

    # -- instrumentation --------------------------------------------------

    @property
    def items_in(self) -> int:
        return self._items_in

    @property
    def items_out(self) -> int:
        return self._items_out

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.name!r}>"


class Sink(Operator):
    """Terminal operator: consumes items without forwarding them."""

    def push(self, item: StreamItem) -> None:
        self._items_in += 1
        self.consume(item)

    def push_batch(self, items: Sequence[StreamItem]) -> None:
        self._items_in += len(items)
        self.consume_batch(items)

    def consume(self, item: StreamItem) -> None:
        raise NotImplementedError

    def consume_batch(self, items: Sequence[StreamItem]) -> None:
        """Consume a chunk; sinks with a batched backend should override."""
        for item in items:
            self.consume(item)

    def connect(self, consumer: "Operator") -> "Operator":
        raise TypeError("sinks terminate the DAG and cannot have consumers")

    def flush(self) -> None:
        """Sinks may override to finalise their state at end-of-stream."""


class MapOperator(Operator):
    """Apply a pure function ``StreamItem -> StreamItem`` to every item."""

    def __init__(
        self,
        function: Callable[[StreamItem], StreamItem],
        name: Optional[str] = None,
    ):
        super().__init__(name=name or f"map({getattr(function, '__name__', 'fn')})")
        self._function = function

    def process(self, item: StreamItem) -> Iterable[StreamItem]:
        return (self._function(item),)


class FilterOperator(Operator):
    """Forward only the items for which ``predicate`` holds."""

    def __init__(
        self,
        predicate: Callable[[StreamItem], bool],
        name: Optional[str] = None,
    ):
        super().__init__(name=name or f"filter({getattr(predicate, '__name__', 'fn')})")
        self._predicate = predicate
        self._dropped = 0

    @property
    def dropped(self) -> int:
        return self._dropped

    def process(self, item: StreamItem) -> Iterable[StreamItem]:
        if self._predicate(item):
            return (item,)
        self._dropped += 1
        return ()


class TagNormalizerOperator(Operator):
    """Lower-case and strip tags, dropping empty ones.

    Data sources use inconsistent capitalisation (NYT descriptors are
    upper-case, hashtags are mixed case); normalising early keeps the
    correlation tracker from splitting one topic across spellings.
    """

    def process(self, item: StreamItem) -> Iterable[StreamItem]:
        normalized = {normalize_tag(tag) for tag in item.tags}
        normalized.discard("")
        if normalized == item.tags:
            return (item,)
        return (
            StreamItem(
                timestamp=item.timestamp,
                doc_id=item.doc_id,
                tags=frozenset(normalized),
                entities=item.entities,
                text=item.text,
                source=item.source,
                metadata=item.metadata,
            ),
        )


class StatisticsOperator(Operator):
    """Pass-through operator gathering simple stream statistics.

    The paper lists "statistics operators" among the shareable plug-ins; this
    one counts documents, distinct tags and tags per document, which the
    throughput benchmark and the portal status page both read.
    """

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name or "statistics")
        self.documents = 0
        self.tag_occurrences = 0
        self._distinct_tags: set = set()
        self.first_timestamp: Optional[float] = None
        self.last_timestamp: Optional[float] = None

    def process(self, item: StreamItem) -> Iterable[StreamItem]:
        self.documents += 1
        self.tag_occurrences += len(item.tags)
        self._distinct_tags.update(item.tags)
        if self.first_timestamp is None:
            self.first_timestamp = item.timestamp
        self.last_timestamp = item.timestamp
        return (item,)

    @property
    def distinct_tags(self) -> int:
        return len(self._distinct_tags)

    @property
    def mean_tags_per_document(self) -> float:
        if self.documents == 0:
            return 0.0
        return self.tag_occurrences / self.documents

    def summary(self) -> Dict[str, Any]:
        """A snapshot of the collected statistics."""
        return {
            "documents": self.documents,
            "distinct_tags": self.distinct_tags,
            "mean_tags_per_document": self.mean_tags_per_document,
            "first_timestamp": self.first_timestamp,
            "last_timestamp": self.last_timestamp,
        }


class CollectorSink(Sink):
    """Sink that stores every received item (tests, examples, small replays)."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name or "collector")
        self.items: List[StreamItem] = []

    def consume(self, item: StreamItem) -> None:
        self.items.append(item)


class FunctionSink(Sink):
    """Sink that hands every item to a callback (e.g. the detection engine).

    ``batch_callback`` receives whole chunks pushed via the batch protocol;
    without it, chunks fall back to one ``callback`` call per item.
    """

    def __init__(
        self,
        callback: Callable[[StreamItem], None],
        name: Optional[str] = None,
        on_flush: Optional[Callable[[], None]] = None,
        batch_callback: Optional[Callable[[Sequence[StreamItem]], None]] = None,
    ):
        super().__init__(name=name or "callback-sink")
        self._callback = callback
        self._on_flush = on_flush
        self._batch_callback = batch_callback

    def consume(self, item: StreamItem) -> None:
        self._callback(item)

    def consume_batch(self, items: Sequence[StreamItem]) -> None:
        if self._batch_callback is not None:
            self._batch_callback(items)
        else:
            super().consume_batch(items)

    def flush(self) -> None:
        if self._on_flush is not None:
            self._on_flush()
