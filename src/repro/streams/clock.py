"""Clocks driving the stream engine.

The demo runs either on live data (wall-clock time) or replays archived
datasets in "time lapse" mode, where archive time advances much faster than
wall-clock time.  The clock abstraction lets every other component ask
"what time is it in stream time?" without caring which mode is active.
"""

from __future__ import annotations

import time
from typing import Optional


class Clock:
    """Interface: the current stream time in seconds."""

    def now(self) -> float:
        raise NotImplementedError


class SystemClock(Clock):
    """Wall-clock time, for live monitoring."""

    def now(self) -> float:
        return time.time()


class SimulatedClock(Clock):
    """A clock advanced explicitly by the replay driver."""

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError("start time must be non-negative")
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance_to(self, timestamp: float) -> None:
        if timestamp < self._now:
            raise ValueError(
                f"cannot move the clock backwards: {timestamp} < {self._now}"
            )
        self._now = float(timestamp)

    def advance_by(self, delta: float) -> None:
        if delta < 0:
            raise ValueError("delta must be non-negative")
        self._now += delta


class ReplayClock(Clock):
    """Maps wall-clock time onto archive time with a speed-up factor.

    ``speedup`` of 86400 replays one archive day per wall-clock second, which
    is the "time lapse" view of show cases 1 and 2.  For deterministic tests
    a wall-clock function can be injected.
    """

    def __init__(
        self,
        archive_start: float,
        speedup: float = 1.0,
        wall_clock: Optional[Clock] = None,
    ):
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        self.archive_start = float(archive_start)
        self.speedup = float(speedup)
        self._wall = wall_clock or SystemClock()
        self._wall_start = self._wall.now()

    def now(self) -> float:
        elapsed = self._wall.now() - self._wall_start
        return self.archive_start + elapsed * self.speedup

    def wall_delay_until(self, archive_timestamp: float) -> float:
        """Wall-clock seconds until the archive reaches ``archive_timestamp``."""
        remaining = archive_timestamp - self.now()
        return max(0.0, remaining / self.speedup)
