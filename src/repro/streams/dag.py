"""The operator DAG: producer-consumer edges plus operator sharing.

The paper stresses that "overlapping parts, like data sources, sketching
operators, entity tagging, and statistics operators are shared for
efficiency" when several query plans run in parallel.  The DAG therefore
keeps a registry of shareable operators keyed by a caller-chosen name: a
plan that asks for an operator under an existing key is handed the existing
instance instead of a new one, and both plans' edges fan out from it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.streams.operators import Operator, Sink


class OperatorDAG:
    """A directed acyclic graph of stream operators."""

    def __init__(self, name: str = "dag"):
        self.name = name
        self._operators: List[Operator] = []
        self._shared: Dict[str, Operator] = {}
        self._edges: List[Tuple[Operator, Operator]] = []

    # -- node management --------------------------------------------------

    def add(self, operator: Operator) -> Operator:
        """Register an operator (idempotent)."""
        if operator not in self._operators:
            self._operators.append(operator)
        return operator

    def shared(self, key: str, factory: Callable[[], Operator]) -> Operator:
        """Return the shared operator for ``key``, creating it on first use."""
        if key not in self._shared:
            operator = factory()
            self._shared[key] = operator
            self.add(operator)
        return self._shared[key]

    def is_shared(self, operator: Operator) -> bool:
        return operator in self._shared.values()

    @property
    def operators(self) -> List[Operator]:
        return list(self._operators)

    @property
    def shared_keys(self) -> List[str]:
        return list(self._shared)

    # -- edge management ---------------------------------------------------

    def connect(self, producer: Operator, consumer: Operator) -> None:
        """Create a producer-consumer edge and reject cycles."""
        self.add(producer)
        self.add(consumer)
        if (producer, consumer) in self._edges:
            return
        if self._creates_cycle(producer, consumer):
            raise ValueError(
                f"edge {producer.name} -> {consumer.name} would create a cycle"
            )
        producer.connect(consumer)
        self._edges.append((producer, consumer))

    def chain(self, *operators: Operator) -> Operator:
        """Connect operators in sequence and return the last one."""
        if not operators:
            raise ValueError("chain requires at least one operator")
        for producer, consumer in zip(operators, operators[1:]):
            self.connect(producer, consumer)
        if len(operators) == 1:
            self.add(operators[0])
        return operators[-1]

    @property
    def edges(self) -> List[Tuple[Operator, Operator]]:
        return list(self._edges)

    # -- structure queries -------------------------------------------------

    def sources(self) -> List[Operator]:
        """Operators with no incoming edge."""
        consumers = {consumer for _, consumer in self._edges}
        return [op for op in self._operators if op not in consumers]

    def sinks(self) -> List[Sink]:
        """Registered operators that are sinks."""
        return [op for op in self._operators if isinstance(op, Sink)]

    def topological_order(self) -> List[Operator]:
        """Operators in a valid processing order (sources first)."""
        indegree: Dict[Operator, int] = {op: 0 for op in self._operators}
        for _, consumer in self._edges:
            indegree[consumer] += 1
        frontier = [op for op, degree in indegree.items() if degree == 0]
        order: List[Operator] = []
        remaining = dict(indegree)
        while frontier:
            node = frontier.pop()
            order.append(node)
            for producer, consumer in self._edges:
                if producer is node:
                    remaining[consumer] -= 1
                    if remaining[consumer] == 0:
                        frontier.append(consumer)
        if len(order) != len(self._operators):
            raise ValueError("the operator graph contains a cycle")
        return order

    def _creates_cycle(self, producer: Operator, consumer: Operator) -> bool:
        """True if adding producer->consumer makes consumer reach producer."""
        if producer is consumer:
            return True
        visited: Set[int] = set()
        stack = [consumer]
        adjacency: Dict[Operator, List[Operator]] = {}
        for src, dst in self._edges:
            adjacency.setdefault(src, []).append(dst)
        while stack:
            node = stack.pop()
            if node is producer:
                return True
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.extend(adjacency.get(node, []))
        return False

    def describe(self) -> str:
        """Human-readable description of the DAG (used by examples)."""
        lines = [f"DAG {self.name!r}: {len(self._operators)} operators, "
                 f"{len(self._edges)} edges, {len(self._shared)} shared"]
        for producer, consumer in self._edges:
            shared = " [shared]" if self.is_shared(producer) else ""
            lines.append(f"  {producer.name}{shared} -> {consumer.name}")
        return "\n".join(lines)
