"""Synopsis operators: sketching and sampling plug-ins for the operator DAG.

Section 4.1 lists "plug-in options for sketching operators that map stream
items into synopses" among the shareable operators of the engine.  These
operators pass every item through unchanged (so they can sit anywhere in a
plan) while maintaining a compact summary of the stream that other
components — monitoring dashboards, approximate seed selection, load
shedding decisions — can read at any time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.sketches.countmin import WindowedCountMinSketch
from repro.sketches.sampling import ReservoirSample
from repro.streams.item import StreamItem
from repro.streams.operators import Operator


class SketchingOperator(Operator):
    """Maintain approximate windowed tag counts with a Count-Min sketch.

    The operator is a drop-in, approximate replacement for the exact
    windowed tag statistics: downstream consumers can ask for the estimated
    count of any tag (or of a tag pair, counted under a joined key) without
    the engine having to keep exact per-tag state for the full vocabulary.
    """

    def __init__(
        self,
        horizon: float,
        panes: int = 8,
        width: int = 1024,
        depth: int = 4,
        track_pairs: bool = False,
        name: Optional[str] = None,
    ):
        super().__init__(name=name or "sketching")
        self._tags = WindowedCountMinSketch(
            horizon=horizon, panes=panes, width=width, depth=depth)
        self._pairs = (
            WindowedCountMinSketch(horizon=horizon, panes=panes, width=width, depth=depth)
            if track_pairs else None
        )
        self.track_pairs = track_pairs
        self.items_sketched = 0

    @staticmethod
    def pair_key(tag_a: str, tag_b: str) -> str:
        """Canonical sketch key for a tag pair."""
        first, second = sorted((tag_a, tag_b))
        return f"{first}␟{second}"

    def process(self, item: StreamItem) -> Iterable[StreamItem]:
        tags = sorted(item.all_tags)
        for tag in tags:
            self._tags.add(item.timestamp, tag)
        if self._pairs is not None:
            for i in range(len(tags)):
                for j in range(i + 1, len(tags)):
                    self._pairs.add(item.timestamp, self.pair_key(tags[i], tags[j]))
        self.items_sketched += 1
        return (item,)

    def estimate(self, tag: str) -> int:
        """Approximate number of windowed documents carrying ``tag``."""
        return self._tags.estimate(tag)

    def estimate_pair(self, tag_a: str, tag_b: str) -> int:
        """Approximate windowed co-occurrence count of a pair."""
        if self._pairs is None:
            raise RuntimeError("pair tracking was not enabled for this operator")
        return self._pairs.estimate(self.pair_key(tag_a, tag_b))

    def heavy_hitters(self, candidates: Iterable[str], threshold: int) -> List[Tuple[str, int]]:
        """Candidates whose estimated count reaches ``threshold``, best first."""
        hits = [
            (tag, self._tags.estimate(tag))
            for tag in candidates
        ]
        hits = [(tag, count) for tag, count in hits if count >= threshold]
        hits.sort(key=lambda item: (-item[1], item[0]))
        return hits


class SamplingOperator(Operator):
    """Maintain a uniform reservoir sample of the stream.

    Useful for inspection panels ("show me a few recent example documents")
    and for estimating document-level statistics without storing the stream.
    """

    def __init__(self, capacity: int = 256, seed: Optional[int] = 0,
                 name: Optional[str] = None):
        super().__init__(name=name or "sampling")
        self._sample: ReservoirSample[StreamItem] = ReservoirSample(capacity, seed=seed)

    def process(self, item: StreamItem) -> Iterable[StreamItem]:
        self._sample.add(item)
        return (item,)

    @property
    def seen(self) -> int:
        return self._sample.seen

    def sample(self) -> List[StreamItem]:
        """A copy of the current sample."""
        return self._sample.items()

    def sample_with_tag(self, tag: str) -> List[StreamItem]:
        """Sampled documents carrying ``tag``."""
        return [item for item in self._sample.items() if tag in item.all_tags]

    def estimated_tag_fraction(self, tag: str) -> float:
        """Estimated fraction of stream documents carrying ``tag``."""
        items = self._sample.items()
        if not items:
            return 0.0
        return sum(1 for item in items if tag in item.all_tags) / len(items)


class ThrottleOperator(Operator):
    """Deterministic load shedding: forward every ``keep_one_in``-th item.

    A simple stand-in for the load-shedding knobs a production stream engine
    needs when the input rate exceeds what downstream operators sustain.
    Shedding is per-operator-instance and deterministic, so replays remain
    reproducible.
    """

    def __init__(self, keep_one_in: int, name: Optional[str] = None):
        super().__init__(name=name or f"throttle(1/{keep_one_in})")
        if keep_one_in < 1:
            raise ValueError("keep_one_in must be at least 1")
        self.keep_one_in = int(keep_one_in)
        self._counter = 0
        self.shed = 0

    def process(self, item: StreamItem) -> Iterable[StreamItem]:
        self._counter += 1
        if (self._counter - 1) % self.keep_one_in == 0:
            return (item,)
        self.shed += 1
        return ()
