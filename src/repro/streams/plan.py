"""Query plans and the multi-plan executor.

A query plan is one path from a source through (possibly shared) operators
to a sink.  The executor runs several plans "in parallel" over the same
replayed stream: because the engine is push-based, running in parallel
simply means that shared upstream operators fan out to every plan's private
operators, so each document is processed once by the shared prefix and once
per plan by the plan-specific suffix.  This is what lets the demo "compare
emergent topic rankings obtained from different parameter settings in
real-time" (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.streams.dag import OperatorDAG
from repro.streams.operators import Operator, Sink
from repro.streams.sources import Source


@dataclass
class QueryPlan:
    """A named pipeline: source -> operators -> sink."""

    name: str
    source: Source
    operators: Sequence[Operator] = field(default_factory=tuple)
    sink: Optional[Sink] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a query plan needs a name")
        self.operators = tuple(self.operators)

    def nodes(self) -> List[Operator]:
        """All nodes of the plan in processing order."""
        nodes: List[Operator] = [self.source, *self.operators]
        if self.sink is not None:
            nodes.append(self.sink)
        return nodes


class PlanExecutor:
    """Builds one shared DAG out of several query plans and replays it."""

    def __init__(self, dag: Optional[OperatorDAG] = None):
        self.dag = dag or OperatorDAG(name="executor")
        self._plans: Dict[str, QueryPlan] = {}

    @property
    def plans(self) -> List[QueryPlan]:
        return list(self._plans.values())

    def register(self, plan: QueryPlan) -> QueryPlan:
        """Wire a plan into the shared DAG.

        Operators already present in the DAG (typically shared ones obtained
        via :meth:`OperatorDAG.shared`) are reused; edges are added only where
        missing, so registering two plans with a common prefix results in a
        single shared prefix with two fan-out branches.
        """
        if plan.name in self._plans:
            raise ValueError(f"a plan named {plan.name!r} is already registered")
        nodes = plan.nodes()
        if len(nodes) < 2:
            raise ValueError("a plan needs at least a source and one more node")
        for producer, consumer in zip(nodes, nodes[1:]):
            self.dag.connect(producer, consumer)
        self._plans[plan.name] = plan
        return plan

    def shared_operator(self, key: str, factory: Callable[[], Operator]) -> Operator:
        """Convenience pass-through to the DAG's shared-operator registry."""
        return self.dag.shared(key, factory)

    def run(self, limit: Optional[int] = None,
            batch_size: Optional[int] = None) -> int:
        """Replay every distinct source once, pushing through all plans.

        Returns the total number of items emitted by the sources.  Plans
        sharing a source are fed by a single replay of that source, which is
        precisely the efficiency argument of the paper.  ``batch_size``
        switches the replay to the DAG's batch protocol: sources push chunks
        of up to that many items, and batch-aware sinks (e.g. the engine's)
        ingest them through their batched path.
        """
        if not self._plans:
            raise ValueError("no plans registered")
        distinct_sources: List[Source] = []
        for plan in self._plans.values():
            if plan.source not in distinct_sources:
                distinct_sources.append(plan.source)
        emitted = 0
        for source in distinct_sources:
            emitted += source.run(limit=limit, batch_size=batch_size)
        return emitted

    def describe(self) -> str:
        lines = [f"executor with {len(self._plans)} plan(s)"]
        for plan in self._plans.values():
            chain = " -> ".join(node.name for node in plan.nodes())
            lines.append(f"  plan {plan.name!r}: {chain}")
        lines.append(self.dag.describe())
        return "\n".join(lines)
