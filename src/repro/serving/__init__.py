"""The async serving layer: live ingestion, ranking push, checkpointing.

The paper's premise is *live* emergent-topic detection — a ranking is
only useful while the shift is happening — and this package is what turns
the batch-replay engines into a servable system:

* :class:`~repro.serving.service.DetectionService` — a bounded ingest
  queue with backpressure, one consumer task draining micro-batches into
  ``process_batch`` on a single-thread executor (the event loop never
  blocks on the process backend), rankings published through the portal's
  :class:`~repro.portal.push.PushDispatcher`, and an optional
  :class:`~repro.persistence.cadence.CheckpointCadence` persisting the
  engine between batches (delta mode rides the loop at journal-segment
  cost).
* :class:`~repro.serving.broadcast.AsyncFanout` /
  :class:`~repro.serving.broadcast.Subscription` — per-subscriber bounded
  frame buffers bridging dispatcher pushes to awaiting SSE/websocket
  handlers (slow consumers drop oldest frames, never grow without bound).
* :class:`~repro.serving.http.RankingServer` — ``POST /ingest``,
  ``GET /rankings``, ``GET /rankings/stream`` (SSE), ``GET /status``
  (with per-shard health; 503 when a shard worker is dead),
  ``GET /metrics`` (Prometheus text) and ``GET /trace`` (NDJSON span
  trees) on asyncio's stdlib primitives.
* :mod:`~repro.serving.source` — pumps bridging the synchronous dataset
  ``iter_batches``/stream :class:`~repro.streams.sources.Source` iterators
  into the queue, pacing the producer by the queue's bound.

The serving path replays the exact batch sequence through the same
``process_batch`` the CLI uses, so served rankings are bit-identical to
an offline replay of the same stream — pinned by ``tests/serving``.
Reach it from the command line via ``python -m repro.cli serve``.
"""

from repro.serving.broadcast import AsyncFanout, Subscription
from repro.serving.http import IngestDocument, RankingServer, parse_ingest_body
from repro.serving.service import (
    DetectionService,
    ServiceClosedError,
    ServingStats,
)
from repro.serving.source import (
    SourceProducerError,
    pump_batches,
    pump_documents,
    pump_source,
)

__all__ = [
    "AsyncFanout",
    "Subscription",
    "DetectionService",
    "ServiceClosedError",
    "ServingStats",
    "SourceProducerError",
    "RankingServer",
    "IngestDocument",
    "parse_ingest_body",
    "pump_batches",
    "pump_documents",
    "pump_source",
]
