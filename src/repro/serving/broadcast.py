"""Async fan-out of ranking pushes to SSE/websocket subscribers.

The portal's :class:`~repro.portal.push.PushDispatcher` delivers messages
by synchronous callback at publish time.  The serving layer publishes on
it from the event-loop thread, and this module bridges those pushes into
per-subscriber asyncio queues so any number of SSE connections can await
frames concurrently.

Backpressure on the subscriber side is *lossy by design*: a ranking
stream is a sequence of full snapshots, so a slow consumer does not need
every intermediate frame — its buffer is bounded and the oldest frame is
dropped (and counted) when a new one arrives over a full buffer.  This is
the opposite of the ingest side, where the bounded queue blocks producers
instead of dropping documents.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import AsyncIterator, Dict, List, Optional

from repro.portal.push import PushMessage

#: Default per-subscriber frame buffer (frames, not bytes).
DEFAULT_BUFFER_LIMIT = 64


class Subscription:
    """One subscriber's bounded frame buffer, awaitable from the loop.

    Obtain via :meth:`AsyncFanout.subscribe`; consume with
    :meth:`next_message` (``None`` marks the end of the stream) or by
    async iteration.  ``dropped`` counts frames discarded because the
    consumer fell more than ``buffer_limit`` frames behind.
    """

    def __init__(self, subscriber_id: str, buffer_limit: int):
        if buffer_limit < 1:
            raise ValueError("buffer_limit must be at least 1")
        self.subscriber_id = subscriber_id
        self.buffer_limit = int(buffer_limit)
        self.dropped = 0
        # The bound is enforced in deliver() rather than by the queue's
        # maxsize, so the close sentinel always fits without evicting a
        # frame the consumer is still entitled to.
        self._queue: asyncio.Queue = asyncio.Queue()
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def pending(self) -> int:
        """Frames currently buffered (bounded by ``buffer_limit``)."""
        return self._queue.qsize() - (1 if self._closed else 0)

    def deliver(self, message: PushMessage) -> bool:
        """Buffer one frame, dropping the oldest when the buffer is full.

        Returns whether an older frame was evicted to make room (the
        fan-out counts these as dropped-frame metric events).
        """
        if self._closed:
            return False
        evicted = False
        if self._queue.qsize() >= self.buffer_limit:
            try:
                self._queue.get_nowait()
                self.dropped += 1
                evicted = True
            except asyncio.QueueEmpty:  # pragma: no cover - tiny race
                pass
        self._queue.put_nowait(message)
        return evicted

    def close(self) -> None:
        """End the stream: consumers see ``None`` after the buffered frames."""
        if self._closed:
            return
        self._closed = True
        self._queue.put_nowait(None)

    async def next_message(self) -> Optional[PushMessage]:
        """The next buffered frame, or ``None`` once the stream ended."""
        message = await self._queue.get()
        if message is None:
            # Keep the sentinel visible to any further next_message call.
            self._queue.put_nowait(None)
            return None
        return message

    def __aiter__(self) -> AsyncIterator[PushMessage]:
        return self

    async def __anext__(self) -> PushMessage:
        message = await self.next_message()
        if message is None:
            raise StopAsyncIteration
        return message


class AsyncFanout:
    """Bridges one dispatcher channel into per-subscriber asyncio queues.

    Registers itself as an ordinary subscriber on the channel, so it
    composes with the portal's synchronous sessions: both see every
    publish.  All methods must run on the event-loop thread (the serving
    layer publishes from there; engine work happens in an executor and
    never touches the fan-out directly).
    """

    def __init__(self, dispatcher, channel: str,
                 buffer_limit: int = DEFAULT_BUFFER_LIMIT,
                 observability=None):
        self.dispatcher = dispatcher
        self.channel = channel
        self.buffer_limit = int(buffer_limit)
        self._subscriptions: Dict[str, Subscription] = {}
        self._ids = itertools.count()
        self._closed = False
        # Fan-out metrics (None when no enabled bundle was handed over):
        # frames delivered, frames evicted off full buffers, open
        # subscriptions as a live gauge.
        self._observability = observability
        if observability is not None and observability.enabled:
            registry = observability.registry
            self._metric_frames = registry.counter(
                "repro_serving_sse_frames_total")
            self._metric_dropped = registry.counter(
                "repro_serving_sse_dropped_frames_total")
            registry.gauge("repro_serving_subscribers") \
                .set_function(self.subscriber_count)
        else:
            self._metric_frames = None
            self._metric_dropped = None
        dispatcher.subscribe(channel, f"async-fanout[{channel}]", self._deliver)

    @property
    def closed(self) -> bool:
        return self._closed

    def subscriber_count(self) -> int:
        return len(self._subscriptions)

    def subscribe(self, subscriber_id: Optional[str] = None,
                  buffer_limit: Optional[int] = None) -> Subscription:
        """Open a new bounded subscription (fails after :meth:`close`)."""
        if self._closed:
            raise RuntimeError(
                f"cannot subscribe to channel {self.channel!r}: "
                f"the fan-out is closed"
            )
        if subscriber_id is None:
            subscriber_id = f"subscriber-{next(self._ids)}"
        if subscriber_id in self._subscriptions:
            raise ValueError(f"subscriber {subscriber_id!r} already exists")
        subscription = Subscription(
            subscriber_id, buffer_limit or self.buffer_limit
        )
        self._subscriptions[subscriber_id] = subscription
        self._log_event("sse_subscribe", subscriber=subscriber_id)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Close one subscription and stop delivering to it (idempotent)."""
        removed = self._subscriptions.pop(subscription.subscriber_id, None)
        subscription.close()
        if removed is not None:
            self._log_event(
                "sse_unsubscribe",
                subscriber=subscription.subscriber_id,
                dropped=subscription.dropped,
            )

    def _log_event(self, event: str, **fields) -> None:
        observability = self._observability
        if observability is not None:
            observability.log.emit(event, subscribers=self.subscriber_count(),
                                   **fields)

    def close(self) -> None:
        """End every subscription's stream (idempotent).

        Buffered frames stay readable; the ``None`` sentinel follows them.
        The dispatcher channel itself is left to its owner.
        """
        if self._closed:
            return
        self._closed = True
        ended = len(self._subscriptions)
        for subscription in list(self._subscriptions.values()):
            subscription.close()
        self._subscriptions.clear()
        self._log_event("sse_close", ended=ended)

    def _deliver(self, message: PushMessage) -> None:
        subscriptions = list(self._subscriptions.values())
        if self._metric_frames is None:
            for subscription in subscriptions:
                subscription.deliver(message)
            return
        if not subscriptions:
            # Nothing to deliver: skip the span so idle publishes don't
            # crowd batch traces out of the bounded trace ring.
            return
        delivered = 0
        dropped = 0
        with self._observability.tracer.span("sse_fanout") as span:
            for subscription in subscriptions:
                if subscription.deliver(message):
                    dropped += 1
                delivered += 1
            span.set(subscribers=delivered, dropped=dropped)
        if delivered:
            self._metric_frames.inc(delivered)
        if dropped:
            self._metric_dropped.inc(dropped)
