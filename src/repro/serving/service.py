"""The asyncio serving core: bounded ingest, one consumer, ranking push.

:class:`DetectionService` wraps a detection engine (single or sharded)
behind an event loop:

* **Ingest** is a bounded :class:`asyncio.Queue` of document batches.
  ``await submit(batch)`` blocks the producer when shard dispatch falls
  behind — backpressure, not buffering without bound.
* **One consumer task** drains batches into ``engine.process_batch`` via a
  single-thread executor, so the loop never blocks on the process backend
  and the engine is only ever touched from that one worker thread (the
  engines are not thread-safe; serialization through the executor is the
  whole synchronisation story).
* **Ranking push**: every ranking a batch produces is published on the
  portal's :class:`~repro.portal.push.PushDispatcher` (the same channel
  the synchronous portal sessions use) and fanned out to async
  subscribers through :class:`~repro.serving.broadcast.AsyncFanout` —
  SSE/websocket handlers just await frames.
* **Checkpointing** rides the same loop: a
  :class:`~repro.persistence.cadence.CheckpointCadence` (typically delta
  mode) runs on the engine executor between batches, so a snapshot never
  observes a half-ingested batch and ingestion keeps accepting documents
  (into the queue) while the journal segment fsyncs.

Because the consumer replays the exact batch sequence through the same
``process_batch`` the offline CLI uses, the rankings pushed to
subscribers are **bit-identical** to a batch replay of the same document
stream — the property the serving test-suite pins for shards 1/2 on both
backends.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

from repro.observability import Observability
from repro.persistence.cadence import CheckpointCadence
from repro.portal.push import PushDispatcher
from repro.sharding.backends import ShardExecutionError
from repro.portal.server import GLOBAL_CHANNEL
from repro.serving.broadcast import (
    DEFAULT_BUFFER_LIMIT,
    AsyncFanout,
    Subscription,
)

#: Default bound of the ingest queue, in batches (not documents): small
#: enough that a stalled shard backend pushes back on producers within a
#: few chunks, large enough to keep the consumer busy between awaits.
DEFAULT_QUEUE_CAPACITY = 8


class ServiceClosedError(RuntimeError):
    """Submit after ``stop()``: the batch could never reach a shard."""


class ServingStats:
    """Operational counters, updated on the event-loop thread.

    The counters live in a metrics registry, so ``GET /status`` (which
    reads these attributes) and ``GET /metrics`` (which scrapes the
    registry) can never disagree — there is one set of numbers.  Reads
    keep the old dataclass surface (``stats.rankings_published`` is an
    ``int``); writes go through :meth:`add`/:meth:`set`/:meth:`set_max`.
    Restored registries carry these forward, so a resumed server's
    counters continue monotonically.
    """

    #: Attribute name → counter family backing it.
    _COUNTERS = {
        "documents_submitted": "repro_serving_documents_submitted_total",
        "batches_submitted": "repro_serving_batches_submitted_total",
        "documents_processed": "repro_serving_documents_processed_total",
        "batches_processed": "repro_serving_batches_processed_total",
        "rankings_published": "repro_serving_rankings_published_total",
        "batch_errors": "repro_serving_batch_errors_total",
        "publish_errors": "repro_serving_publish_errors_total",
        "source_errors": "repro_serving_source_errors_total",
        "source_retries": "repro_serving_source_retries_total",
    }

    #: Attribute name → gauge family backing it (absolute values).
    _GAUGES = {
        "checkpoints_written": "repro_serving_checkpoints_written",
        "queue_high_watermark": "repro_serving_queue_high_watermark",
    }

    def __init__(self, registry=None):
        if registry is None:
            registry = Observability().registry
        self._counters = {
            attr: registry.counter(name)
            for attr, name in self._COUNTERS.items()
        }
        self._gauges = {
            attr: registry.gauge(name)
            for attr, name in self._GAUGES.items()
        }
        self.last_error: Optional[str] = None

    def add(self, name: str, amount: int = 1) -> None:
        self._counters[name].inc(amount)

    def set(self, name: str, value: int) -> None:
        self._gauges[name].set(value)

    def set_max(self, name: str, value: int) -> None:
        self._gauges[name].set_max(value)

    def __getattr__(self, name: str):
        # Only reached when normal lookup fails — i.e. for the metric-
        # backed read-only attributes; plain fields (last_error) and the
        # metric dicts resolve before this.
        counters = self.__dict__.get("_counters") or {}
        if name in counters:
            return int(counters[name].value)
        gauges = self.__dict__.get("_gauges") or {}
        if name in gauges:
            return int(gauges[name].value)
        raise AttributeError(name)

    def as_dict(self) -> dict:
        payload = {attr: int(child.value)
                   for attr, child in self._counters.items()}
        payload.update(
            (attr, int(child.value)) for attr, child in self._gauges.items()
        )
        payload["last_error"] = self.last_error
        return payload


class DetectionService:
    """Non-blocking front end over a detection engine (see module docs).

    ``cadence`` persists the engine on the ranking cadence it describes
    (its writes run on the engine executor, between batches).  The
    service owns neither the engine nor a passed-in dispatcher: ``stop``
    quiesces the service and closes what it created (executor, fan-out,
    its own dispatcher), while the engine is the caller's to close —
    typically after a final checkpoint.
    """

    def __init__(
        self,
        engine,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        dispatcher: Optional[PushDispatcher] = None,
        channel: str = GLOBAL_CHANNEL,
        buffer_limit: int = DEFAULT_BUFFER_LIMIT,
        cadence: Optional[CheckpointCadence] = None,
        observability: Optional[Observability] = None,
    ):
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        self.engine = engine
        self.queue_capacity = int(queue_capacity)
        self._owns_dispatcher = dispatcher is None
        self.dispatcher = dispatcher or PushDispatcher()
        self.channel = channel
        self.cadence = cadence
        # The service always runs with an enabled registry: its stats ARE
        # metrics (that is what keeps /status and /metrics in agreement),
        # and the per-event cost is a striped-counter add.  An engine that
        # already carries an enabled bundle shares it, so one registry
        # spans the whole stack and /metrics covers every layer.
        if observability is None or not observability.enabled:
            engine_bundle = getattr(engine, "observability", None)
            if engine_bundle is not None and engine_bundle.enabled:
                observability = engine_bundle
            else:
                observability = Observability()
        self.observability = observability
        self.stats = ServingStats(observability.registry)
        self._fanout = AsyncFanout(
            self.dispatcher, channel, buffer_limit=buffer_limit,
            observability=observability,
        )
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=self.queue_capacity)
        self.observability.registry.gauge("repro_serving_queue_depth") \
            .set_function(self._queue.qsize)
        # Ingest→publish latency per batch: the histogram the default
        # batch_latency SLO reads its attainment from.
        self._metric_batch_seconds = \
            self.observability.registry.histogram(
                "repro_serving_batch_seconds"
            )
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="enblogue-serving"
        )
        self._consumer: Optional[asyncio.Task] = None
        self._closed = False
        self._last_submitted: Optional[float] = None
        # Graceful degradation state: the last ranking that reached the
        # dispatcher (served while a shard recovers and the engine
        # executor is busy replaying state), and the terminal engine
        # failure once the supervision budget is spent (submit() raises
        # it so the HTTP layer can answer 503 + Retry-After).
        self._last_ranking = None
        self._engine_error: Optional[ShardExecutionError] = None
        # Captured once, before any serving traffic: engine topology and
        # the active evaluation path are fixed for the engine's lifetime,
        # and status() must not call into shard backends concurrently
        # with evaluations running on the engine executor.
        self._runtime_info = dict(engine.runtime_info())

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Arm the checkpoint cadence and start the consumer task."""
        if self._consumer is not None:
            raise RuntimeError("service already started")
        if self._closed:
            raise ServiceClosedError("service is closed")
        # A resumed engine already consumed part of the stream; submit()'s
        # order validation must continue from its latest timestamp, not
        # from None, or a stale producer would get a 202 for documents
        # the consumer can only drop.
        self._last_submitted = await self._run_on_engine(
            self.engine._latest_timestamp
        )
        if self.cadence is not None:
            await self._run_on_engine(self.cadence.begin)
            self.stats.set(
                "checkpoints_written", self.cadence.checkpoints_written
            )
        self._consumer = asyncio.ensure_future(self._consume())

    async def stop(self, drain: bool = True) -> None:
        """Shut down; with ``drain`` every accepted batch is processed first.

        Draining is what makes shutdown *clean*: producers are refused
        from now on (``submit`` raises :class:`ServiceClosedError`), the
        consumer works through everything already accepted — no document
        is lost or replayed — and subscribers receive every produced
        frame before their streams end.  ``drain=False`` abandons queued
        batches (the engine still finishes the batch it is on, so its
        state stays batch-consistent).  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        if self._consumer is not None:
            if drain:
                await self._queue.put(None)
                await self._consumer
            else:
                self._consumer.cancel()
                try:
                    await self._consumer
                except asyncio.CancelledError:
                    pass
        if self.cadence is not None:
            # Persist the end state: documents accepted after the last
            # cadence tick are live (not re-feedable from a dataset), so
            # the shutdown writes one closing tick — or the one-off
            # end-state save when no cadence was configured.  A failed
            # write must not leave the rest of the shutdown undone.
            try:
                await self._run_on_engine(self.cadence.shutdown)
            except Exception as exc:
                self.stats.last_error = repr(exc)
            self.stats.set(
                "checkpoints_written", self.cadence.checkpoints_written
            )
        self._fanout.close()
        if self._owns_dispatcher:
            self.dispatcher.close()
        self._executor.shutdown(wait=True)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- ingest ----------------------------------------------------------------

    async def submit(self, documents: Sequence) -> int:
        """Enqueue one batch; blocks (async) while the queue is full.

        The batch's time order is validated *here*, against the last
        enqueued timestamp, so an HTTP producer gets its 400 before the
        batch is accepted rather than a silent drop in the consumer.
        Returns the number of documents accepted.
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        if self._engine_error is not None:
            # The engine is permanently down (supervision budget spent or
            # an unsupervised pool torn down): accepting more batches
            # would 202 documents nothing can ever process.
            raise self._engine_error
        batch = list(documents)
        if not batch:
            return 0
        previous = self._last_submitted
        for document in batch:
            timestamp = float(getattr(document, "timestamp"))
            if previous is not None and timestamp < previous:
                raise ValueError(
                    f"out-of-order document: {timestamp} < {previous}"
                )
            previous = timestamp
        # Commit the high-water mark BEFORE parking on the queue: while
        # this producer waits for capacity, a concurrent submit must
        # validate against this batch, not against the pre-batch value —
        # otherwise it could earn a 202 for documents the consumer can
        # only drop.  (A producer cancelled mid-put leaves a phantom
        # mark that conservatively rejects the gap; it never admits an
        # out-of-order batch.)
        self._last_submitted = previous
        # The enqueue stamp rides with the batch so _process can observe
        # the full ingest→publish latency, queue wait included.
        await self._queue.put((self.observability.clock(), batch))
        self.stats.add("documents_submitted", len(batch))
        self.stats.add("batches_submitted")
        self.stats.set_max("queue_high_watermark", self._queue.qsize())
        return len(batch)

    def queue_depth(self) -> int:
        """Batches currently waiting for the consumer."""
        return self._queue.qsize()

    async def drain(self) -> None:
        """Wait until every batch accepted so far has been processed."""
        await self._queue.join()

    # -- results ---------------------------------------------------------------

    def subscribe(self, subscriber_id: Optional[str] = None,
                  buffer_limit: Optional[int] = None) -> Subscription:
        """A bounded async subscription to the ranking stream."""
        return self._fanout.subscribe(subscriber_id, buffer_limit)

    def unsubscribe(self, subscription: Subscription) -> None:
        self._fanout.unsubscribe(subscription)

    async def current_ranking(self):
        """The engine's latest ranking (runs on the engine executor).

        While a shard recovers, the engine executor is busy rebuilding
        state — instead of queueing behind it, the last ranking that was
        published is served immediately (the ``stale: true`` case on
        ``GET /rankings``).
        """
        if self.degradation()["stale"] and self._last_ranking is not None:
            return self._last_ranking
        ranking = await self._run_on_engine(self.engine.current_ranking)
        if ranking is not None:
            self._last_ranking = ranking
        return ranking

    async def documents_processed(self) -> int:
        return await self._run_on_engine(lambda: self.engine.documents_processed)

    def status(self) -> dict:
        """Operational counters for the HTTP status endpoint.

        Includes per-shard health (processed pair events, queue depth,
        last dispatch latency, liveness) — read without a backend sync
        point, so it is safe from the event loop even while a shard is
        wedged.  ``healthy: False`` (any shard not alive) is what the
        HTTP layer turns into a 503.
        """
        try:
            shards = list(self.engine.shard_health())
        except Exception:
            shards = []
        degradation = self.degradation()
        # A shard that is *recovering* is degraded service, not an
        # outage: /status stays 200 (with the stale marker) and only a
        # permanent failure — or an unsupervised dead worker, which has
        # no recovery coming — flips healthy off.
        healthy = all(
            record.get("alive", True) or record.get("recovering", False)
            for record in shards
        ) and degradation["permanent_failure"] is None
        return {
            "closed": self._closed,
            "healthy": healthy,
            "queue_depth": self.queue_depth(),
            "queue_capacity": self.queue_capacity,
            "subscribers": self._fanout.subscriber_count(),
            **degradation,
            **self._runtime_info,
            **self.stats.as_dict(),
            # "shards" (from runtime_info) is the count; this is the
            # per-shard detail (pair events, queue depth, last dispatch).
            "shard_health": shards,
            "slo": self.observability.slo.summary(),
        }

    def degradation(self) -> dict:
        """The degradation markers served on /rankings, /status and SSE.

        ``stale`` is True while any shard is recovering or after a
        permanent failure — exactly when a served ranking may lag the
        accepted stream.  Reads only supervisor-side state; never calls
        into the backend.
        """
        info = None
        supervision_info = getattr(self.engine, "supervision_info", None)
        if supervision_info is not None:
            try:
                info = supervision_info()
            except Exception:  # pragma: no cover - must never raise
                info = None
        if info is None:
            return {
                "stale": False,
                "recovering_shards": [],
                "permanent_failure": None,
                "recoveries": 0,
                "degraded": False,
            }
        recovering = list(info.get("recovering_shards") or ())
        permanent = info.get("permanent_failure")
        return {
            "stale": bool(recovering) or permanent is not None,
            "recovering_shards": recovering,
            "permanent_failure": permanent,
            "recoveries": int(info.get("recoveries", 0)),
            "degraded": bool(info.get("degraded", False)),
        }

    def note_source_error(self, error: BaseException) -> None:
        """Record a producer-iterator failure (see ``serving.source``)."""
        self.stats.add("source_errors")
        self.stats.last_error = repr(error)

    def note_source_retry(self) -> None:
        """Record a producer pump restart after a transient error."""
        self.stats.add("source_retries")

    # -- internals -------------------------------------------------------------

    async def _run_on_engine(self, fn, *args):
        """Run engine work on the single-thread executor (serialized)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn, *args)

    async def _consume(self) -> None:
        while True:
            item = await self._queue.get()
            try:
                if item is None:
                    return
                enqueued_at, batch = item
                await self._process(batch, enqueued_at)
            finally:
                self._queue.task_done()

    async def _process(self, batch: List,
                       enqueued_at: Optional[float] = None) -> None:
        try:
            rankings = await self._run_on_engine(
                self.engine.process_batch, batch
            )
        except Exception as exc:
            # process_batch validates the whole chunk before touching any
            # state, so a rejected batch leaves the engine unchanged and
            # the stream serviceable; record and move on.  A
            # ShardExecutionError that reaches here means the pool is
            # gone for good (the supervised backend only lets one through
            # after its retry budget is spent) — latch it so submit()
            # stops accepting batches nothing can process.
            self.stats.add("batch_errors")
            self.stats.last_error = repr(exc)
            if isinstance(exc, ShardExecutionError):
                self._engine_error = exc
            return
        self.stats.add("documents_processed", len(batch))
        self.stats.add("batches_processed")
        if rankings:
            self._last_ranking = rankings[-1]
        # Push first (the frame is the product), persist second — the
        # cadence write happens between batches either way.  A raising
        # subscriber callback (or an externally closed dispatcher) must
        # not kill the consumer: the engine already ingested the batch,
        # and a dead consumer would keep 202-ing batches nothing drains.
        for ranking in rankings:
            try:
                self.dispatcher.publish(
                    self.channel, ranking, timestamp=ranking.timestamp
                )
            except Exception as exc:
                self.stats.add("publish_errors")
                self.stats.last_error = repr(exc)
            else:
                self.stats.add("rankings_published")
        if self.cadence is not None and rankings:
            try:
                await self._run_on_engine(
                    self.cadence.note_rankings, len(rankings)
                )
            except Exception as exc:
                self.stats.add("batch_errors")
                self.stats.last_error = repr(exc)
            self.stats.set(
                "checkpoints_written", self.cadence.checkpoints_written
            )
        # Full ingest→publish latency (queue wait included): the batch
        # was stamped at enqueue time in submit().  The SLO tick samples
        # every objective's good/total right after, so burn-rate windows
        # advance on the batch cadence.
        if enqueued_at is not None:
            self._metric_batch_seconds.observe(
                self.observability.clock() - enqueued_at
            )
        self.observability.slo.tick()
