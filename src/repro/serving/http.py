"""The HTTP face of the serving layer: ingest, rankings, SSE stream.

A deliberately small HTTP/1.1 server on asyncio's stdlib stream API (no
new dependencies), exposing:

* ``POST /ingest`` — a JSON array of documents
  (``{"timestamp": ..., "tags": [...], "entities": [...], "text": ...}``)
  enqueued as one batch.  The response is withheld until the bounded
  ingest queue accepts the batch, so a producer that outruns shard
  dispatch is slowed down by its own pending request — backpressure over
  plain HTTP, no special protocol.
* ``GET /rankings`` — the current top-k ranking as JSON (``null`` before
  the first evaluation).
* ``GET /rankings/stream`` — Server-Sent Events: one ``data:`` frame per
  published ranking, ``id:`` carrying the dispatcher sequence number.
  Slow consumers are bounded by the per-subscriber frame buffer (oldest
  frames dropped — each frame is a full snapshot).
* ``GET /status`` — the service's operational counters plus per-shard
  health; answers 503 (with the same body) when any shard worker is dead.
* ``GET /metrics`` — the service's metrics registry in the Prometheus
  text exposition format.
* ``GET /trace?last=N`` — the most recent pipeline stage traces as
  NDJSON, one per-batch span tree per line.
* ``GET /profile?seconds=N&format=collapsed|json`` — run the sampling
  profiler for N seconds (capped) and return the folded-stack counts in
  flamegraph "collapsed" format (or JSON).  If the profiler is already
  running continuously, the window is carved out of the live counts
  without stopping it.
* ``GET /logs?last=N`` — the most recent structured log records as
  NDJSON, one event per line, trace/span ids included.
* ``GET /slo`` — the declarative service-level objectives with per-window
  attainment and burn rates.

Non-SSE connections are persistent: HTTP/1.1 requests keep the
connection open (and pipelined pollers reuse it) unless the client sends
``Connection: close``; HTTP/1.0 clients get one request per connection
unless they ask for ``Connection: keep-alive``.  Every response carries
an exact ``Content-Length``, which is what makes reuse safe without
chunked encoding.  The SSE stream is the exception either way: it owns
its connection until the client disconnects or the server stops.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs

from repro.observability import (
    NDJSON_CONTENT_TYPE,
    PROMETHEUS_CONTENT_TYPE,
    render_collapsed,
    render_prometheus,
    render_trace_ndjson,
)
from repro.portal.serialization import ranking_to_dict
from repro.serving.service import DetectionService, ServiceClosedError
from repro.sharding.backends import ShardExecutionError

#: Retry-After (seconds) advertised with a 503 on engine failure — long
#: enough for a supervised recovery, short enough that probes re-check.
RETRY_AFTER_SECONDS = 5

#: Default number of traces ``GET /trace`` returns without a ``last=N``.
DEFAULT_TRACE_LAST = 16

#: Default number of log records ``GET /logs`` returns without ``last=N``.
DEFAULT_LOGS_LAST = 64

#: Default and maximum sampling window of ``GET /profile`` (seconds).
#: The cap keeps a single request from parking a handler for minutes.
DEFAULT_PROFILE_SECONDS = 1.0
MAX_PROFILE_SECONDS = 30.0

#: Cap on request bodies; an ingest batch should be chunks, not the
#: whole archive in one request.
MAX_BODY_BYTES = 16 * 1024 * 1024


class IngestDocument:
    """A minimally validated ingest payload, shaped for ``process_batch``."""

    __slots__ = ("timestamp", "tags", "entities", "text")

    def __init__(self, payload: dict):
        if not isinstance(payload, dict):
            raise ValueError("each document must be a JSON object")
        if "timestamp" not in payload:
            raise ValueError("each document needs a numeric 'timestamp'")
        self.timestamp = float(payload["timestamp"])
        tags = payload.get("tags", ()) or ()
        if isinstance(tags, str):
            raise ValueError("'tags' must be an array of strings")
        self.tags = tuple(str(tag) for tag in tags)
        entities = payload.get("entities", ()) or ()
        if isinstance(entities, str):
            raise ValueError("'entities' must be an array of strings")
        self.entities = tuple(str(entity) for entity in entities)
        self.text = str(payload.get("text", "") or "")


def parse_ingest_body(body: bytes) -> List[IngestDocument]:
    """Decode a ``POST /ingest`` body; raises ``ValueError`` on bad input."""
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as exc:
        raise ValueError(f"request body is not valid JSON: {exc}") from exc
    if isinstance(payload, dict):
        payload = payload.get("documents")
    if not isinstance(payload, list):
        raise ValueError(
            "request body must be a JSON array of documents (or an object "
            "with a 'documents' array)"
        )
    return [IngestDocument(entry) for entry in payload]


class RankingServer:
    """Serve a :class:`DetectionService` over HTTP + SSE."""

    def __init__(self, service: DetectionService,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = int(port)
        self._server: Optional[asyncio.AbstractServer] = None
        self._streams: set = set()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        # Port 0 asks the OS for an ephemeral port; expose the real one.
        self.port = self._server.sockets[0].getsockname()[1]

    async def close_listener(self) -> None:
        """Stop accepting new connections; open SSE streams keep running.

        The first half of a clean shutdown: call this, then drain/stop
        the service (whose fan-out close ends every stream with the
        ``event: end`` sentinel *after* the drain's frames were pushed),
        then :meth:`stop` to reap any straggler.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def stop(self) -> None:
        """Stop accepting and end every open SSE stream (idempotent)."""
        await self.close_listener()
        for task in list(self._streams):
            task.cancel()
        if self._streams:
            await asyncio.gather(*self._streams, return_exceptions=True)
            self._streams.clear()

    # -- request handling ------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            # One iteration per request on a kept-alive connection; the
            # exact Content-Length on every response is what keeps the
            # request boundary unambiguous across iterations.
            while True:
                try:
                    request = await self._read_request(reader)
                except ValueError as exc:
                    # Unparsable Content-Length, oversized body: the client
                    # deserves a 400, not a dropped connection and an
                    # unretrieved task exception in the loop.  The request
                    # framing is lost, so this connection cannot be reused.
                    await self._respond_json(writer, 400, {"error": str(exc)})
                    return
                if request is None:
                    return
                method, path, query, headers, body, version = request
                # Access log: one structured record per request line (a
                # no-op on the null log; /logs consumers filter by event).
                self.service.observability.log.emit(
                    "http_request", method=method, path=path
                )
                connection = headers.get("connection", "").lower()
                # HTTP/1.1 defaults to persistent connections; HTTP/1.0
                # only keeps alive on explicit request.
                if version == "HTTP/1.0":
                    keep_alive = connection == "keep-alive"
                else:
                    keep_alive = connection != "close"
                if method == "POST" and path == "/ingest":
                    keep_alive = await self._handle_ingest(
                        writer, body, keep_alive
                    )
                elif method == "GET" and path == "/rankings":
                    keep_alive = await self._handle_rankings(
                        writer, keep_alive
                    )
                elif method == "GET" and path == "/rankings/stream":
                    await self._handle_stream(writer)
                    return  # the stream owns the connection's lifetime
                elif method == "GET" and path == "/status":
                    status = self.service.status()
                    # A dead shard worker makes the node unfit for ingest:
                    # surface it as 503 so load balancers and probes fail
                    # over, with the structured body naming the shard.
                    code = 200 if status.get("healthy", True) else 503
                    keep_alive = await self._respond_json(
                        writer, code, status, keep_alive
                    )
                elif method == "GET" and path == "/metrics":
                    keep_alive = await self._respond_text(
                        writer, 200,
                        render_prometheus(self.service.observability.registry),
                        PROMETHEUS_CONTENT_TYPE,
                        keep_alive,
                    )
                elif method == "GET" and path == "/trace":
                    keep_alive = await self._handle_trace(
                        writer, query, keep_alive
                    )
                elif method == "GET" and path == "/profile":
                    keep_alive = await self._handle_profile(
                        writer, query, keep_alive
                    )
                elif method == "GET" and path == "/logs":
                    keep_alive = await self._handle_logs(
                        writer, query, keep_alive
                    )
                elif method == "GET" and path == "/slo":
                    observability = self.service.observability
                    keep_alive = await self._respond_json(writer, 200, {
                        "objectives": observability.slo.report(),
                        "summary": observability.slo.summary(),
                    }, keep_alive)
                else:
                    keep_alive = await self._respond_json(
                        writer, 404,
                        {"error": f"no route {method} {path}"},
                        keep_alive,
                    )
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, str, Dict[str, str], bytes, str]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, target, version = request_line.decode("latin-1").split()
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        return method.upper(), path, query, headers, body, version.upper()

    async def _handle_ingest(self, writer: asyncio.StreamWriter,
                             body: bytes, keep_alive: bool = False) -> bool:
        try:
            documents = parse_ingest_body(body)
        except ValueError as exc:
            return await self._respond_json(writer, 400, {"error": str(exc)},
                                            keep_alive)
        try:
            # This await is the backpressure: the response (and therefore
            # the producer's next request) waits for queue capacity.
            accepted = await self.service.submit(documents)
        except ValueError as exc:
            return await self._respond_json(writer, 400, {"error": str(exc)},
                                            keep_alive)
        except ServiceClosedError as exc:
            return await self._respond_json(writer, 503, {"error": str(exc)},
                                            keep_alive)
        except ShardExecutionError as exc:
            # The shard pool is gone (torn down, or the supervision
            # budget is spent): a clean 503 with Retry-After, never a raw
            # 500 or a dropped connection.
            return await self._respond_json(
                writer, 503,
                {"error": f"shard backend unavailable: {exc}",
                 "retry_after": RETRY_AFTER_SECONDS},
                keep_alive,
                extra_headers={"Retry-After": str(RETRY_AFTER_SECONDS)},
            )
        except Exception as exc:  # pragma: no cover - last-resort mapping
            return await self._respond_json(
                writer, 500, {"error": f"internal error: {exc!r}"},
                keep_alive,
            )
        return await self._respond_json(writer, 202, {
            "accepted": accepted,
            "queued_batches": self.service.queue_depth(),
        }, keep_alive)

    async def _handle_rankings(self, writer: asyncio.StreamWriter,
                               keep_alive: bool = False) -> bool:
        ranking = await self.service.current_ranking()
        payload = None if ranking is None else ranking_to_dict(ranking)
        degradation = self.service.degradation()
        return await self._respond_json(writer, 200, {
            "ranking": payload,
            # Degradation markers: while a shard recovers this is the
            # last-good ranking, flagged stale rather than withheld.
            "stale": degradation["stale"],
            "recovering_shards": degradation["recovering_shards"],
        }, keep_alive)

    async def _handle_stream(self, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._streams.add(task)
        try:
            subscription = self.service.subscribe()
        except RuntimeError:
            self._streams.discard(task)
            await self._respond_json(
                writer, 503, {"error": "ranking stream is closed"}
            )
            writer.close()
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n"
            b"\r\n"
            b": enblogue ranking stream\n\n"
        )
        try:
            await writer.drain()
            while True:
                message = await subscription.next_message()
                if message is None:
                    writer.write(b"event: end\ndata: {}\n\n")
                    await writer.drain()
                    break
                payload = ranking_to_dict(message.payload)
                degradation = self.service.degradation()
                if degradation["stale"]:
                    # Markers only while degraded: an undisturbed (or
                    # fully recovered) stream's frames stay byte-for-byte
                    # identical to a batch replay.
                    payload = dict(payload)
                    payload["stale"] = True
                    payload["recovering_shards"] = (
                        degradation["recovering_shards"]
                    )
                frame = json.dumps(payload, sort_keys=True)
                writer.write(
                    f"id: {message.sequence}\ndata: {frame}\n\n".encode("utf-8")
                )
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self.service.unsubscribe(subscription)
            self._streams.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_trace(self, writer: asyncio.StreamWriter,
                            query: str, keep_alive: bool = False) -> bool:
        last = DEFAULT_TRACE_LAST
        raw = parse_qs(query).get("last", [None])[0]
        if raw is not None:
            try:
                last = int(raw)
                if last < 0:
                    raise ValueError
            except ValueError:
                return await self._respond_json(
                    writer, 400,
                    {"error": f"'last' must be a non-negative integer, "
                              f"got {raw!r}"},
                    keep_alive,
                )
        return await self._respond_text(
            writer, 200,
            render_trace_ndjson(
                self.service.observability.tracer, last=last
            ),
            NDJSON_CONTENT_TYPE,
            keep_alive,
        )

    async def _handle_profile(self, writer: asyncio.StreamWriter,
                              query: str, keep_alive: bool = False) -> bool:
        params = parse_qs(query)
        raw = params.get("seconds", [None])[0]
        seconds = DEFAULT_PROFILE_SECONDS
        if raw is not None:
            try:
                seconds = float(raw)
                if not 0 <= seconds <= MAX_PROFILE_SECONDS:
                    raise ValueError
            except ValueError:
                return await self._respond_json(
                    writer, 400,
                    {"error": f"'seconds' must be a number in "
                              f"[0, {MAX_PROFILE_SECONDS:g}], got {raw!r}"},
                    keep_alive,
                )
        fmt = params.get("format", ["collapsed"])[0]
        if fmt not in ("collapsed", "json"):
            return await self._respond_json(
                writer, 400,
                {"error": f"'format' must be 'collapsed' or 'json', "
                          f"got {fmt!r}"},
                keep_alive,
            )
        profiler = self.service.observability.profiler
        # Carve the requested window out of the live counts: snapshot,
        # sample for `seconds`, diff.  A profiler someone else started
        # (e.g. the continuous CLI mode) keeps running afterwards; one
        # started here is stopped again so an idle server stays idle.
        baseline = profiler.counts()
        started_here = profiler.ensure_running()
        if seconds:
            await asyncio.sleep(seconds)
        counts = profiler.counts_since(baseline)
        if started_here:
            profiler.stop()
        if fmt == "json":
            return await self._respond_json(writer, 200, {
                "seconds": seconds,
                "samples": sum(counts.values()),
                "stacks": counts,
            }, keep_alive)
        return await self._respond_text(
            writer, 200, render_collapsed(counts),
            "text/plain; charset=utf-8", keep_alive,
        )

    async def _handle_logs(self, writer: asyncio.StreamWriter,
                           query: str, keep_alive: bool = False) -> bool:
        last = DEFAULT_LOGS_LAST
        raw = parse_qs(query).get("last", [None])[0]
        if raw is not None:
            try:
                last = int(raw)
                if last < 0:
                    raise ValueError
            except ValueError:
                return await self._respond_json(
                    writer, 400,
                    {"error": f"'last' must be a non-negative integer, "
                              f"got {raw!r}"},
                    keep_alive,
                )
        return await self._respond_text(
            writer, 200,
            self.service.observability.log.render_ndjson(last=last),
            NDJSON_CONTENT_TYPE,
            keep_alive,
        )

    _REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
                404: "Not Found", 500: "Internal Server Error",
                503: "Service Unavailable"}

    async def _respond_json(self, writer: asyncio.StreamWriter,
                            status: int, payload: dict,
                            keep_alive: bool = False,
                            extra_headers: Optional[Dict[str, str]] = None
                            ) -> bool:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        return await self._respond_bytes(
            writer, status, body, "application/json", keep_alive,
            extra_headers,
        )

    async def _respond_text(self, writer: asyncio.StreamWriter,
                            status: int, text: str, content_type: str,
                            keep_alive: bool = False) -> bool:
        return await self._respond_bytes(
            writer, status, text.encode("utf-8"), content_type, keep_alive
        )

    async def _respond_bytes(self, writer: asyncio.StreamWriter,
                             status: int, body: bytes, content_type: str,
                             keep_alive: bool = False,
                             extra_headers: Optional[Dict[str, str]] = None
                             ) -> bool:
        # Error responses close even on HTTP/1.1: clients that hit them
        # read to EOF, and a stuck connection is worse than a re-dial.
        keep_alive = keep_alive and status < 400
        connection = "keep-alive" if keep_alive else "close"
        extra = "".join(
            f"{name}: {value}\r\n"
            for name, value in (extra_headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {self._REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: {connection}\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
        return keep_alive
