"""Bridging pull-driven sources into the serving layer's ingest queue.

The datasets expose ``iter_batches`` generators and the streams layer
exposes :class:`~repro.streams.sources.Source` DAG roots; both are
synchronous, pull-driven iterators.  The pumps here walk them on the
event loop and ``await submit(batch)`` per chunk, so the *source* is
paced by the service's bounded queue: when shard dispatch falls behind,
the pump parks on the queue and the underlying iterator simply is not
advanced — backpressure propagates all the way to the producer without
any unbounded buffering in between.

The chunking work per batch is microseconds of pure-Python iteration, so
running it on the loop thread is deliberate; the expensive half (engine
ingestion) already lives on the service's executor.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from repro.serving.service import DetectionService
from repro.streams.sources import Source

#: Default documents per submitted batch, matching the sharded engine's
#: dispatch chunk so one submit becomes one backend dispatch.
DEFAULT_BATCH_SIZE = 256


async def pump_batches(service: DetectionService,
                       batches: Iterable) -> int:
    """Submit every batch of an iterable (e.g. a dataset ``iter_batches``).

    Returns the number of documents submitted.  The iterable is advanced
    lazily: a full ingest queue pauses it mid-stream.
    """
    submitted = 0
    for batch in batches:
        submitted += await service.submit(batch)
    return submitted


async def pump_documents(service: DetectionService, documents: Iterable,
                         batch_size: int = DEFAULT_BATCH_SIZE) -> int:
    """Chunk a flat document iterable and submit each chunk."""
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    submitted = 0
    chunk = []
    for document in documents:
        chunk.append(document)
        if len(chunk) >= batch_size:
            submitted += await service.submit(chunk)
            chunk = []
    if chunk:
        submitted += await service.submit(chunk)
    return submitted


async def pump_source(service: DetectionService, source: Source,
                      batch_size: int = DEFAULT_BATCH_SIZE,
                      limit: Optional[int] = None) -> int:
    """Feed a stream :class:`Source` into the service, chunked.

    Consumes ``source.stream()`` directly (the source's own time-order
    validation included) rather than ``source.run()``: the serving queue
    replaces the DAG's push edges, and the service's engine stands where
    the DAG sink would.  ``limit`` caps the documents taken.
    """
    items = source.stream()
    if limit is not None:
        # islice checks the count before advancing, so a live source is
        # never asked for a document that would then be thrown away.
        items = itertools.islice(items, int(limit))
    return await pump_documents(service, items, batch_size=batch_size)
