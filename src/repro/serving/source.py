"""Bridging pull-driven sources into the serving layer's ingest queue.

The datasets expose ``iter_batches`` generators and the streams layer
exposes :class:`~repro.streams.sources.Source` DAG roots; both are
synchronous, pull-driven iterators.  The pumps here walk them on the
event loop and ``await submit(batch)`` per chunk, so the *source* is
paced by the service's bounded queue: when shard dispatch falls behind,
the pump parks on the queue and the underlying iterator simply is not
advanced — backpressure propagates all the way to the producer without
any unbounded buffering in between.

The chunking work per batch is microseconds of pure-Python iteration, so
running it on the loop thread is deliberate; the expensive half (engine
ingestion) already lives on the service's executor.

Producer failures are *terminal but distinguishable*: the pumps advance
their iterators with an explicit ``next()`` so normal exhaustion
(``StopIteration`` → the pump returns its count) never shares a code
path with a producer that *raised* — the latter is counted on the
service (``repro_serving_source_errors_total``), logged with its
traceback, and re-raised as :class:`SourceProducerError` after the
cleanly produced tail has been submitted.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import time
from typing import Iterable, Optional

from repro.serving.service import DetectionService
from repro.sharding.supervision import RetryPolicy
from repro.streams.sources import Source

logger = logging.getLogger(__name__)

#: Default documents per submitted batch, matching the sharded engine's
#: dispatch chunk so one submit becomes one backend dispatch.
DEFAULT_BATCH_SIZE = 256


class SourceProducerError(RuntimeError):
    """The producer iterator raised mid-pump — not normal exhaustion.

    Carries the original exception as its ``__cause__``.  Everything the
    producer yielded before failing was already submitted; the count of
    those documents is in :attr:`submitted`.
    """

    def __init__(self, message: str, submitted: int):
        super().__init__(message)
        self.submitted = submitted


def _producer_failed(service: DetectionService, exc: BaseException,
                     submitted: int) -> "SourceProducerError":
    """Count, log and wrap a producer failure (the caller raises it)."""
    service.note_source_error(exc)
    logger.exception(
        "ingest producer failed after %d submitted document(s)", submitted
    )
    return SourceProducerError(
        f"ingest producer raised after {submitted} submitted "
        f"document(s): {exc!r}",
        submitted=submitted,
    )


async def pump_batches(service: DetectionService,
                       batches: Iterable) -> int:
    """Submit every batch of an iterable (e.g. a dataset ``iter_batches``).

    Returns the number of documents submitted.  The iterable is advanced
    lazily: a full ingest queue pauses it mid-stream.  A producer that
    raises terminates the pump with :class:`SourceProducerError`.
    """
    iterator = iter(batches)
    submitted = 0
    while True:
        try:
            batch = next(iterator)
        except StopIteration:
            return submitted
        except Exception as exc:
            raise _producer_failed(service, exc, submitted) from exc
        submitted += await service.submit(batch)


async def pump_documents(service: DetectionService, documents: Iterable,
                         batch_size: int = DEFAULT_BATCH_SIZE) -> int:
    """Chunk a flat document iterable and submit each chunk.

    A producer that raises terminates the pump with
    :class:`SourceProducerError` — after the documents it cleanly
    produced have been submitted (they are real stream state; dropping
    them would lose documents the next pump cannot re-produce).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    iterator = iter(documents)
    submitted = 0
    chunk = []
    while True:
        try:
            document = next(iterator)
        except StopIteration:
            break
        except Exception as exc:
            if chunk:
                submitted += await service.submit(chunk)
            raise _producer_failed(service, exc, submitted) from exc
        chunk.append(document)
        if len(chunk) >= batch_size:
            submitted += await service.submit(chunk)
            chunk = []
    if chunk:
        submitted += await service.submit(chunk)
    return submitted


async def _backoff_sleep(retry_policy: RetryPolicy, delay: float) -> None:
    # An injected sleep (tests, fake clocks) is honored synchronously;
    # the default wall-clock sleep must not block the event loop.
    if retry_policy.sleep is time.sleep:
        await asyncio.sleep(delay)
    elif delay > 0:
        retry_policy.sleep(delay)


async def pump_source(service: DetectionService, source: Source,
                      batch_size: int = DEFAULT_BATCH_SIZE,
                      limit: Optional[int] = None,
                      retry_policy: Optional[RetryPolicy] = None) -> int:
    """Feed a stream :class:`Source` into the service, chunked.

    Consumes ``source.stream()`` directly (the source's own time-order
    validation included) rather than ``source.run()``: the serving queue
    replaces the DAG's push edges, and the service's engine stands where
    the DAG sink would.  ``limit`` caps the documents taken.

    Without ``retry_policy``, a source whose generator raises ends the
    pump with :class:`SourceProducerError`, never with a silent early
    return.  With one, transient producer errors restart the pump: the
    error is still counted (``repro_serving_source_errors_total``) and
    logged, then after the policy's backoff ``source.stream()`` is
    re-obtained and pumping continues — one flaky poll no longer kills a
    long-running producer task.  This suits *live, resumable* sources
    (polling feeds that pick up where they left off); a source that
    replays from the start would be rejected by the service's time-order
    validation on the second attempt.  Progress resets the attempt
    count; only consecutive no-progress failures exhaust the budget and
    raise :class:`SourceProducerError` with the cumulative count.
    """
    if retry_policy is None:
        items = source.stream()
        if limit is not None:
            # islice checks the count before advancing, so a live source
            # is never asked for a document that would be thrown away.
            items = itertools.islice(items, int(limit))
        return await pump_documents(service, items, batch_size=batch_size)

    submitted = 0
    attempts = 0
    remaining = None if limit is None else int(limit)
    while True:
        items = source.stream()
        if remaining is not None:
            items = itertools.islice(items, remaining)
        try:
            count = await pump_documents(service, items,
                                         batch_size=batch_size)
        except SourceProducerError as exc:
            submitted += exc.submitted
            if remaining is not None:
                remaining -= exc.submitted
            if exc.submitted:
                attempts = 0
            attempts += 1
            if attempts > retry_policy.max_retries:
                raise SourceProducerError(
                    f"ingest producer failed {attempts} consecutive "
                    f"time(s) without progress; giving up after "
                    f"{submitted} submitted document(s): {exc}",
                    submitted=submitted,
                ) from exc
            service.note_source_retry()
            logger.warning(
                "retrying ingest producer (attempt %d/%d) after: %s",
                attempts, retry_policy.max_retries, exc,
            )
            await _backoff_sleep(retry_policy,
                                 retry_policy.backoff(attempts))
            continue
        return submitted + count
