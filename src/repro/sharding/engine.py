"""The scatter-gather coordinator: a sharded, drop-in ``EnBlogue``.

``ShardedEnBlogue`` horizontally partitions the *pair space* of the
detection pipeline while keeping the *tag space* global:

* every incoming document is decomposed exactly once (the same
  normalise/dedupe/sort rule as the single engine, via the shared
  :class:`~repro.core.tracker.DocumentDecomposer`);
* the ordered tag set feeds one global
  :class:`~repro.windows.aggregates.TagFrequencyWindow` — seed selection
  and the correlation denominators are whole-stream statistics;
* the document's pairs are routed by the
  :class:`~repro.sharding.partitioner.PairPartitioner` into per-shard
  chunks, dispatched to the backend when ``chunk_size`` documents have
  accumulated or an evaluation boundary forces a flush;
* at each boundary the coordinator selects seeds from the global window,
  broadcasts ``(timestamp, seeds, tag counts, total documents)``, gathers
  every shard's local top-k and k-way-merges them into the published
  ranking.

Because pairs are partitioned (each one lives in exactly one shard) and the
per-pair computations are identical to the single engine's, the merged
ranking sequence is **bit-identical** to :class:`~repro.core.engine.EnBlogue`
on the same stream — the property the test-suite pins for shard counts 1, 2
and 4 on both backends.  The shared ingestion loop itself (boundary
catch-up, document preparation, ranking bookkeeping) lives in the common
:class:`~repro.core.engine.DetectionEngineBase`, so there is no second copy
of it to drift.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.core.config import EnBlogueConfig
from repro.core.correlation import available_measures
from repro.core.engine import (
    DetectionEngineBase,
    bind_tier_gauges,
    make_sketch_tier,
)
from repro.core.tracker import DocumentDecomposer, record_count_history
from repro.core.types import Ranking
from repro.core.vectorized import config_vectorizes
from repro.entity.tagger import EntityTagger
from repro.persistence.codec import optional_float, string_interner
from repro.persistence.snapshot import SnapshotMismatchError, require_state
from repro.sharding.backends import ShardBackend, make_backend
from repro.sharding.partitioner import PairPartitioner
from repro.sharding.reshard import reshard_worker_states
from repro.sharding.worker import ShardEvent, ShardWorker
from repro.windows.aggregates import TagFrequencyWindow
from repro.windows.striped import StripedCountHistory


class ShardedEnBlogue(DetectionEngineBase):
    """Emergent topic detection scattered over hash-partitioned shards.

    ``backend`` is either a backend name (``"serial"`` or ``"process"``) or
    an already constructed, *unstarted* :class:`ShardBackend`.  The engine
    mirrors the public surface of :class:`~repro.core.engine.EnBlogue`
    (``process``, ``process_batch``, ``evaluate_now``, rankings, listeners,
    personalization, ``as_sink``); call :meth:`close` — or use the engine as
    a context manager — to shut worker processes down.
    """

    def __init__(
        self,
        config: Optional[EnBlogueConfig] = None,
        num_shards: int = 4,
        backend: Union[str, ShardBackend] = "serial",
        chunk_size: int = 256,
        entity_tagger: Optional[EntityTagger] = None,
        vectorize: Optional[bool] = None,
        observability=None,
    ):
        super().__init__(config, entity_tagger, observability=observability)
        if self.config.correlation_measure == "kl":
            supported = [m for m in available_measures() if m != "kl"]
            raise ValueError(
                "ShardedEnBlogue does not support correlation_measure='kl': "
                "the KL measure needs global co-tag usage distributions, "
                "which pair-partitioned shards cannot maintain. Set the "
                "config key 'correlation_measure' to one of "
                f"{supported}, or use the single-process EnBlogue "
                "engine for 'kl'."
            )
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.partitioner = PairPartitioner(num_shards)
        self.num_shards = self.partitioner.num_shards
        self.chunk_size = int(chunk_size)

        if isinstance(backend, str):
            backend = make_backend(backend)
        self.backend = backend
        self._vectorize = vectorize
        self.backend.start(
            [ShardWorker(shard_id, self.config, vectorize=vectorize)
             for shard_id in range(self.num_shards)]
        )
        # Bound after start so the per-shard metric children exist; the
        # evaluation-path label mirrors runtime_info's config-derived
        # answer (asking a live shard here would add a sync point).
        self.backend.bind_observability(self.observability)
        self._bind_evaluation_metric(
            "vectorized"
            if vectorize is not False and config_vectorizes(self.config)
            else "scalar"
        )

        self._decomposer = DocumentDecomposer(
            use_entities=self.config.use_entities
        )
        # Under the threads backend the global tag window is the one hot
        # dict shared across coordinator and shard threads (checkpoint and
        # status reads race ingestion), so its counts are MRV-striped;
        # merged() sums integers, keeping the broadcast counts bit-exact.
        # A supervised wrapper over threads shares the same memory, so the
        # check looks through it.
        threaded = (
            self.backend.name == "threads"
            or getattr(self.backend, "inner_name", None) == "threads"
        )
        window_stripes = self.num_shards if threaded else 1
        self._tag_window = TagFrequencyWindow(
            self.config.window_horizon, stripes=window_stripes
        )
        # The count history is appended one row per boundary but read by
        # checkpoint/status threads mid-append under the threads backend,
        # so it gets the same striped treatment as the tag window there.
        self._count_history = (
            StripedCountHistory(
                self.config.history_length, stripes=window_stripes
            )
            if threaded
            else {}
        )
        # Admission runs once, globally, before pairs are partitioned:
        # a per-shard sketch could not be re-split on an N-to-M restore,
        # and the admitted weighted pair stream is what keeps the shard
        # workers' exact state identical to the single tiered engine's.
        self._tier = make_sketch_tier(self.config)
        if self._tier is not None:
            bind_tier_gauges(self.observability, self._tier)
        self._buffers: List[List[ShardEvent]] = [
            [] for _ in range(self.num_shards)
        ]
        self._buffered_documents = 0
        self._latest: Optional[float] = None
        self._closed = False
        # Delta-checkpoint buffers for the coordinator's own (tag-level)
        # state; None when delta recording is inactive.
        self._delta_tag_events: Optional[List[Tuple[float, Tuple[str, ...]]]] = None
        self._delta_count_rows: Optional[List[Dict[str, int]]] = None

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Shut the backend down (idempotent)."""
        if not self._closed:
            self._closed = True
            self.backend.close()

    def _ensure_open(self) -> None:
        # Ingesting into a closed engine would buffer documents that can
        # never reach a shard; fail at the door instead.
        if self._closed:
            raise RuntimeError("engine is closed")

    def __enter__(self) -> "ShardedEnBlogue":
        return self

    def __exit__(self, exc_type, exc_value, exc_traceback) -> None:
        self.close()

    # -- hooks ----------------------------------------------------------------

    def _ingest_document(self, timestamp: float, tags, entities) -> None:
        """Decompose once, update the global window, route pairs to shards."""
        self._ensure_open()
        if self._latest is not None and timestamp < self._latest:
            raise ValueError(
                f"out-of-order document: {timestamp} < {self._latest}"
            )
        ordered, pairs = self._decomposer.decompose(tags, entities)
        self._tag_window.add_document(timestamp, ordered, prepared=True)
        if self._delta_tag_events is not None:
            self._delta_tag_events.append((timestamp, ordered))
        self._latest = timestamp
        if pairs and self._tier is not None:
            pairs = self._tier.filter_pairs(timestamp, pairs)
        if pairs:
            buffers = self._buffers
            for shard_id, event in self.partitioner.split_event(timestamp, pairs):
                buffers[shard_id].append(event)
        self._buffered_documents += 1
        if self._buffered_documents >= self.chunk_size:
            self._flush()

    def _latest_timestamp(self) -> Optional[float]:
        return self._latest

    # -- results --------------------------------------------------------------

    def shard_stats(self) -> List[dict]:
        """Per-shard summary counters (events, live pairs, scored pairs)."""
        self._flush()
        return self.backend.stats()

    def runtime_info(self) -> dict:
        """Engine topology plus the evaluation path the shards actually run.

        Prefers asking a live shard (authoritative after restores or env
        overrides inside worker processes); falls back to deriving the
        answer from the config when the backend is closed or unreachable.
        """
        path: Optional[str] = None
        if not self._closed:
            try:
                stats = self.backend.stats()
                path = stats[0].get("evaluation_path") if stats else None
            except Exception:
                path = None
        if path is None:
            vectorized = (
                self._vectorize is not False
                and config_vectorizes(self.config)
            )
            path = "vectorized" if vectorized else "scalar"
        backend_label = self.backend.name
        inner_name = getattr(self.backend, "inner_name", None)
        if inner_name is not None:
            backend_label = f"supervised[{inner_name}]"
        return {
            "engine": "sharded",
            "backend": backend_label,
            "shards": self.num_shards,
            "evaluation_path": path,
            "tracking": "tiered" if self._tier is not None else "exact",
            "promote_support": self.config.promote_support,
        }

    def supervision_info(self) -> Optional[dict]:
        """Supervisor state when the backend is supervised, else None."""
        info = getattr(self.backend, "supervision_info", None)
        return info() if info is not None else None

    # -- persistence ----------------------------------------------------------

    #: Snapshot envelope of the sharded engine (see ``repro.persistence``).
    SNAPSHOT_KIND = "sharded-enblogue"

    def snapshot(self) -> dict:
        """Coordinator + every shard's state as a versioned, JSON-safe dict.

        Buffered chunks are flushed first, so the collected shard states
        observe every routed pair event and the snapshot is consistent as
        of the last processed document.  The per-shard states land under
        ``"shards"``; the checkpoint store writes them to one file each.
        """
        self._ensure_open()
        self._flush()
        state = {
            "kind": self.SNAPSHOT_KIND,
            "version": 1,
            **self._base_snapshot(),
            "num_shards": self.num_shards,
            "chunk_size": self.chunk_size,
            "latest": self._latest,
            "tag_window": self._tag_window.state_dict(),
            "count_history": {
                tag: list(values)
                for tag, values in self._count_history.items()
            },
            "builder": self.ranking_builder.snapshot(),
            "shards": self.backend.collect_states(),
        }
        if self._tier is not None:
            state["tier"] = self._tier.snapshot()
        return state

    def restore(self, state: Mapping) -> None:
        """Adopt a :meth:`snapshot`'s state; continuation is bit-identical.

        The snapshot may come from a deployment with a *different* shard
        count: the per-pair state is then re-routed through the stable
        CRC-32 partitioner (:mod:`repro.sharding.reshard`) before it is
        handed to this engine's workers, so a 2-shard checkpoint restores
        into 4 shards (or 1) without replaying the stream.  ``chunk_size``
        and the backend are runtime choices, free to differ from the
        checkpointed run's.
        """
        require_state(state, self.SNAPSHOT_KIND, 1)
        self._ensure_open()
        self._restore_base(state)
        tier_state = state.get("tier")
        if (tier_state is None) != (self._tier is None):
            raise SnapshotMismatchError(
                "tracking-mode mismatch: the snapshot and this engine "
                "disagree on whether a sketch tier is present"
            )
        if tier_state is not None:
            self._tier.restore(tier_state)
        self._tag_window.restore_state(state["tag_window"])
        if isinstance(self._count_history, StripedCountHistory):
            self._count_history.seed(state["count_history"])
        else:
            self._count_history = {
                str(tag): deque(
                    (int(value) for value in values),
                    maxlen=self.config.history_length,
                )
                for tag, values in state["count_history"].items()
            }
        self._latest = optional_float(state["latest"])
        self.ranking_builder.restore(state["builder"])
        shard_states = state["shards"]
        if len(shard_states) != self.num_shards:
            shard_states = reshard_worker_states(shard_states, self.num_shards)
        self.backend.restore_states(shard_states)
        self._buffers = [[] for _ in range(self.num_shards)]
        self._buffered_documents = 0

    def _begin_delta_tracking(self) -> None:
        # snapshot() already flushed, but a direct caller may not have:
        # the shard deltas must start exactly at the base state.
        self._flush()
        super()._begin_delta_tracking()
        self._delta_tag_events = []
        self._delta_count_rows = []
        self.backend.begin_delta_tracking()

    def _stop_delta_tracking(self) -> None:
        was_tracking = self._delta_rankings is not None
        super()._stop_delta_tracking()
        self._delta_tag_events = None
        self._delta_count_rows = None
        if was_tracking and not self._closed:
            try:
                self.backend.end_delta_tracking()
            except Exception:
                # Disarming is best-effort cleanup, often reached while
                # unwinding a failed save — a dead backend has no worker
                # buffers left to disarm, and raising here would mask the
                # failure that brought us down this path.
                pass

    def delta_since(self, generation: int) -> dict:
        """Coordinator + every shard's changes since the last base/drain.

        Buffered chunks are flushed first so the drained shard deltas
        observe every routed pair event (the FIFO argument of
        ``collect_states``); the coordinator contributes its appended
        tag-window events, the per-evaluation count-history rows, and the
        shared boundary bookkeeping.  Folded back by
        :func:`repro.persistence.delta.apply_engine_delta`.  The drain is
        not transactional: if the backend fails mid-collect the buffered
        tick is lost — ``save_delta_checkpoint`` disarms the chain on any
        failure for exactly that reason.
        """
        self._ensure_open()
        if self._delta_tag_events is None:
            raise SnapshotMismatchError(
                "no delta baseline: call save_checkpoint(directory, "
                "track_deltas=True) before delta_since"
            )
        self._flush()
        tag_events = self._delta_tag_events
        count_rows = self._delta_count_rows
        self._delta_tag_events = []
        self._delta_count_rows = []
        # Version 2: tag names are interned into one string table per
        # delta ("tags", referenced by index in "tag_events") — the same
        # lean encoding the tracker uses for its events, so a cadence
        # tick's coordinator segment is sized by the distinct tags, not
        # by every document repeating its tag strings.
        intern, tags_table = string_interner()
        return {
            "kind": "sharded-enblogue-delta",
            "version": 2,
            **self._base_delta(generation),
            "latest": self._latest,
            "tag_window_latest": self._tag_window.latest_timestamp,
            "tags": tags_table,
            "tag_events": [
                [timestamp, [intern(tag) for tag in tags]]
                for timestamp, tags in tag_events
            ],
            "count_rows": count_rows,
            "builder": self.ranking_builder.delta_since(generation),
            "shards": self.backend.collect_deltas(generation),
        }

    # -- internals ------------------------------------------------------------

    def _sink_name(self) -> str:
        return f"sharded-enblogue[{self.config.name}]"

    def _flush(self) -> None:
        """Dispatch the buffered per-shard chunks to the backend."""
        if any(self._buffers):
            with self.observability.tracer.span("dispatch") as span:
                span.set(
                    events=sum(len(chunk) for chunk in self._buffers)
                )
                self.backend.ingest(self._buffers)
            self._buffers = [[] for _ in range(self.num_shards)]
        self._buffered_documents = 0

    def shard_health(self) -> List[dict]:
        """Per-shard health from the backend, without a sync point."""
        return self.backend.health()

    def _evaluate(self, timestamp: float) -> Ranking:
        # Mirrors EnBlogue._evaluate step for step.  Seeds are selected from
        # the window *before* it advances to the boundary (the single
        # tracker advances inside evaluate(), after selection), against the
        # count history recorded at previous boundaries.
        self._ensure_open()
        self._flush()
        tracer = self.observability.tracer
        with tracer.span("seed_select") as span:
            self._current_seeds = self.seed_selector.select(
                self._tag_window, history=self._count_history
            )
            span.set(seeds=len(self._current_seeds))
        self._tag_window.advance_to(timestamp)
        self._latest = timestamp
        count_row = self._tag_window.snapshot()
        if self._delta_count_rows is not None:
            self._delta_count_rows.append(count_row)
        if isinstance(self._count_history, StripedCountHistory):
            self._count_history.record_row(count_row)
        else:
            record_count_history(
                self._count_history, count_row, self.config.history_length,
            )
        with tracer.span("shard_evaluate") as span:
            topic_lists = self.backend.evaluate(
                timestamp,
                self._current_seeds,
                self._tag_window.counts,
                self._tag_window.document_count,
            )
            span.set(shards=len(topic_lists))
        with tracer.span("merge"):
            ranking = self.ranking_builder.merge(
                timestamp, topic_lists, label=self.config.name
            )
        return self._publish(ranking)
