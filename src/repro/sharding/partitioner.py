"""Stable partitioning of the tag-pair space across shards.

The whole sharded architecture rests on one invariant: a pair's shard is a
pure function of its canonical form.  Every statistic the detection
pipeline keeps *per pair* — windowed co-occurrence counts, correlation
histories, decayed shift scores — then lives wholly inside one shard, and
the union of the shards' states equals the single-engine state exactly.

Python's builtin ``hash`` is salted per process (``PYTHONHASHSEED``), so it
would break the invariant across worker processes and across runs; the
partitioner hashes the canonical pair with CRC-32 instead, which is stable
everywhere and cheap.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Tuple

from repro.core.types import TagPair


class PairPartitioner:
    """Map every canonical :class:`TagPair` to exactly one shard id."""

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.num_shards = int(num_shards)

    def shard_of(self, pair: TagPair) -> int:
        """The shard owning ``pair``, in ``range(num_shards)``.

        ``TagPair`` canonicalises its tags lexicographically, so the two
        spellings of a pair always land on the same shard.
        """
        if self.num_shards == 1:
            return 0
        key = f"{pair.first}\x1f{pair.second}".encode("utf-8")
        return zlib.crc32(key) % self.num_shards

    def split(
        self, pairs: Iterable[TagPair]
    ) -> Dict[int, List[TagPair]]:
        """Group ``pairs`` by owning shard, preserving input order.

        Only shards that own at least one of the pairs appear as keys.
        """
        split: Dict[int, List[TagPair]] = {}
        shard_of = self.shard_of
        for pair in pairs:
            split.setdefault(shard_of(pair), []).append(pair)
        return split

    def split_event(
        self, timestamp: float, pairs: Iterable[TagPair]
    ) -> List[Tuple[int, Tuple[float, Tuple[TagPair, ...]]]]:
        """One document's pair set as per-shard ``(timestamp, pairs)`` events."""
        return [
            (shard_id, (timestamp, tuple(shard_pairs)))
            for shard_id, shard_pairs in self.split(pairs).items()
        ]
