"""Self-healing shard execution: supervised recovery with retry/backoff.

The execution backends treat any shard failure as fatal: a dead worker
tears the whole pool down and every later call raises
:class:`~repro.sharding.backends.ShardExecutionError`. That is the right
*primitive* — a half-dead pool must never publish partial rankings — but
the wrong *policy* for serving. :class:`SupervisedBackend` composes over
any inner backend (serial / threads / process) and turns worker death
back into liveness:

* every mutating operation the coordinator issues (``ingest`` chunks,
  ``evaluate`` boundaries, delta arm/disarm, journal drains) is recorded
  in an **operation log** since the last state-capture point,
* on failure the dead pool is discarded wholesale and a fresh one is
  rebuilt — base state first (the last checkpoint on disk when its delta
  journal lines up with a recorded drain marker, otherwise the last
  in-memory snapshot), then the logged suffix replayed in order,
* retries are governed by a :class:`RetryPolicy` — bounded attempts,
  exponential backoff, an optional per-operation deadline — with
  injected clock/sleep so chaos tests run instantly,
* when the budget is spent the failure escalates permanently: every
  subsequent call raises immediately and serving flips to 503.

Because the engine's dispatch protocol is deterministic (FIFO chunks,
synchronous boundaries), replaying base + suffix reconstructs worker
state *exactly*: post-recovery rankings are pinned bit-identical to an
uninterrupted run, the same discipline as replaying a verified update
log in incremental view maintenance.

When the log was truncated (``max_log_ops``) and no checkpoint chain
matches, exactness is impossible — the supervisor degrades to an **N−1
re-shard**: surviving shards' last-captured states are re-partitioned
(:func:`~repro.sharding.reshard.reshard_worker_states`) onto a smaller
pool and incoming chunks are re-routed, trading bit-identity for
availability until the next ``restore_states`` rebuilds at full width.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence, Set

from repro.persistence.snapshot import SnapshotMismatchError
from repro.sharding.backends import (
    ShardBackend,
    ShardExecutionError,
    make_backend,
)
from repro.sharding.partitioner import PairPartitioner
from repro.sharding.reshard import reshard_worker_states
from repro.sharding.worker import ShardWorker

__all__ = ["RetryPolicy", "SupervisedBackend"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and an optional deadline.

    ``max_retries`` counts *recovery attempts* after the first failure;
    ``backoff(n)`` is the pause before attempt ``n`` (1-based), growing
    by ``backoff_factor`` and capped at ``backoff_max``. ``deadline``
    (seconds, measured on ``clock``) treats an operation that *succeeds
    too late* as a failure — a wedged worker is as dead as a crashed one.
    ``clock`` and ``sleep`` are injectable so tests advance fake time
    instead of waiting.
    """

    max_retries: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    deadline: Optional[float] = None
    clock: Callable[[], float] = time.monotonic
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff bounds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive when set")

    def backoff(self, attempt: int) -> float:
        """Pause before retry ``attempt`` (1-based), capped exponential."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(
            self.backoff_max,
            self.backoff_base * (self.backoff_factor ** (attempt - 1)),
        )


class SupervisedBackend(ShardBackend):
    """A self-healing wrapper over any shard execution backend.

    ``inner`` is a backend name or instance; ``checkpoint_dir`` (optional)
    lets recovery re-base from the on-disk checkpoint + delta journal when
    the journal provably covers a recorded drain point; ``max_log_ops``
    bounds the operation log (exceeding it forfeits exact replay in favor
    of the degraded N−1 path). The wrapper is transparent to the
    coordinator — same protocol, same bit-identical outputs — until a
    failure, when it retries under ``policy`` instead of propagating.
    """

    name = "supervised"

    def __init__(
        self,
        inner="serial",
        policy: Optional[RetryPolicy] = None,
        checkpoint_dir=None,
        max_log_ops: Optional[int] = None,
        **inner_kwargs,
    ) -> None:
        if isinstance(inner, str):
            inner = make_backend(inner, **inner_kwargs)
        elif inner_kwargs:
            raise ValueError(
                "inner backend kwargs are only accepted with a backend name"
            )
        if isinstance(inner, SupervisedBackend):
            raise ValueError("refusing to supervise a supervised backend")
        self._inner: ShardBackend = inner
        self.policy = policy or RetryPolicy()
        self._checkpoint_dir = checkpoint_dir
        self._max_log_ops = max_log_ops

        self.num_shards = 0
        self._live_shards = 0
        self._worker_config = None
        self._worker_vectorize: Optional[bool] = None
        self._base_states: Optional[List[Mapping]] = None
        self._armed = False
        self._armed_at_base = False
        self._log: List[tuple] = []
        self._log_truncated = False
        self._closed = False

        self._recovering: Set[int] = set()
        self._permanent: Optional[str] = None
        self._degraded = False
        self._routing: Optional[PairPartitioner] = None
        self._recoveries = 0
        self._retries = 0
        self._last_recovery: Optional[dict] = None
        self._last_known_health: List[dict] = []

        self._metric_recoveries = None
        self._metric_recovery_seconds = None
        self._metric_retries = None
        self._metric_backoff = None
        self._metric_permanent = None

    # -- identity ----------------------------------------------------------

    @property
    def inner_name(self) -> str:
        """The wrapped backend's name (``serial``/``threads``/``process``)."""
        return self._inner.name

    @property
    def start_method(self) -> Optional[str]:
        return getattr(self._inner, "start_method", None)

    # -- lifecycle ---------------------------------------------------------

    def start(self, workers: Sequence[ShardWorker]) -> None:
        workers = list(workers)
        if not workers:
            raise ValueError("supervised backend needs at least one worker")
        # Capture the rebuild recipe: fresh workers for a replacement pool
        # are constructed exactly like these (the evaluation path a worker
        # actually took pins the vectorize flag, environment unchanged).
        self._worker_config = workers[0].config
        self._worker_vectorize = (
            workers[0].evaluation_path == "vectorized"
        )
        self.num_shards = len(workers)
        self._live_shards = len(workers)
        self._inner.start(workers)
        self._closed = False
        self._degraded = False
        self._routing = None
        self._armed = False
        self._permanent = None
        self._recovering.clear()
        self._reset_log(base=None, armed=False)

    def bind_observability(self, observability) -> None:
        super().bind_observability(observability)
        self._inner.bind_observability(observability)
        if observability is not None and observability.enabled:
            registry = observability.registry
            self._metric_recoveries = registry.counter(
                "repro_sharding_recoveries_total")
            self._metric_recovery_seconds = registry.histogram(
                "repro_sharding_recovery_seconds")
            self._metric_retries = registry.counter(
                "repro_sharding_retry_attempts_total")
            self._metric_backoff = registry.counter(
                "repro_sharding_backoff_seconds_total")
            self._metric_permanent = registry.counter(
                "repro_sharding_permanent_failures_total")

    def bind_fault_plan(self, plan) -> None:
        self._fault_plan = plan
        self._inner.bind_fault_plan(plan)

    def close(self) -> None:
        self._closed = True
        self._inner.close()

    # -- the guarded protocol ---------------------------------------------

    def ingest(self, chunks: Sequence[List]) -> None:
        if self._degraded:
            chunks = self._reroute(chunks)
        self._guard("ingest", lambda b: b.ingest(chunks),
                    log=("ingest", chunks))

    def evaluate(self, timestamp, seeds, tag_counts, total_documents):
        # Copied at log time: under the threads backend the coordinator
        # hands over *live* references (its seed list, the window's
        # counts) that mutate as the stream advances — replay needs the
        # values as they were at this boundary.
        payload = (timestamp, list(seeds), dict(tag_counts),
                   int(total_documents))
        return self._guard("evaluate", lambda b: b.evaluate(*payload),
                           log=("evaluate", payload))

    def stats(self) -> List[dict]:
        return self._guard("stats", lambda b: b.stats())

    def collect_states(self) -> List[dict]:
        states = self._guard("collect_states", lambda b: b.collect_states())
        # A fresh full snapshot of every worker is a state-capture point:
        # the log restarts here.  (If delta tracking is armed, the workers'
        # un-drained buffers are not part of the snapshot — the arm flag is
        # remembered and re-arming on rebuild resets them, which matches
        # the engine's own re-base sequence: collect_states is immediately
        # followed by a fresh begin_delta_tracking.)
        self._reset_log(base=states, armed=self._armed)
        return states

    def restore_states(self, states: Sequence[Mapping]) -> None:
        states = [dict(state) for state in states]
        if self._degraded:
            # A full restore re-establishes the contracted width; rebuild
            # an undegraded pool for it first.
            self._rebuild_pool(self.num_shards, base=None, suffix=(),
                               armed=False)
            self._degraded = False
            self._routing = None
            self._live_shards = self.num_shards
        self._guard("restore_states", lambda b: b.restore_states(states))
        self._reset_log(base=states, armed=self._armed)

    def begin_delta_tracking(self) -> None:
        self._guard("begin_delta_tracking",
                    lambda b: b.begin_delta_tracking(),
                    log=("begin_delta", None))
        self._armed = True

    def end_delta_tracking(self) -> None:
        self._guard("end_delta_tracking", lambda b: b.end_delta_tracking(),
                    log=("end_delta", None))
        self._armed = False

    def collect_deltas(self, generation: int) -> List[dict]:
        if self._degraded:
            # The journal chain assumes a stable shard width; a degraded
            # pool cannot extend it.  Raising the mismatch makes the
            # cadence re-base (full snapshot) instead of appending lies.
            raise SnapshotMismatchError(
                "the shard pool is running degraded (N-1 re-shard); the "
                "delta journal cannot be extended until a full re-base"
            )
        # The generation is the journal segment this drain lands in — the
        # marker is how recovery aligns the on-disk chain with the log.
        return self._guard(
            "collect_deltas", lambda b: b.collect_deltas(generation),
            log=("drain", generation),
        )

    # -- health / introspection -------------------------------------------

    def health(self) -> List[dict]:
        if self._permanent is not None or self._recovering:
            return self._overlay_health()
        try:
            records = self._inner.health()
        except Exception:  # pragma: no cover - health must never raise
            return self._overlay_health()
        for record in records:
            record["recovering"] = False
        if records:
            self._last_known_health = [dict(r) for r in records]
        return records

    def _overlay_health(self) -> List[dict]:
        base = self._last_known_health or [
            {"shard": shard_id} for shard_id in range(self.num_shards)
        ]
        health = []
        for record in base:
            entry = dict(record)
            shard_id = entry.get("shard")
            if self._permanent is not None:
                entry["alive"] = False
                entry["recovering"] = False
            else:
                recovering = shard_id in self._recovering
                entry["recovering"] = recovering
                entry["alive"] = not recovering
            health.append(entry)
        return health

    def supervision_info(self) -> dict:
        """Supervisor state for ``/status`` and tests (cheap, lock-free)."""
        return {
            "supervised": True,
            "inner": self.inner_name,
            "recovering_shards": sorted(self._recovering),
            "permanent_failure": self._permanent,
            "recoveries": self._recoveries,
            "retries": self._retries,
            "degraded": self._degraded,
            "live_shards": self._live_shards,
            "log_ops": len(self._log),
            "last_recovery": self._last_recovery,
        }

    # -- the supervision loop ---------------------------------------------

    def _guard(self, operation: str, call, log: Optional[tuple] = None):
        if self._permanent is not None:
            raise ShardExecutionError(
                f"shard pool permanently failed: {self._permanent}")
        if self._closed:
            raise ShardExecutionError("backend is closed")
        policy = self.policy
        attempt = 0
        while True:
            started = policy.clock()
            failure: Optional[BaseException] = None
            failed_shard: Optional[int] = None
            try:
                result = call(self._inner)
            except ShardExecutionError as exc:
                failure = exc
                failed_shard = exc.shard_id
            else:
                elapsed = policy.clock() - started
                if policy.deadline is not None and elapsed > policy.deadline:
                    # Success past the deadline is a failure: a pool this
                    # slow is wedged, and the result may interleave with a
                    # retry — discard it with the pool.
                    failure = ShardExecutionError(
                        f"{operation} took {elapsed:.3f}s, past the "
                        f"{policy.deadline:.3f}s deadline; treating the "
                        f"pool as wedged"
                    )
                    try:
                        self._inner.close()
                    except Exception:  # pragma: no cover
                        pass
                else:
                    self._recovering.clear()
                    if log is not None:
                        self._append_log(log)
                    return result
            # -- failure path --
            if failed_shard is not None:
                self._recovering.add(failed_shard)
            attempt += 1
            self._retries += 1
            if self._metric_retries is not None:
                self._metric_retries.labels(operation=operation).inc()
            self._emit_log(
                "shard_retry",
                level="warning",
                operation=operation,
                attempt=attempt,
                shard=failed_shard,
                error=str(failure),
            )
            if attempt > policy.max_retries:
                self._escalate(operation, attempt - 1, failure,
                               shard=failed_shard)
            delay = policy.backoff(attempt)
            if delay > 0:
                if self._metric_backoff is not None:
                    self._metric_backoff.labels(
                        operation=operation).inc(delay)
                policy.sleep(delay)
            try:
                self._recover(failed_shard)
            except ShardExecutionError:
                # Recovery itself hit a shard failure (e.g. the replayed
                # log re-poisons a worker, or the fault plan strikes
                # again).  Loop: the next iteration's call fails fast on
                # the closed inner, burning attempts until the budget
                # escalates — deterministic, never infinite.
                continue
            except Exception as exc:
                # Anything else (corrupt checkpoint, unpartitionable
                # state) means no recovery source exists: escalate now.
                self._escalate(operation, attempt, exc, shard=failed_shard)

    def _escalate(self, operation: str, attempts: int,
                  failure: Optional[BaseException],
                  shard: Optional[int] = None) -> None:
        self._permanent = (
            f"{operation} failed after {attempts} recovery attempt(s): "
            f"{failure}"
        )
        self._recovering.clear()
        if self._metric_permanent is not None:
            self._metric_permanent.inc()
        self._emit_log(
            "permanent_failure",
            level="error",
            operation=operation,
            attempts=attempts,
            shard=shard,
            error=str(failure),
        )
        try:
            self._inner.close()
        except Exception:  # pragma: no cover
            pass
        raise ShardExecutionError(self._permanent) from failure

    def _recover(self, failed_shard: Optional[int]) -> None:
        observability = self._observability
        tracer = observability.tracer if observability is not None else None
        started = self.policy.clock()
        span = tracer.span("recovery") if tracer is not None else None
        try:
            if span is not None:
                span.__enter__()
            try:
                self._inner.close()
            except Exception:  # pragma: no cover
                pass
            source = self._recovery_source()
            if source is None:
                self._recover_degraded(failed_shard)
            else:
                base, suffix, armed, origin = source
                width = len(base) if base is not None else self._live_shards
                self._rebuild_pool(width, base, suffix, armed)
                self._last_recovery = {
                    "source": origin,
                    "replayed_ops": len(suffix),
                    "shards": width,
                }
            self._recovering.clear()
            self._recoveries += 1
            if self._metric_recoveries is not None:
                self._metric_recoveries.inc()
            if self._metric_recovery_seconds is not None:
                self._metric_recovery_seconds.observe(
                    self.policy.clock() - started)
            # Emitted while the recovery span is still open, so the
            # record carries its trace id — the /logs ↔ /trace join the
            # chaos smoke asserts.
            self._emit_log(
                "recovery",
                level="warning",
                shard=failed_shard,
                recoveries=self._recoveries,
                **(self._last_recovery or {"source": "degraded"}),
            )
        finally:
            if span is not None:
                span.__exit__(None, None, None)

    def _emit_log(self, event: str, level: str = "info", **fields) -> None:
        observability = self._observability
        if observability is not None:
            observability.log.emit(
                event, level=level,
                **{key: value for key, value in fields.items()
                   if value is not None},
            )

    def _recovery_source(self):
        """Pick ``(base, suffix, armed, origin)`` for an exact rebuild.

        Preference order: the on-disk checkpoint when its folded journal
        generation matches a recorded drain marker (the log after the
        marker is exactly what disk is missing), else the in-memory base
        plus the full log.  None → no exact source (truncated log), the
        caller degrades.
        """
        log = list(self._log)
        if self._checkpoint_dir is not None:
            try:
                from repro.persistence.store import read_checkpoint

                manifest, state = read_checkpoint(self._checkpoint_dir)
                restored = manifest.get("restored_generation")
                shards = state.get("shards")
                cut = None
                if restored is not None and shards:
                    for index in range(len(log) - 1, -1, -1):
                        entry = log[index]
                        if entry[0] == "drain" and entry[1] == restored:
                            cut = index
                            break
                if cut is not None:
                    if len(shards) != self._live_shards:
                        shards = reshard_worker_states(
                            shards, self._live_shards)
                    # A drain only happens while armed; disk state ends at
                    # that drain, so the rebuilt pool re-arms before the
                    # suffix replays.
                    return shards, log[cut + 1:], True, "checkpoint"
            except Exception:
                # Unreadable/corrupt checkpoint never blocks recovery —
                # the in-memory source below still works.
                pass
        if self._log_truncated:
            return None
        return self._base_states, log, self._armed_at_base, "memory"

    def _rebuild_pool(self, width: int, base, suffix: Sequence[tuple],
                      armed: bool) -> None:
        inner = self._clone_inner()
        if self._fault_plan is not None:
            inner.bind_fault_plan(self._fault_plan)
        workers = [
            ShardWorker(shard_id, self._worker_config,
                        vectorize=self._worker_vectorize)
            for shard_id in range(width)
        ]
        try:
            inner.start(workers)
            if self._observability is not None:
                inner.bind_observability(self._observability)
            if base is not None:
                inner.restore_states(base)
            if armed:
                inner.begin_delta_tracking()
            for entry in suffix:
                kind, payload = entry
                if kind == "ingest":
                    inner.ingest(payload)
                elif kind == "evaluate":
                    inner.evaluate(*payload)
                elif kind == "begin_delta":
                    inner.begin_delta_tracking()
                elif kind == "end_delta":
                    inner.end_delta_tracking()
                elif kind == "drain":
                    # Replayed for its buffer-reset side effect; the
                    # drained events were already journaled pre-crash.
                    inner.collect_deltas(payload)
        except BaseException:
            # A rebuild that dies mid-replay must not leak its half-built
            # pool (worker processes/threads) on top of the dead one.
            try:
                inner.close()
            except Exception:  # pragma: no cover
                pass
            raise
        self._inner = inner

    def _clone_inner(self) -> ShardBackend:
        cls = type(self._inner)
        start_method = getattr(self._inner, "start_method", None)
        if start_method is not None:
            return cls(start_method=start_method)
        return cls()

    def _recover_degraded(self, failed_shard: Optional[int]) -> None:
        base = self._base_states
        if base is None or failed_shard is None:
            raise ShardExecutionError(
                "no exact recovery source (operation log truncated, no "
                "matching checkpoint chain) and no survivor states to "
                "re-shard; cannot recover"
            )
        survivors = [
            state for shard_id, state in enumerate(base)
            if shard_id != failed_shard
        ]
        if not survivors:
            raise ShardExecutionError(
                "no surviving shard state to re-shard; cannot recover"
            )
        width = len(survivors)
        states = reshard_worker_states(survivors, width)
        self._rebuild_pool(width, states, (), False)
        self._degraded = True
        self._live_shards = width
        self._routing = PairPartitioner(width)
        self._armed = False
        self._reset_log(base=states, armed=False)
        self._last_recovery = {
            "source": "degraded",
            "replayed_ops": 0,
            "shards": width,
        }

    def _reroute(self, chunks: Sequence[List]) -> List[List]:
        """Re-split coordinator chunks (cut for ``num_shards``) across the
        contracted pool, preserving global timestamp order."""
        routing = self._routing
        rerouted: List[List] = [[] for _ in range(self._live_shards)]
        for timestamp, pairs in heapq.merge(
                *chunks, key=lambda event: event[0]):
            split: dict = {}
            for pair in pairs:
                split.setdefault(routing.shard_of(pair), []).append(pair)
            for shard_id, routed in split.items():
                rerouted[shard_id].append((timestamp, tuple(routed)))
        return rerouted

    # -- log bookkeeping ---------------------------------------------------

    def _reset_log(self, base, armed: bool) -> None:
        self._base_states = base
        self._armed_at_base = armed
        self._log = []
        self._log_truncated = False

    def _append_log(self, entry: tuple) -> None:
        if (self._max_log_ops is not None
                and len(self._log) >= self._max_log_ops):
            # Beyond the cap the log stops being a complete suffix: exact
            # in-memory replay is forfeit (drain markers that survive can
            # still anchor a checkpoint-based rebuild).
            self._log = []
            self._log_truncated = True
        self._log.append(entry)
