"""The per-shard unit of the scatter-gather detection engine.

A :class:`ShardWorker` owns the pair-restricted state of one shard: a
:class:`~repro.core.tracker.CorrelationTracker` fed through its pair-event
path (so it maintains the shard's slice of the windowed pair counts, the
:class:`~repro.core.candidates.CandidateIndex` postings and the per-pair
correlation histories), a :class:`~repro.core.shift.ShiftDetector` holding
the decayed shift scores of the shard's pairs, and a
:class:`~repro.core.ranking.RankingBuilder` that turns one evaluation's
scores into the shard's local top-k.

Because every pair lives in exactly one shard
(:class:`~repro.sharding.partitioner.PairPartitioner` is a pure function of
the canonical pair), the worker's computations are exactly the ones the
single engine would have performed for those pairs — same inputs, same
floating-point operations — which is what makes the gathered ranking
bit-identical.  Workers hold only plain-Python state (dicts, deques,
dataclasses), so they pickle cleanly into worker processes.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Mapping, Optional, Tuple

from repro.core.config import EnBlogueConfig
from repro.core.engine import make_shift_detector, make_tracker
from repro.core.ranking import RankingBuilder
from repro.core.shift import ShiftScore
from repro.core.types import EmergentTopic, TagPair
from repro.core.vectorized import make_fused_evaluator
from repro.persistence.snapshot import require_compatible, require_state

#: One pair-restricted document event: ``(timestamp, pairs-of-this-shard)``.
ShardEvent = Tuple[float, Tuple[TagPair, ...]]


class ShardWorker:
    """Pair-restricted tracker + shift detector + local top-k for one shard."""

    def __init__(
        self,
        shard_id: int,
        config: EnBlogueConfig,
        vectorize: Optional[bool] = None,
    ):
        if shard_id < 0:
            raise ValueError("shard_id must be non-negative")
        self.shard_id = int(shard_id)
        self.config = config
        # Usage tracking is off: co-tag usage distributions are computed over
        # whole documents, which shards never see — the coordinator rejects
        # the one measure ("kl") that needs them.
        self.tracker = make_tracker(
            config, track_usage=False, vectorize=vectorize
        )
        self.detector = make_shift_detector(config)
        self.builder = RankingBuilder(top_k=config.top_k)
        # Fused batched evaluation over this shard's pair slice (None →
        # scalar path); columnar mirrors pickle with the worker and rebuild
        # lazily after a restore.
        self._fused = make_fused_evaluator(
            self.tracker, self.detector, self.builder, enabled=vectorize
        )
        # Worker-side telemetry: stage timings and structured log
        # records accumulate here (bounded) and are drained by the
        # backend — piggybacked on pipe replies for process workers —
        # so the coordinator's /metrics and /logs cover the inside of
        # every shard, not just dispatch totals.
        self._stage_timings: List[Tuple[str, float]] = []
        self._pending_logs: List[dict] = []
        self._clock = time.perf_counter

    # -- telemetry ------------------------------------------------------------

    #: Bound on buffered telemetry between drains; drains happen at
    #: every sync point, so hitting the cap means nobody is listening
    #: (a NOOP coordinator) and old entries are dropped oldest-first.
    TELEMETRY_CAPACITY = 512

    def _record_stage(self, stage: str, seconds: float) -> None:
        timings = self._stage_timings
        timings.append((stage, seconds))
        if len(timings) > self.TELEMETRY_CAPACITY:
            del timings[: len(timings) - self.TELEMETRY_CAPACITY]

    def log_event(self, event: str, level: str = "info", **fields) -> None:
        """Queue one structured record for the coordinator's event log."""
        logs = self._pending_logs
        record = {"event": event, "level": level}
        record.update(fields)
        logs.append(record)
        if len(logs) > self.TELEMETRY_CAPACITY:
            del logs[: len(logs) - self.TELEMETRY_CAPACITY]

    def drain_telemetry(self) -> Optional[dict]:
        """Pending stage timings + log records, cleared; None when empty."""
        if not self._stage_timings and not self._pending_logs:
            return None
        telemetry = {}
        if self._stage_timings:
            telemetry["stages"] = self._stage_timings
            self._stage_timings = []
        if self._pending_logs:
            telemetry["logs"] = self._pending_logs
            self._pending_logs = []
        return telemetry

    @property
    def evaluation_path(self) -> str:
        """``"vectorized"`` when the fused batched path is live."""
        return "vectorized" if self._fused is not None else "scalar"

    # -- ingestion ------------------------------------------------------------

    def ingest(self, events: Iterable[ShardEvent]) -> int:
        """Ingest a time-ordered chunk of this shard's pair events."""
        started = self._clock()
        count = self.tracker.observe_pair_events(events)
        self._record_stage("ingest", self._clock() - started)
        return count

    def advance_to(self, timestamp: float) -> None:
        """Move the shard's window forward without ingesting events."""
        self.tracker.advance_to(timestamp)

    # -- evaluation -----------------------------------------------------------

    def evaluate(
        self,
        timestamp: float,
        seeds: Iterable[str],
        tag_counts: Mapping[str, int],
        total_documents: int,
    ) -> List[EmergentTopic]:
        """Score this shard's candidates and return its local top-k topics.

        ``seeds``, ``tag_counts`` and ``total_documents`` are the global
        statistics broadcast by the coordinator.  Mirrors the scoring loop
        of :meth:`repro.core.engine.EnBlogue._evaluate` exactly: sample each
        candidate's correlation, hand the predictor the values *preceding*
        the one just appended, fold the prediction error into the decayed
        maximum, then let the builder admit decayed past pairs absent from
        the current observations.  The returned list is sorted by
        :func:`~repro.core.ranking.topic_sort_key`, ready for the
        coordinator's k-way merge.
        """
        started = self._clock()
        try:
            if self._fused is not None:
                # Same boundary protocol as sample_candidates (advance +
                # evict), then one batched pass over the candidate slice.
                self.tracker.advance_to(timestamp)
                return self._fused.evaluate(
                    timestamp, seeds, tag_counts, total_documents
                )
            observations = self.tracker.sample_candidates(
                timestamp, seeds, tag_counts, total_documents
            )
            shift_scores: List[ShiftScore] = []
            for observation in observations:
                previous = \
                    self.tracker.history(observation.pair).previous_values()
                shift_scores.append(
                    self.detector.update(observation, previous)
                )
            return self.builder.top_topics(
                timestamp, shift_scores, detector=self.detector
            )
        finally:
            self._record_stage("evaluate", self._clock() - started)

    # -- persistence ----------------------------------------------------------

    #: Snapshot envelope of one shard's state (see ``repro.persistence``).
    SNAPSHOT_KIND = "shard-worker"

    def snapshot(self) -> dict:
        """This shard's complete state as a versioned, JSON-safe dict.

        Every entry is keyed (directly or transitively) by a canonical
        pair, which is what lets
        :func:`~repro.sharding.reshard.reshard_worker_states` re-route a
        checkpoint into a different shard count through the partitioner.
        """
        return {
            "kind": self.SNAPSHOT_KIND,
            "version": 1,
            "shard_id": self.shard_id,
            "tracker": self.tracker.snapshot(),
            "detector": self.detector.snapshot(),
            "builder": self.builder.snapshot(),
        }

    def restore(self, state: Mapping) -> None:
        """Replace this shard's state with a :meth:`snapshot`'s.

        The state must be addressed to this shard id — a re-partitioned
        checkpoint carries freshly assigned ids, so a mismatch means the
        caller wired states to the wrong workers.
        """
        require_state(state, self.SNAPSHOT_KIND, 1)
        require_compatible(
            self.SNAPSHOT_KIND, {"shard_id": self.shard_id}, state
        )
        self.tracker.restore(state["tracker"])
        self.detector.restore(state["detector"])
        self.builder.restore(state["builder"])
        # Restores happen at resume and during supervised recovery; the
        # queued record surfaces in the coordinator's /logs trail either
        # way (during a recovery it lands inside the recovery trace).
        self.log_event(
            "shard_restore", live_pairs=self.live_pairs(),
        )

    def begin_delta_tracking(self) -> None:
        """Arm delta recording in the shard's tracker/detector/builder."""
        self.tracker.begin_delta_tracking()
        self.detector.begin_delta_tracking()
        self.builder.begin_delta_tracking()

    def end_delta_tracking(self) -> None:
        """Disarm delta recording and drop any buffered deltas."""
        self.tracker.end_delta_tracking()
        self.detector.end_delta_tracking()
        self.builder.end_delta_tracking()

    def delta_since(self, generation: int) -> dict:
        """This shard's changes since the last base snapshot/drain.

        The journal-segment companion of :meth:`snapshot`, folded back by
        :func:`repro.persistence.delta.apply_worker_delta`; because a
        shard tracker ingests only pair events, the delta is dominated by
        the shard's slice of the new documents' pairs.
        """
        return {
            "kind": "shard-worker-delta",
            "version": 1,
            "since": int(generation),
            "shard_id": self.shard_id,
            "tracker": self.tracker.delta_since(generation),
            "detector": self.detector.delta_since(generation),
            "builder": self.builder.delta_since(generation),
        }

    # -- introspection --------------------------------------------------------

    def live_pairs(self) -> int:
        """Distinct pairs currently inside this shard's window."""
        return len(self.tracker.candidate_index)

    def stats(self) -> dict:
        """Summary counters (for logs, benchmarks and smoke checks)."""
        return {
            "shard_id": self.shard_id,
            "events": self.tracker.documents_seen,
            "live_pairs": self.live_pairs(),
            "scored_pairs": len(self.detector.scored_pairs()),
            "evaluation_path": self.evaluation_path,
        }
