"""Sharded scatter-gather execution of the detection pipeline.

The single :class:`~repro.core.engine.EnBlogue` engine tracks every
windowed tag pair in one process; this subsystem partitions the pair space
across shards so ingest and evaluation scale horizontally while the
published rankings stay **bit-identical** to the single engine:

* :class:`PairPartitioner` — stable (process-independent) hash of the
  canonical pair to a shard id,
* :class:`ShardWorker` — one shard's pair-restricted tracker, shift
  detector and local top-k,
* :class:`SerialBackend` / :class:`ProcessBackend` — pluggable execution
  (in-process reference vs. one worker process per shard),
* :class:`ShardedEnBlogue` — the coordinator: decomposes each document
  once, keeps the global tag-frequency window, routes per-shard pair
  chunks, broadcasts seeds and counts at each boundary and k-way-merges
  the shards' top-k lists.
"""

from repro.sharding.backends import (
    DEFAULT_START_METHOD,
    ProcessBackend,
    SerialBackend,
    ShardBackend,
    ShardExecutionError,
    available_backends,
    make_backend,
)
from repro.sharding.engine import ShardedEnBlogue
from repro.sharding.partitioner import PairPartitioner
from repro.sharding.reshard import reshard_worker_states
from repro.sharding.supervision import RetryPolicy, SupervisedBackend
from repro.sharding.worker import ShardWorker

__all__ = [
    "PairPartitioner",
    "ShardWorker",
    "ShardBackend",
    "SerialBackend",
    "ProcessBackend",
    "ShardExecutionError",
    "DEFAULT_START_METHOD",
    "available_backends",
    "make_backend",
    "reshard_worker_states",
    "RetryPolicy",
    "SupervisedBackend",
    "ShardedEnBlogue",
]
