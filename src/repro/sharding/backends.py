"""Pluggable execution backends for the sharded detection engine.

The coordinator talks to its shard workers through a minimal scatter-gather
protocol — ``ingest`` (fire-and-forget, chunked), ``evaluate`` (synchronous
broadcast + gather) and ``close`` — and the backend decides where the
workers live:

* :class:`SerialBackend` keeps them in-process and calls them directly.
  It is the deterministic reference implementation: tests establish
  bit-identical equivalence against the single engine here, and the
  process backend is then held to the same output.
* :class:`ProcessBackend` gives each shard its own worker process.  The
  worker state (all plain-Python, picklable) is shipped once at start-up;
  afterwards only pair-event chunks flow down and local top-k lists flow
  back.  Ingest messages need no acknowledgement — pipes are FIFO, so an
  ``evaluate`` request observes every chunk sent before it — which lets
  the coordinator keep decomposing and routing documents while workers
  ingest in parallel.  A worker that fails during ingest remembers the
  failure and reports it at the next synchronisation point.
* :class:`ThreadBackend` gives each shard its own worker *thread*, fed
  through an in-process deque — zero serialization in either direction:
  payloads (event chunks, the broadcast tag counts, result topic lists)
  are passed by reference.  On GIL builds the threads interleave, but the
  pickling tax of the process backend disappears for the dispatch half;
  on free-threaded builds the shards genuinely run in parallel.  Error
  semantics mirror the process backend exactly (sticky ingest failures
  surfacing at the next synchronisation point).
"""

from __future__ import annotations

import multiprocessing
import threading
import time
import traceback
from collections import deque
from typing import Deque, List, Mapping, Optional, Sequence, Tuple

from repro.core.types import EmergentTopic
from repro.persistence.snapshot import SnapshotMismatchError
from repro.sharding.worker import ShardEvent, ShardWorker

#: The pinned multiprocessing start method.  "spawn" is the only method
#: available on every platform and the only one whose workers start from a
#: clean interpreter, so worker behavior — and therefore restored
#: checkpoint state — is identical on Linux and macOS.  Tests that churn
#: through many short-lived pools may override it with the cheaper "fork"
#: where available; production deployments should keep the default.
DEFAULT_START_METHOD = "spawn"


class ShardExecutionError(RuntimeError):
    """A shard worker failed; carries the worker-side traceback text.

    ``shard_id`` names the shard whose worker failed when the backend
    knows it (None for pool-wide failures such as a closed backend) —
    the supervision layer uses it to report *which* shard is recovering.
    """

    def __init__(self, message: str, shard_id: Optional[int] = None):
        super().__init__(message)
        self.shard_id = shard_id


#: Counter families a shard failure lands in, by failure kind.
_FAILURE_METRICS = {
    "ingest": "repro_sharding_ingest_failures_total",
    "failure": "repro_sharding_worker_failures_total",
    "dead": "repro_sharding_dead_workers_total",
}


class ShardBackend:
    """Interface: execute shard workers and the scatter-gather protocol.

    Every backend also keeps *coordinator-side* per-shard health records —
    pair events dispatched, dispatch count, last dispatch latency, sticky
    ingest failure — as plain dicts, so :meth:`health` works (and stays
    non-blocking) with or without an observability bundle attached.  When
    :meth:`bind_observability` hands one over, the same events additionally
    feed the ``repro_sharding_*`` metric families.
    """

    name = "base"

    _observability = None
    _health_records: Optional[List[dict]] = None
    _metric_dispatch: Optional[List] = None
    _metric_events: Optional[List] = None
    _metric_shard_stage: Optional[List[dict]] = None
    _shard_stage_family = None
    _clock = staticmethod(time.perf_counter)
    #: Bound fault-injection plan (tests/chaos only).  The hook sites all
    #: guard with ``if self._fault_plan is not None`` so the production
    #: cost of the harness is one attribute test per dispatch/gather.
    _fault_plan = None

    def start(self, workers: Sequence[ShardWorker]) -> None:
        raise NotImplementedError

    def bind_fault_plan(self, plan) -> None:
        """Attach a :class:`repro.faults.FaultPlan` (None detaches)."""
        self._fault_plan = plan
        self._bind_fault_log()

    def _bind_fault_log(self) -> None:
        # Fired drills document themselves in the event log, so the
        # chaos-smoke job can assert the injection → recovery trail.
        plan, observability = self._fault_plan, self._observability
        if plan is not None and observability is not None \
                and hasattr(plan, "bind_log"):
            plan.bind_log(observability.log)

    # -- health / metrics ------------------------------------------------------

    def bind_observability(self, observability) -> None:
        """Attach an observability bundle; per-shard metrics mirror health."""
        self._observability = observability
        if observability is not None:
            self._clock = observability.clock
        self._bind_metrics()
        self._bind_fault_log()

    def health(self) -> List[dict]:
        """Per-shard health, without synchronising with the workers.

        Unlike :meth:`stats` (a sync point that round-trips every worker),
        this reads only coordinator-side records plus liveness and queue
        depth — safe to call from a serving event loop even while a shard
        is wedged.  ``alive: False`` is what flips ``GET /status`` to 503.
        """
        records = self._health_records or []
        health = []
        for shard_id, record in enumerate(records):
            entry = dict(record)
            entry["alive"] = self._shard_alive(shard_id)
            entry["queue_depth"] = self._shard_queue_depth(shard_id)
            health.append(entry)
        return health

    def _init_health(self, shards: int) -> None:
        self._health_records = [
            {
                "shard": shard_id,
                "pair_events": 0,
                "dispatches": 0,
                "last_dispatch_us": 0.0,
                "ingest_failed": False,
            }
            for shard_id in range(shards)
        ]
        self._bind_metrics()

    def _bind_metrics(self) -> None:
        observability = self._observability
        records = self._health_records
        if observability is None or not observability.enabled \
                or records is None:
            self._metric_dispatch = None
            self._metric_events = None
            self._metric_shard_stage = None
            self._shard_stage_family = None
            return
        registry = observability.registry
        dispatch = registry.histogram("repro_sharding_dispatch_seconds")
        events = registry.counter("repro_sharding_pair_events_total")
        self._metric_dispatch = [
            dispatch.labels(shard=str(shard_id))
            for shard_id in range(len(records))
        ]
        self._metric_events = [
            events.labels(shard=str(shard_id))
            for shard_id in range(len(records))
        ]
        # Worker-side stage timings, shipped back by every backend's
        # telemetry drain; children are pre-built for the known stages
        # so the merge path is two dict hits per entry.
        stage = registry.histogram("repro_sharding_shard_stage_seconds")
        self._shard_stage_family = stage
        self._metric_shard_stage = [
            {
                name: stage.labels(shard=str(shard_id), stage=name)
                for name in ("ingest", "evaluate")
            }
            for shard_id in range(len(records))
        ]
        # Queue depth is a live read at scrape time, not a maintained
        # count — always exact, never drifts (0 for non-mailbox backends).
        depth = registry.gauge("repro_sharding_queue_depth")
        for shard_id in range(len(records)):
            depth.labels(shard=str(shard_id)).set_function(
                lambda sid=shard_id: self._shard_queue_depth(sid)
            )

    def _record_dispatch(self, shard_id: int, events: int,
                         seconds: float) -> None:
        records = self._health_records
        if records is not None and 0 <= shard_id < len(records):
            record = records[shard_id]
            record["pair_events"] += events
            record["dispatches"] += 1
            record["last_dispatch_us"] = round(seconds * 1e6, 3)
        if self._metric_dispatch is not None:
            self._metric_dispatch[shard_id].observe(seconds)
            self._metric_events[shard_id].inc(events)

    def _record_failure(self, shard_id: int, kind: str) -> None:
        records = self._health_records
        if kind == "ingest" and records is not None \
                and 0 <= shard_id < len(records):
            records[shard_id]["ingest_failed"] = True
        observability = self._observability
        if observability is not None and observability.enabled:
            observability.registry.counter(_FAILURE_METRICS[kind]) \
                .labels(shard=str(shard_id)).inc()

    def _merge_telemetry(self, shard_id: int,
                         telemetry: Optional[Mapping]) -> None:
        """Fold one shard's drained telemetry into coordinator families.

        ``telemetry`` is what :meth:`ShardWorker.drain_telemetry`
        returned — stage timings land in
        ``repro_sharding_shard_stage_seconds{shard=,stage=}``, queued
        log records are re-stamped into the coordinator's event log with
        their shard id attached.
        """
        if not telemetry:
            return
        children = self._metric_shard_stage
        if children is not None and 0 <= shard_id < len(children):
            shard_children = children[shard_id]
            for stage, seconds in telemetry.get("stages", ()):
                child = shard_children.get(stage)
                if child is None:
                    child = self._shard_stage_family.labels(
                        shard=str(shard_id), stage=stage
                    )
                    shard_children[stage] = child
                child.observe(seconds)
        observability = self._observability
        if observability is not None and observability.enabled:
            for record in telemetry.get("logs", ()):
                observability.log.merge(record, shard=shard_id)

    def _shard_alive(self, shard_id: int) -> bool:
        return not getattr(self, "_closed", False)

    def _shard_queue_depth(self, shard_id: int) -> int:
        return 0

    def ingest(self, chunks: Sequence[List[ShardEvent]]) -> None:
        """Dispatch one chunk of pair events per shard (empty chunks skipped)."""
        raise NotImplementedError

    def evaluate(
        self,
        timestamp: float,
        seeds: Sequence[str],
        tag_counts: Mapping[str, int],
        total_documents: int,
    ) -> List[List[EmergentTopic]]:
        """Broadcast the globals, gather every shard's local top-k."""
        raise NotImplementedError

    def stats(self) -> List[dict]:
        raise NotImplementedError

    def collect_states(self) -> List[dict]:
        """Gather every shard worker's snapshot, in shard order.

        A synchronisation point like ``evaluate``: the returned states
        reflect every ingest chunk dispatched before the call.
        """
        raise NotImplementedError

    def restore_states(self, states: Sequence[Mapping]) -> None:
        """Restore one snapshot per shard worker, in shard order."""
        raise NotImplementedError

    def begin_delta_tracking(self) -> None:
        """Arm delta recording in every shard worker (journal checkpoints)."""
        raise NotImplementedError

    def end_delta_tracking(self) -> None:
        """Disarm delta recording in every shard worker."""
        raise NotImplementedError

    def collect_deltas(self, generation: int) -> List[dict]:
        """Drain every shard worker's delta, in shard order.

        A synchronisation point like ``collect_states``: the returned
        deltas reflect every ingest chunk dispatched before the call.
        """
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def _require_state_per_shard(self, states: Sequence, shards: int) -> None:
        if len(states) != shards:
            raise SnapshotMismatchError(
                f"backend runs {shards} shard(s) but {len(states)} shard "
                f"state(s) were offered; re-partition the checkpoint first "
                f"(see repro.sharding.reshard)"
            )


class SerialBackend(ShardBackend):
    """In-process reference backend: direct calls, fully deterministic."""

    name = "serial"

    def __init__(self) -> None:
        self.workers: List[ShardWorker] = []
        self._closed = False

    def start(self, workers: Sequence[ShardWorker]) -> None:
        self.workers = list(workers)
        self._closed = False
        self._init_health(len(self.workers))

    def ingest(self, chunks: Sequence[List[ShardEvent]]) -> None:
        self._ensure_open()
        clock = self._clock
        for shard_id, (worker, events) in enumerate(
                zip(self.workers, chunks)):
            if events:
                start = clock()
                try:
                    worker.ingest(events)
                except Exception:
                    # In-process workers fail synchronously (no sticky
                    # deferral): record, then let the error propagate.
                    self._record_failure(shard_id, "ingest")
                    raise
                self._record_dispatch(shard_id, len(events), clock() - start)
                self._merge_telemetry(shard_id, worker.drain_telemetry())

    def evaluate(self, timestamp, seeds, tag_counts, total_documents):
        self._ensure_open()
        results = []
        for shard_id, worker in enumerate(self.workers):
            results.append(
                worker.evaluate(timestamp, seeds, tag_counts, total_documents)
            )
            self._merge_telemetry(shard_id, worker.drain_telemetry())
        return results

    def stats(self) -> List[dict]:
        self._ensure_open()
        return [worker.stats() for worker in self.workers]

    def collect_states(self) -> List[dict]:
        self._ensure_open()
        return [worker.snapshot() for worker in self.workers]

    def restore_states(self, states: Sequence[Mapping]) -> None:
        self._ensure_open()
        self._require_state_per_shard(states, len(self.workers))
        for shard_id, (worker, state) in enumerate(zip(self.workers, states)):
            worker.restore(state)
            self._merge_telemetry(shard_id, worker.drain_telemetry())

    def begin_delta_tracking(self) -> None:
        self._ensure_open()
        for worker in self.workers:
            worker.begin_delta_tracking()

    def end_delta_tracking(self) -> None:
        self._ensure_open()
        for worker in self.workers:
            worker.end_delta_tracking()

    def collect_deltas(self, generation: int) -> List[dict]:
        self._ensure_open()
        return [worker.delta_since(generation) for worker in self.workers]

    def close(self) -> None:
        self._closed = True
        self.workers = []

    def _ensure_open(self) -> None:
        # A closed backend must fail loudly: silently dropping chunks or
        # returning empty evaluations would publish bogus empty rankings.
        if self._closed:
            raise ShardExecutionError("backend is closed")


def _shard_loop(worker: ShardWorker, connection) -> None:
    """Request loop of one shard process.

    Ingest requests carry no reply; request/reply operations (``evaluate``,
    ``stats``) answer ``("ok", value, telemetry)`` or ``("error",
    traceback)``.  The third element piggybacks the worker's drained
    stage timings and queued log records on the reply the coordinator
    was reading anyway — in-shard telemetry ships for free, with no
    extra pipe round-trip (ingest telemetry rides the next sync point,
    by the same FIFO argument the protocol already rests on).  An
    ingest failure is remembered and surfaces at the next reply, so the
    coordinator's fire-and-forget dispatch cannot silently lose an error.
    """
    failure: Optional[str] = None

    def reply_ok(value) -> None:
        connection.send(("ok", value, worker.drain_telemetry()))

    while True:
        try:
            operation, payload = connection.recv()
        except EOFError:
            break
        if operation == "stop":
            break
        if operation == "ingest":
            if failure is None:
                try:
                    worker.ingest(payload)
                except Exception:
                    failure = traceback.format_exc()
        elif failure is not None:
            connection.send(("error", failure))
        elif operation == "evaluate":
            try:
                reply_ok(worker.evaluate(*payload))
            except Exception:
                failure = traceback.format_exc()
                connection.send(("error", failure))
        elif operation == "stats":
            try:
                reply_ok(worker.stats())
            except Exception:
                failure = traceback.format_exc()
                connection.send(("error", failure))
        elif operation == "collect_state":
            try:
                reply_ok(worker.snapshot())
            except Exception:
                failure = traceback.format_exc()
                connection.send(("error", failure))
        elif operation == "begin_delta":
            try:
                worker.begin_delta_tracking()
                reply_ok(None)
            except Exception:
                failure = traceback.format_exc()
                connection.send(("error", failure))
        elif operation == "end_delta":
            try:
                worker.end_delta_tracking()
                reply_ok(None)
            except Exception:
                failure = traceback.format_exc()
                connection.send(("error", failure))
        elif operation == "collect_delta":
            try:
                reply_ok(worker.delta_since(payload))
            except Exception:
                failure = traceback.format_exc()
                connection.send(("error", failure))
        elif operation == "restore_state":
            try:
                worker.restore(payload)
                reply_ok(None)
            except Exception:
                failure = traceback.format_exc()
                connection.send(("error", failure))
        else:
            connection.send(("error", f"unknown operation {operation!r}"))
    connection.close()


class ProcessBackend(ShardBackend):
    """One worker process per shard, connected by a duplex pipe.

    ``start_method`` selects the :mod:`multiprocessing` context and is
    pinned to :data:`DEFAULT_START_METHOD` (``"spawn"``) rather than the
    platform default, so a checkpoint restored on macOS behaves exactly
    like the Linux run that wrote it.  The picklable worker state is
    shipped to each child at start-up; pass ``start_method="fork"`` to
    trade that portability for cheaper start-up (tests do).
    """

    name = "process"

    def __init__(self, start_method: Optional[str] = None):
        self._start_method = start_method or DEFAULT_START_METHOD
        self._processes: List[multiprocessing.Process] = []
        self._pipes: List = []
        self._closed = False

    @property
    def start_method(self) -> str:
        """The multiprocessing start method workers are launched with."""
        return self._start_method

    def start(self, workers: Sequence[ShardWorker]) -> None:
        self._closed = False
        context = multiprocessing.get_context(self._start_method)
        for worker in workers:
            parent_end, child_end = context.Pipe(duplex=True)
            process = context.Process(
                target=_shard_loop,
                args=(worker, child_end),
                name=f"enblogue-shard-{worker.shard_id}",
                daemon=True,
            )
            process.start()
            child_end.close()
            self._pipes.append(parent_end)
            self._processes.append(process)
        self._init_health(len(self._processes))

    def ingest(self, chunks: Sequence[List[ShardEvent]]) -> None:
        self._ensure_open()
        clock = self._clock
        for shard_id, (pipe, events) in enumerate(zip(self._pipes, chunks)):
            if events:
                # Dispatch latency here is the pickle+pipe.send cost — the
                # coordinator-side price of the process protocol, which is
                # exactly what the threads backend eliminates.
                start = clock()
                self._send(shard_id, pipe, ("ingest", events))
                self._record_dispatch(shard_id, len(events), clock() - start)

    def evaluate(self, timestamp, seeds, tag_counts, total_documents):
        self._ensure_open()
        payload = (timestamp, list(seeds), dict(tag_counts), total_documents)
        # Scatter to every shard first so they all compute concurrently,
        # then gather in shard order (the merge needs a fixed order anyway).
        for shard_id, pipe in enumerate(self._pipes):
            self._send(shard_id, pipe, ("evaluate", payload))
        return self._gather("evaluate")

    def stats(self) -> List[dict]:
        self._ensure_open()
        for shard_id, pipe in enumerate(self._pipes):
            self._send(shard_id, pipe, ("stats", None))
        return self._gather("stats")

    def collect_states(self) -> List[dict]:
        self._ensure_open()
        # Pipes are FIFO, so each snapshot observes every chunk dispatched
        # before this call — the same ordering argument as ``evaluate``.
        for shard_id, pipe in enumerate(self._pipes):
            self._send(shard_id, pipe, ("collect_state", None))
        return self._gather("collect_state")

    def restore_states(self, states: Sequence[Mapping]) -> None:
        self._ensure_open()
        self._require_state_per_shard(states, len(self._pipes))
        for shard_id, (pipe, state) in enumerate(zip(self._pipes, states)):
            self._send(shard_id, pipe, ("restore_state", dict(state)))
        self._gather("restore_state")

    def begin_delta_tracking(self) -> None:
        self._ensure_open()
        for shard_id, pipe in enumerate(self._pipes):
            self._send(shard_id, pipe, ("begin_delta", None))
        self._gather("begin_delta")

    def end_delta_tracking(self) -> None:
        self._ensure_open()
        for shard_id, pipe in enumerate(self._pipes):
            self._send(shard_id, pipe, ("end_delta", None))
        self._gather("end_delta")

    def collect_deltas(self, generation: int) -> List[dict]:
        self._ensure_open()
        # FIFO pipes: each drained delta observes every chunk dispatched
        # before this call — the same ordering argument as collect_states.
        for shard_id, pipe in enumerate(self._pipes):
            self._send(shard_id, pipe, ("collect_delta", generation))
        return self._gather("collect_delta")

    def _ensure_open(self) -> None:
        # Matches SerialBackend: using a closed (or crash-reaped) pool must
        # raise, not silently drop chunks and return empty evaluations.
        if self._closed:
            raise ShardExecutionError("backend is closed")

    def _send(self, shard_id: int, pipe, message) -> None:
        try:
            verdict = None
            if self._fault_plan is not None:
                verdict = self._fault_plan.on_dispatch(shard_id, message[0])
            pipe.send(message)
        except (BrokenPipeError, EOFError, OSError) as exc:
            # The worker process died (OOM kill, crash): tear the rest of
            # the pool down instead of leaking it, and surface shard context.
            self._record_failure(shard_id, "dead")
            self._reap()
            raise ShardExecutionError(
                f"shard {shard_id} process died before "
                f"{message[0]!r} could be dispatched: {exc!r}",
                shard_id=shard_id,
            ) from exc
        if verdict == "kill" and shard_id < len(self._processes):
            # Scripted death *after* delivery: the worker may or may not
            # apply the message before the SIGTERM lands, exactly like a
            # real crash racing an in-flight batch — the supervisor must
            # recover to the correct state either way.
            self._processes[shard_id].terminate()
            self._processes[shard_id].join(timeout=5.0)

    def _gather(self, operation: str) -> List:
        results = []
        for shard_id, pipe in enumerate(self._pipes):
            try:
                if self._fault_plan is not None:
                    self._fault_plan.on_gather(shard_id, operation)
                message = pipe.recv()
                status, value = message[0], message[1]
            except (EOFError, OSError) as exc:
                self._record_failure(shard_id, "dead")
                self._reap()
                raise ShardExecutionError(
                    f"shard {shard_id} process died during {operation}: {exc!r}",
                    shard_id=shard_id,
                ) from exc
            if status != "ok":
                # Sticky worker-side failures (an ingest that blew up
                # earlier) surface here, at the sync point.
                self._record_failure(shard_id, "failure")
                self._reap()
                raise ShardExecutionError(
                    f"shard {shard_id} failed during {operation}:\n{value}",
                    shard_id=shard_id,
                )
            if len(message) > 2:
                self._merge_telemetry(shard_id, message[2])
            results.append(value)
        return results

    def _shard_alive(self, shard_id: int) -> bool:
        return (
            not self._closed
            and shard_id < len(self._processes)
            and self._processes[shard_id].is_alive()
        )

    def close(self) -> None:
        self._closed = True
        for pipe in self._pipes:
            try:
                pipe.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
        for pipe in self._pipes:
            try:
                pipe.close()
            except OSError:
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        self._pipes = []
        self._processes = []

    def _reap(self) -> None:
        """Prompt teardown after a shard failure.

        Unlike the graceful :meth:`close` (stop message + up-to-5s join per
        worker), this terminates the surviving workers immediately: a
        worker mid-ingest cannot read the stop message until it drains its
        pipe, so the graceful path can stall for the full join timeout and
        — if the join expires while the worker still holds buffered pipe
        data — leave live processes behind until interpreter exit.  On the
        failure path there is no state worth preserving: kill, join, done.
        """
        self._closed = True
        for pipe in self._pipes:
            try:
                pipe.close()
            except OSError:
                pass
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - kill of last resort
                process.kill()
                process.join(timeout=1.0)
        self._pipes = []
        self._processes = []


class _Reply:
    """One request's reply slot: an event plus status, value, telemetry."""

    __slots__ = ("event", "status", "value", "telemetry")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.status = "ok"
        self.value = None
        self.telemetry = None

    def resolve(self, status: str, value, telemetry=None) -> None:
        self.status = status
        self.value = value
        self.telemetry = telemetry
        self.event.set()


class _ThreadChannel:
    """A deque-fed mailbox between the coordinator and one shard thread."""

    def __init__(self) -> None:
        self._items: Deque[Tuple[str, object, Optional[_Reply]]] = deque()
        self._condition = threading.Condition()

    def post(self, operation: str, payload=None,
             reply: Optional[_Reply] = None) -> None:
        with self._condition:
            self._items.append((operation, payload, reply))
            self._condition.notify()

    def take(self) -> Tuple[str, object, Optional[_Reply]]:
        with self._condition:
            while not self._items:
                self._condition.wait()
            return self._items.popleft()


def _shard_thread_loop(worker: ShardWorker, channel: _ThreadChannel,
                       on_ingest_failure=None) -> None:
    """Request loop of one shard thread; mirrors :func:`_shard_loop`.

    The deque replaces the pipe — same FIFO ordering argument, so a
    synchronous operation observes every ingest chunk posted before it —
    and payloads arrive by reference instead of by pickle.  Ingest
    failures are sticky exactly as in the process loop: remembered and
    reported at every subsequent reply until the backend is torn down.
    ``on_ingest_failure`` (optional) fires once, the moment the failure
    turns sticky — in-process threads can count the event immediately
    instead of waiting for a sync point like the process protocol must.
    """
    failure: Optional[str] = None
    while True:
        operation, payload, reply = channel.take()
        if operation == "stop":
            if reply is not None:
                reply.resolve("ok", None)
            break
        if operation == "ingest":
            if failure is None:
                try:
                    worker.ingest(payload)
                except Exception:
                    failure = traceback.format_exc()
                    if on_ingest_failure is not None:
                        try:
                            on_ingest_failure()
                        except Exception:  # pragma: no cover - belt-and-braces
                            pass
            continue
        if reply is None:  # pragma: no cover - protocol misuse guard
            continue
        if failure is not None:
            reply.resolve("error", failure)
            continue
        try:
            if operation == "evaluate":
                result = worker.evaluate(*payload)
            elif operation == "stats":
                result = worker.stats()
            elif operation == "collect_state":
                result = worker.snapshot()
            elif operation == "begin_delta":
                worker.begin_delta_tracking()
                result = None
            elif operation == "end_delta":
                worker.end_delta_tracking()
                result = None
            elif operation == "collect_delta":
                result = worker.delta_since(payload)
            elif operation == "restore_state":
                worker.restore(payload)
                result = None
            else:
                reply.resolve("error", f"unknown operation {operation!r}")
                continue
        except Exception:
            failure = traceback.format_exc()
            reply.resolve("error", failure)
            continue
        # Telemetry rides the reply slot by reference — the thread
        # analogue of the process loop's third tuple element.
        reply.resolve("ok", result, worker.drain_telemetry())


class ThreadBackend(ShardBackend):
    """One worker thread per shard, fed through an in-process deque.

    Zero-copy by design: the coordinator blocks in the gather while the
    shard threads read the broadcast seeds/tag counts, so live references
    are safe to share and nothing is ever pickled.  The per-shard trackers
    remain single-writer (only their own thread touches them), which is
    the same isolation argument as the process backend — minus the
    serialization.
    """

    name = "threads"

    def __init__(self) -> None:
        self._threads: List[threading.Thread] = []
        self._channels: List[_ThreadChannel] = []
        self._closed = False

    def start(self, workers: Sequence[ShardWorker]) -> None:
        self._closed = False
        for shard_id, worker in enumerate(workers):
            channel = _ThreadChannel()
            thread = threading.Thread(
                target=_shard_thread_loop,
                args=(worker, channel),
                kwargs={
                    "on_ingest_failure":
                        self._make_ingest_failure_callback(shard_id),
                },
                name=f"enblogue-shard-{worker.shard_id}",
                daemon=True,
            )
            thread.start()
            self._channels.append(channel)
            self._threads.append(thread)
        self._init_health(len(self._threads))

    def _make_ingest_failure_callback(self, shard_id: int):
        def on_ingest_failure() -> None:
            self._record_failure(shard_id, "ingest")

        return on_ingest_failure

    def ingest(self, chunks: Sequence[List[ShardEvent]]) -> None:
        self._ensure_open()
        clock = self._clock
        for shard_id, (channel, events) in enumerate(
                zip(self._channels, chunks)):
            if events:
                verdict = None
                if self._fault_plan is not None:
                    try:
                        verdict = self._fault_plan.on_dispatch(
                            shard_id, "ingest")
                    except Exception as exc:
                        self._record_failure(shard_id, "dead")
                        self.close()
                        raise ShardExecutionError(
                            f"shard {shard_id} thread dispatch failed: "
                            f"{exc!r}",
                            shard_id=shard_id,
                        ) from exc
                # Dispatch here is a deque append — the zero-copy half the
                # backend exists for; the histogram proves it stays flat.
                start = clock()
                channel.post("ingest", events)
                self._record_dispatch(shard_id, len(events), clock() - start)
                if verdict == "kill":
                    # Scripted death after delivery: a stop posted behind
                    # the chunk makes the thread drain it and exit — the
                    # deterministic analogue of terminating a process.
                    channel.post("stop")

    def evaluate(self, timestamp, seeds, tag_counts, total_documents):
        self._ensure_open()
        # The list() guards against a shared one-shot iterable; tag_counts
        # is deliberately NOT copied — shards only read it, and the
        # coordinator does not mutate it until the gather below returns.
        payload = (timestamp, list(seeds), tag_counts, total_documents)
        return self._broadcast("evaluate", payload)

    def stats(self) -> List[dict]:
        self._ensure_open()
        return self._broadcast("stats")

    def collect_states(self) -> List[dict]:
        self._ensure_open()
        # Deques are FIFO, so each snapshot observes every chunk posted
        # before this call — the same ordering argument as ``evaluate``.
        return self._broadcast("collect_state")

    def restore_states(self, states: Sequence[Mapping]) -> None:
        self._ensure_open()
        self._require_state_per_shard(states, len(self._channels))
        replies = []
        for channel, state in zip(self._channels, states):
            reply = _Reply()
            channel.post("restore_state", state, reply)
            replies.append(reply)
        self._gather("restore_state", replies)

    def begin_delta_tracking(self) -> None:
        self._ensure_open()
        self._broadcast("begin_delta")

    def end_delta_tracking(self) -> None:
        self._ensure_open()
        self._broadcast("end_delta")

    def collect_deltas(self, generation: int) -> List[dict]:
        self._ensure_open()
        return self._broadcast("collect_delta", generation)

    def close(self) -> None:
        if self._closed and not self._threads:
            return
        self._closed = True
        for channel in self._channels:
            channel.post("stop")
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []
        self._channels = []

    def _ensure_open(self) -> None:
        # Matches the other backends: using a closed pool must raise, not
        # silently drop chunks and return empty evaluations.
        if self._closed:
            raise ShardExecutionError("backend is closed")

    def _broadcast(self, operation: str, payload=None) -> List:
        replies = []
        for channel in self._channels:
            reply = _Reply()
            channel.post(operation, payload, reply)
            replies.append(reply)
        return self._gather(operation, replies)

    def _gather(self, operation: str, replies: Sequence[_Reply]) -> List:
        results = []
        for shard_id, (reply, thread) in enumerate(
            zip(replies, self._threads)
        ):
            if self._fault_plan is not None:
                try:
                    self._fault_plan.on_gather(shard_id, operation)
                except Exception as exc:
                    self._record_failure(shard_id, "dead")
                    self.close()
                    raise ShardExecutionError(
                        f"shard {shard_id} gather failed during "
                        f"{operation}: {exc!r}",
                        shard_id=shard_id,
                    ) from exc
            # An already-dead thread is detected without waiting out the
            # poll interval; the re-check of the event guards the race
            # where the thread resolved the reply just before exiting.
            while not reply.event.wait(
                    timeout=1.0 if thread.is_alive() else 0.0):
                if not thread.is_alive() and not reply.event.is_set():
                    self._record_failure(shard_id, "dead")
                    self.close()
                    raise ShardExecutionError(
                        f"shard {shard_id} thread died during {operation}",
                        shard_id=shard_id,
                    )
            if reply.status != "ok":
                self._record_failure(shard_id, "failure")
                self.close()
                raise ShardExecutionError(
                    f"shard {shard_id} failed during {operation}:\n"
                    f"{reply.value}",
                    shard_id=shard_id,
                )
            self._merge_telemetry(shard_id, reply.telemetry)
            results.append(reply.value)
        return results

    def _shard_alive(self, shard_id: int) -> bool:
        return (
            not self._closed
            and shard_id < len(self._threads)
            and self._threads[shard_id].is_alive()
        )

    def _shard_queue_depth(self, shard_id: int) -> int:
        if shard_id >= len(self._channels):
            return 0
        return len(self._channels[shard_id]._items)


_BACKENDS = {
    SerialBackend.name: SerialBackend,
    ProcessBackend.name: ProcessBackend,
    ThreadBackend.name: ThreadBackend,
}


def available_backends() -> List[str]:
    """Names accepted by :func:`make_backend`."""
    return sorted(_BACKENDS) + ["supervised"]


def make_backend(name: str, **kwargs) -> ShardBackend:
    """Instantiate an execution backend by name.

    ``serial`` (in-process reference), ``threads`` (one thread per shard,
    zero-copy), ``process`` (one process per shard, pickled protocol) or
    ``supervised`` (the self-healing wrapper from
    :mod:`repro.sharding.supervision`; pass ``inner=`` to pick what it
    wraps, default serial).
    """
    if name == "supervised":
        # Imported lazily: supervision composes over the backends defined
        # here, so a top-level import would be circular.
        from repro.sharding.supervision import SupervisedBackend

        return SupervisedBackend(**kwargs)
    try:
        backend_class = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown shard backend {name!r}; available: {available_backends()}"
        ) from None
    return backend_class(**kwargs)
