"""Pluggable execution backends for the sharded detection engine.

The coordinator talks to its shard workers through a minimal scatter-gather
protocol — ``ingest`` (fire-and-forget, chunked), ``evaluate`` (synchronous
broadcast + gather) and ``close`` — and the backend decides where the
workers live:

* :class:`SerialBackend` keeps them in-process and calls them directly.
  It is the deterministic reference implementation: tests establish
  bit-identical equivalence against the single engine here, and the
  process backend is then held to the same output.
* :class:`ProcessBackend` gives each shard its own worker process.  The
  worker state (all plain-Python, picklable) is shipped once at start-up;
  afterwards only pair-event chunks flow down and local top-k lists flow
  back.  Ingest messages need no acknowledgement — pipes are FIFO, so an
  ``evaluate`` request observes every chunk sent before it — which lets
  the coordinator keep decomposing and routing documents while workers
  ingest in parallel.  A worker that fails during ingest remembers the
  failure and reports it at the next synchronisation point.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import List, Mapping, Optional, Sequence

from repro.core.types import EmergentTopic
from repro.persistence.snapshot import SnapshotMismatchError
from repro.sharding.worker import ShardEvent, ShardWorker

#: The pinned multiprocessing start method.  "spawn" is the only method
#: available on every platform and the only one whose workers start from a
#: clean interpreter, so worker behavior — and therefore restored
#: checkpoint state — is identical on Linux and macOS.  Tests that churn
#: through many short-lived pools may override it with the cheaper "fork"
#: where available; production deployments should keep the default.
DEFAULT_START_METHOD = "spawn"


class ShardExecutionError(RuntimeError):
    """A shard worker failed; carries the worker-side traceback text."""


class ShardBackend:
    """Interface: execute shard workers and the scatter-gather protocol."""

    name = "base"

    def start(self, workers: Sequence[ShardWorker]) -> None:
        raise NotImplementedError

    def ingest(self, chunks: Sequence[List[ShardEvent]]) -> None:
        """Dispatch one chunk of pair events per shard (empty chunks skipped)."""
        raise NotImplementedError

    def evaluate(
        self,
        timestamp: float,
        seeds: Sequence[str],
        tag_counts: Mapping[str, int],
        total_documents: int,
    ) -> List[List[EmergentTopic]]:
        """Broadcast the globals, gather every shard's local top-k."""
        raise NotImplementedError

    def stats(self) -> List[dict]:
        raise NotImplementedError

    def collect_states(self) -> List[dict]:
        """Gather every shard worker's snapshot, in shard order.

        A synchronisation point like ``evaluate``: the returned states
        reflect every ingest chunk dispatched before the call.
        """
        raise NotImplementedError

    def restore_states(self, states: Sequence[Mapping]) -> None:
        """Restore one snapshot per shard worker, in shard order."""
        raise NotImplementedError

    def begin_delta_tracking(self) -> None:
        """Arm delta recording in every shard worker (journal checkpoints)."""
        raise NotImplementedError

    def end_delta_tracking(self) -> None:
        """Disarm delta recording in every shard worker."""
        raise NotImplementedError

    def collect_deltas(self, generation: int) -> List[dict]:
        """Drain every shard worker's delta, in shard order.

        A synchronisation point like ``collect_states``: the returned
        deltas reflect every ingest chunk dispatched before the call.
        """
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def _require_state_per_shard(self, states: Sequence, shards: int) -> None:
        if len(states) != shards:
            raise SnapshotMismatchError(
                f"backend runs {shards} shard(s) but {len(states)} shard "
                f"state(s) were offered; re-partition the checkpoint first "
                f"(see repro.sharding.reshard)"
            )


class SerialBackend(ShardBackend):
    """In-process reference backend: direct calls, fully deterministic."""

    name = "serial"

    def __init__(self) -> None:
        self.workers: List[ShardWorker] = []
        self._closed = False

    def start(self, workers: Sequence[ShardWorker]) -> None:
        self.workers = list(workers)
        self._closed = False

    def ingest(self, chunks: Sequence[List[ShardEvent]]) -> None:
        self._ensure_open()
        for worker, events in zip(self.workers, chunks):
            if events:
                worker.ingest(events)

    def evaluate(self, timestamp, seeds, tag_counts, total_documents):
        self._ensure_open()
        return [
            worker.evaluate(timestamp, seeds, tag_counts, total_documents)
            for worker in self.workers
        ]

    def stats(self) -> List[dict]:
        self._ensure_open()
        return [worker.stats() for worker in self.workers]

    def collect_states(self) -> List[dict]:
        self._ensure_open()
        return [worker.snapshot() for worker in self.workers]

    def restore_states(self, states: Sequence[Mapping]) -> None:
        self._ensure_open()
        self._require_state_per_shard(states, len(self.workers))
        for worker, state in zip(self.workers, states):
            worker.restore(state)

    def begin_delta_tracking(self) -> None:
        self._ensure_open()
        for worker in self.workers:
            worker.begin_delta_tracking()

    def end_delta_tracking(self) -> None:
        self._ensure_open()
        for worker in self.workers:
            worker.end_delta_tracking()

    def collect_deltas(self, generation: int) -> List[dict]:
        self._ensure_open()
        return [worker.delta_since(generation) for worker in self.workers]

    def close(self) -> None:
        self._closed = True
        self.workers = []

    def _ensure_open(self) -> None:
        # A closed backend must fail loudly: silently dropping chunks or
        # returning empty evaluations would publish bogus empty rankings.
        if self._closed:
            raise ShardExecutionError("backend is closed")


def _shard_loop(worker: ShardWorker, connection) -> None:
    """Request loop of one shard process.

    Ingest requests carry no reply; request/reply operations (``evaluate``,
    ``stats``) answer ``("ok", value)`` or ``("error", traceback)``.  An
    ingest failure is remembered and surfaces at the next reply, so the
    coordinator's fire-and-forget dispatch cannot silently lose an error.
    """
    failure: Optional[str] = None
    while True:
        try:
            operation, payload = connection.recv()
        except EOFError:
            break
        if operation == "stop":
            break
        if operation == "ingest":
            if failure is None:
                try:
                    worker.ingest(payload)
                except Exception:
                    failure = traceback.format_exc()
        elif failure is not None:
            connection.send(("error", failure))
        elif operation == "evaluate":
            try:
                connection.send(("ok", worker.evaluate(*payload)))
            except Exception:
                failure = traceback.format_exc()
                connection.send(("error", failure))
        elif operation == "stats":
            try:
                connection.send(("ok", worker.stats()))
            except Exception:
                failure = traceback.format_exc()
                connection.send(("error", failure))
        elif operation == "collect_state":
            try:
                connection.send(("ok", worker.snapshot()))
            except Exception:
                failure = traceback.format_exc()
                connection.send(("error", failure))
        elif operation == "begin_delta":
            try:
                worker.begin_delta_tracking()
                connection.send(("ok", None))
            except Exception:
                failure = traceback.format_exc()
                connection.send(("error", failure))
        elif operation == "end_delta":
            try:
                worker.end_delta_tracking()
                connection.send(("ok", None))
            except Exception:
                failure = traceback.format_exc()
                connection.send(("error", failure))
        elif operation == "collect_delta":
            try:
                connection.send(("ok", worker.delta_since(payload)))
            except Exception:
                failure = traceback.format_exc()
                connection.send(("error", failure))
        elif operation == "restore_state":
            try:
                worker.restore(payload)
                connection.send(("ok", None))
            except Exception:
                failure = traceback.format_exc()
                connection.send(("error", failure))
        else:
            connection.send(("error", f"unknown operation {operation!r}"))
    connection.close()


class ProcessBackend(ShardBackend):
    """One worker process per shard, connected by a duplex pipe.

    ``start_method`` selects the :mod:`multiprocessing` context and is
    pinned to :data:`DEFAULT_START_METHOD` (``"spawn"``) rather than the
    platform default, so a checkpoint restored on macOS behaves exactly
    like the Linux run that wrote it.  The picklable worker state is
    shipped to each child at start-up; pass ``start_method="fork"`` to
    trade that portability for cheaper start-up (tests do).
    """

    name = "process"

    def __init__(self, start_method: Optional[str] = None):
        self._start_method = start_method or DEFAULT_START_METHOD
        self._processes: List[multiprocessing.Process] = []
        self._pipes: List = []
        self._closed = False

    @property
    def start_method(self) -> str:
        """The multiprocessing start method workers are launched with."""
        return self._start_method

    def start(self, workers: Sequence[ShardWorker]) -> None:
        self._closed = False
        context = multiprocessing.get_context(self._start_method)
        for worker in workers:
            parent_end, child_end = context.Pipe(duplex=True)
            process = context.Process(
                target=_shard_loop,
                args=(worker, child_end),
                name=f"enblogue-shard-{worker.shard_id}",
                daemon=True,
            )
            process.start()
            child_end.close()
            self._pipes.append(parent_end)
            self._processes.append(process)

    def ingest(self, chunks: Sequence[List[ShardEvent]]) -> None:
        self._ensure_open()
        for shard_id, (pipe, events) in enumerate(zip(self._pipes, chunks)):
            if events:
                self._send(shard_id, pipe, ("ingest", events))

    def evaluate(self, timestamp, seeds, tag_counts, total_documents):
        self._ensure_open()
        payload = (timestamp, list(seeds), dict(tag_counts), total_documents)
        # Scatter to every shard first so they all compute concurrently,
        # then gather in shard order (the merge needs a fixed order anyway).
        for shard_id, pipe in enumerate(self._pipes):
            self._send(shard_id, pipe, ("evaluate", payload))
        return self._gather("evaluate")

    def stats(self) -> List[dict]:
        self._ensure_open()
        for shard_id, pipe in enumerate(self._pipes):
            self._send(shard_id, pipe, ("stats", None))
        return self._gather("stats")

    def collect_states(self) -> List[dict]:
        self._ensure_open()
        # Pipes are FIFO, so each snapshot observes every chunk dispatched
        # before this call — the same ordering argument as ``evaluate``.
        for shard_id, pipe in enumerate(self._pipes):
            self._send(shard_id, pipe, ("collect_state", None))
        return self._gather("collect_state")

    def restore_states(self, states: Sequence[Mapping]) -> None:
        self._ensure_open()
        self._require_state_per_shard(states, len(self._pipes))
        for shard_id, (pipe, state) in enumerate(zip(self._pipes, states)):
            self._send(shard_id, pipe, ("restore_state", dict(state)))
        self._gather("restore_state")

    def begin_delta_tracking(self) -> None:
        self._ensure_open()
        for shard_id, pipe in enumerate(self._pipes):
            self._send(shard_id, pipe, ("begin_delta", None))
        self._gather("begin_delta")

    def end_delta_tracking(self) -> None:
        self._ensure_open()
        for shard_id, pipe in enumerate(self._pipes):
            self._send(shard_id, pipe, ("end_delta", None))
        self._gather("end_delta")

    def collect_deltas(self, generation: int) -> List[dict]:
        self._ensure_open()
        # FIFO pipes: each drained delta observes every chunk dispatched
        # before this call — the same ordering argument as collect_states.
        for shard_id, pipe in enumerate(self._pipes):
            self._send(shard_id, pipe, ("collect_delta", generation))
        return self._gather("collect_delta")

    def _ensure_open(self) -> None:
        # Matches SerialBackend: using a closed (or crash-reaped) pool must
        # raise, not silently drop chunks and return empty evaluations.
        if self._closed:
            raise ShardExecutionError("backend is closed")

    def _send(self, shard_id: int, pipe, message) -> None:
        try:
            pipe.send(message)
        except (BrokenPipeError, EOFError, OSError) as exc:
            # The worker process died (OOM kill, crash): tear the rest of
            # the pool down instead of leaking it, and surface shard context.
            self.close()
            raise ShardExecutionError(
                f"shard {shard_id} process died before "
                f"{message[0]!r} could be dispatched: {exc!r}"
            ) from exc

    def _gather(self, operation: str) -> List:
        results = []
        for shard_id, pipe in enumerate(self._pipes):
            try:
                status, value = pipe.recv()
            except (EOFError, OSError) as exc:
                self.close()
                raise ShardExecutionError(
                    f"shard {shard_id} process died during {operation}: {exc!r}"
                ) from exc
            if status != "ok":
                self.close()
                raise ShardExecutionError(
                    f"shard {shard_id} failed during {operation}:\n{value}"
                )
            results.append(value)
        return results

    def close(self) -> None:
        self._closed = True
        for pipe in self._pipes:
            try:
                pipe.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
        for pipe in self._pipes:
            try:
                pipe.close()
            except OSError:
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        self._pipes = []
        self._processes = []


_BACKENDS = {
    SerialBackend.name: SerialBackend,
    ProcessBackend.name: ProcessBackend,
}


def available_backends() -> List[str]:
    """Names accepted by :func:`make_backend`."""
    return sorted(_BACKENDS)


def make_backend(name: str, **kwargs) -> ShardBackend:
    """Instantiate an execution backend by name (``serial`` or ``process``)."""
    try:
        backend_class = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown shard backend {name!r}; available: {available_backends()}"
        ) from None
    return backend_class(**kwargs)
