"""Restore-time re-partitioning of checkpointed shard state.

A checkpoint taken with N shards can be restored into M: every statistic a
shard holds is keyed by a canonical pair (windowed pair events, postings
counts, correlation histories, decayed shift scores), so the whole state
re-routes through the same stable CRC-32 hash
(:class:`~repro.sharding.partitioner.PairPartitioner`) that partitioned
the live stream.  The merged union of the old shards' states equals the
single-engine state, and splitting that union M ways reproduces exactly
the per-pair state a from-scratch M-shard run would hold — which is why a
re-sharded resume stays bit-identical.

This is the offline half of the ROADMAP's live-rebalancing item: changing
the shard count of a running deployment now only needs the online transfer
of this same re-routing, not a cold replay.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.types import TagPair
from repro.persistence.snapshot import (
    SnapshotMismatchError,
    require_state,
)
from repro.sharding.partitioner import PairPartitioner

#: Tracker parameters every shard of one checkpoint must agree on.
_TRACKER_FINGERPRINT = (
    "window_horizon",
    "history_length",
    "use_entities",
    "track_usage",
)

#: Detector parameters every shard of one checkpoint must agree on.
_DETECTOR_FINGERPRINT = ("min_history", "penalize_drops", "decay_half_life")


def _require_agreement(
    states: Sequence[Mapping[str, Any]], keys: Sequence[str], component: str
) -> None:
    reference = states[0]
    for index, state in enumerate(states[1:], start=1):
        for key in keys:
            if state.get(key) != reference.get(key):
                raise SnapshotMismatchError(
                    f"shard states disagree on {component} parameter "
                    f"{key!r}: shard 0 has {reference.get(key)!r}, shard "
                    f"{index} has {state.get(key)!r} — not one checkpoint?"
                )


def _require_pair_only(tracker_state: Mapping[str, Any], index: int) -> None:
    # Usage distributions and count histories are tag-level, document-scoped
    # statistics; shard trackers never populate them (the coordinator owns
    # both), so their presence means this is not a shard-worker checkpoint.
    if tracker_state.get("usage_events") or tracker_state.get("count_history"):
        raise SnapshotMismatchError(
            f"shard {index} carries tag-level usage/count-history state, "
            f"which cannot be re-partitioned by pair; only shard-worker "
            f"checkpoints can be re-sharded"
        )


def reshard_worker_states(
    states: Sequence[Mapping[str, Any]], num_shards: int
) -> List[dict]:
    """Re-partition shard-worker snapshots into ``num_shards`` new ones.

    ``states`` are :meth:`~repro.sharding.worker.ShardWorker.snapshot`
    dicts (any count ≥ 1); the result is one snapshot per new shard,
    addressed ``shard_id = 0..num_shards-1``, ready for
    ``ShardBackend.restore_states``.  Deterministic: the same input always
    produces byte-identical output (events merge in stable timestamp
    order, per-pair tables are emitted sorted).
    """
    if not states:
        raise SnapshotMismatchError("cannot re-shard an empty state list")
    for state in states:
        require_state(state, "shard-worker", 1)
    trackers = [state["tracker"] for state in states]
    detectors = [state["detector"] for state in states]
    candidates = [tracker["candidates"] for tracker in trackers]
    for tracker in trackers:
        require_state(tracker, "correlation-tracker", 1)
    _require_agreement(trackers, _TRACKER_FINGERPRINT, "tracker")
    _require_agreement(detectors, _DETECTOR_FINGERPRINT, "detector")
    _require_agreement(
        candidates, ("min_support",), "candidate-index"
    )
    for index, tracker in enumerate(trackers):
        _require_pair_only(tracker, index)

    partitioner = PairPartitioner(num_shards)

    def owner(pair_state: Sequence[str]) -> int:
        return partitioner.shard_of(TagPair(str(pair_state[0]), str(pair_state[1])))

    # Pair events: merge the old shards' time-ordered event lists into one
    # stream (stable for equal timestamps), then split each event's pairs by
    # the new partitioner.  Granularity may differ from a from-scratch run —
    # one document can appear as two same-timestamp events on a new shard —
    # but counts, eviction times and per-pair state are identical, which is
    # all the detection math reads.
    new_events: List[List[list]] = [[] for _ in range(num_shards)]
    merged = heapq.merge(
        *(tracker["pair_events"] for tracker in trackers),
        key=lambda event: event[0],
    )
    for timestamp, pairs in merged:
        split: Dict[int, list] = {}
        for pair_state in pairs:
            split.setdefault(owner(pair_state), []).append(list(pair_state))
        for shard_id, shard_pairs in split.items():
            new_events[shard_id].append([timestamp, shard_pairs])

    min_support = candidates[0]["min_support"]
    new_counts: List[list] = [[] for _ in range(num_shards)]
    for candidate_state in candidates:
        for entry in candidate_state["pairs"]:
            new_counts[owner(entry)].append(list(entry))

    new_histories: List[list] = [[] for _ in range(num_shards)]
    for tracker in trackers:
        for entry in tracker["histories"]:
            new_histories[owner(entry)].append(entry)

    new_scores: List[list] = [[] for _ in range(num_shards)]
    for detector in detectors:
        for entry in detector["scores"]:
            new_scores[owner(entry)].append(entry)

    latests = [
        tracker["latest"] for tracker in trackers
        if tracker["latest"] is not None
    ]
    latest: Optional[float] = max(latests) if latests else None
    horizon = trackers[0]["tag_window"]["horizon"]

    resharded: List[dict] = []
    for shard_id in range(num_shards):
        tracker_state = {
            "kind": "correlation-tracker",
            "version": 1,
            **{key: trackers[0][key] for key in _TRACKER_FINGERPRINT},
            # Event counts are the pair-restricted notion of documents_seen.
            "documents_seen": len(new_events[shard_id]),
            "latest": latest,
            # Shard trackers never ingest documents, so their tag windows
            # hold no events — only the advanced stream clock.
            "tag_window": {
                "kind": "tag-frequency-window",
                "version": 1,
                "horizon": horizon,
                "latest": latest,
                "events": [],
            },
            "pair_events": new_events[shard_id],
            "candidates": {
                "kind": "candidate-index",
                "version": 1,
                "min_support": min_support,
                "pairs": sorted(new_counts[shard_id]),
            },
            "usage_events": [],
            "histories": sorted(new_histories[shard_id],
                                key=lambda entry: (entry[0], entry[1])),
            "count_history": {},
        }
        detector_state = {
            "kind": "shift-detector",
            "version": 1,
            **{key: detectors[0][key] for key in _DETECTOR_FINGERPRINT},
            "scores": sorted(new_scores[shard_id],
                             key=lambda entry: (entry[0], entry[1])),
        }
        resharded.append({
            "kind": "shard-worker",
            "version": 1,
            "shard_id": shard_id,
            "tracker": tracker_state,
            "detector": detector_state,
            "builder": dict(states[0]["builder"]),
        })
    return resharded
