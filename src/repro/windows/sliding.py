"""Time-based and count-based sliding windows.

Both window types store ``WindowEntry`` objects (a timestamp plus an
arbitrary value) in arrival order and evict expired entries lazily on
insertion or when the window is advanced explicitly.  They are the building
blocks for the windowed aggregates in :mod:`repro.windows.aggregates` and
for the per-pair statistics kept by the correlation tracker.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Iterator, List, Optional


@dataclass(frozen=True)
class WindowEntry:
    """A single timestamped observation held inside a sliding window."""

    timestamp: float
    value: Any = 1.0

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError("timestamp must be non-negative")


class TimeSlidingWindow:
    """Sliding window holding all entries newer than ``horizon`` time units.

    The window is half-open: an entry with timestamp ``t`` is retained while
    ``now - t < horizon``.  Entries must be appended in non-decreasing
    timestamp order, which matches the push-based stream model of the paper
    (documents arrive ordered by publication time).
    """

    def __init__(self, horizon: float):
        if horizon <= 0:
            raise ValueError("window horizon must be positive")
        self.horizon = float(horizon)
        self._entries: Deque[WindowEntry] = deque()
        self._latest: Optional[float] = None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[WindowEntry]:
        return iter(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    @property
    def latest_timestamp(self) -> Optional[float]:
        """Timestamp of the most recent insertion or explicit advance."""
        return self._latest

    def append(self, timestamp: float, value: Any = 1.0) -> None:
        """Insert a new observation and evict anything that has expired."""
        if self._latest is not None and timestamp < self._latest:
            raise ValueError(
                f"out-of-order insertion: {timestamp} < {self._latest}"
            )
        self._entries.append(WindowEntry(timestamp, value))
        self._latest = timestamp
        self._evict(timestamp)

    def advance_to(self, timestamp: float) -> None:
        """Move the window's notion of "now" forward without inserting."""
        if self._latest is not None and timestamp < self._latest:
            raise ValueError(
                f"cannot advance backwards: {timestamp} < {self._latest}"
            )
        self._latest = timestamp
        self._evict(timestamp)

    def values(self) -> List[Any]:
        """Return the values currently inside the window, oldest first."""
        return [entry.value for entry in self._entries]

    def timestamps(self) -> List[float]:
        """Return the timestamps currently inside the window, oldest first."""
        return [entry.timestamp for entry in self._entries]

    def count(self, predicate: Optional[Callable[[Any], bool]] = None) -> int:
        """Number of live entries, optionally filtered by ``predicate``."""
        if predicate is None:
            return len(self._entries)
        return sum(1 for entry in self._entries if predicate(entry.value))

    def clear(self) -> None:
        """Drop all entries but keep the current clock position."""
        self._entries.clear()

    def span(self) -> float:
        """Time covered by the live entries (0.0 when fewer than two)."""
        if len(self._entries) < 2:
            return 0.0
        return self._entries[-1].timestamp - self._entries[0].timestamp

    def _evict(self, now: float) -> None:
        cutoff = now - self.horizon
        while self._entries and self._entries[0].timestamp <= cutoff:
            self._entries.popleft()


class CountSlidingWindow:
    """Sliding window holding the most recent ``capacity`` entries."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("window capacity must be positive")
        self.capacity = int(capacity)
        self._entries: Deque[WindowEntry] = deque(maxlen=self.capacity)
        self._latest: Optional[float] = None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[WindowEntry]:
        return iter(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    @property
    def latest_timestamp(self) -> Optional[float]:
        return self._latest

    @property
    def full(self) -> bool:
        """True once the window has reached its capacity."""
        return len(self._entries) == self.capacity

    def append(self, timestamp: float, value: Any = 1.0) -> None:
        if self._latest is not None and timestamp < self._latest:
            raise ValueError(
                f"out-of-order insertion: {timestamp} < {self._latest}"
            )
        self._entries.append(WindowEntry(timestamp, value))
        self._latest = timestamp

    def values(self) -> List[Any]:
        return [entry.value for entry in self._entries]

    def timestamps(self) -> List[float]:
        return [entry.timestamp for entry in self._entries]

    def clear(self) -> None:
        self._entries.clear()
