"""Sliding-window statistics substrate.

EnBlogue's seed-tag selection and correlation tracking both rely on
sliding-window statistics over the document stream (Section 3 of the paper:
"Popularity is easy to measure as it merely requires computing a
sliding-window average on the document stream").  This package provides the
window containers, windowed aggregates, exponential decay (used by the shift
scorer with a half-life of roughly two days) and a small time-series
container shared by the rest of the library.
"""

from repro.windows.sliding import CountSlidingWindow, TimeSlidingWindow, WindowEntry
from repro.windows.aggregates import (
    SlidingAverage,
    SlidingCounter,
    SlidingSum,
    TagFrequencyWindow,
)
from repro.windows.decay import ExponentialDecay, DecayedMaximum, half_life_to_lambda
from repro.windows.striped import StripedCounter, StripedCountHistory
from repro.windows.timeseries import TimeSeries

__all__ = [
    "StripedCounter",
    "StripedCountHistory",
    "CountSlidingWindow",
    "TimeSlidingWindow",
    "WindowEntry",
    "SlidingAverage",
    "SlidingCounter",
    "SlidingSum",
    "TagFrequencyWindow",
    "ExponentialDecay",
    "DecayedMaximum",
    "half_life_to_lambda",
    "TimeSeries",
]
