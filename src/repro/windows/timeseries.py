"""A small timestamped series container.

Correlation histories, popularity curves and the Figure 1 reproduction all
need an ordered list of ``(timestamp, value)`` observations with a couple of
convenience operations (slicing by time, resampling onto a regular grid,
simple statistics).  Keeping this in one place avoids each consumer juggling
parallel lists.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.persistence.snapshot import require_state


class TimeSeries:
    """An append-only series of ``(timestamp, value)`` pairs.

    Timestamps must be appended in non-decreasing order; the stream sources
    in this library all emit time-ordered documents so the restriction never
    bites in practice and keeps lookups logarithmic.

    With ``maxlen`` set the series becomes a bounded ring buffer: appends
    beyond the bound drop the oldest point, so long-running streams (e.g.
    the per-pair correlation histories) hold at most ``maxlen`` points.
    """

    def __init__(
        self,
        points: Optional[Iterable[Tuple[float, float]]] = None,
        maxlen: Optional[int] = None,
    ) -> None:
        if maxlen is not None and maxlen < 1:
            raise ValueError("maxlen must be at least 1")
        self._maxlen = maxlen
        self._timestamps: List[float] = []
        self._values: List[float] = []
        if points is not None:
            for timestamp, value in points:
                self.append(timestamp, value)

    @property
    def maxlen(self) -> Optional[int]:
        """The bound of the ring buffer (None when unbounded)."""
        return self._maxlen

    def snapshot(self) -> dict:
        """The series as a versioned, JSON-serialisable dict."""
        return {
            "kind": "timeseries",
            "version": 1,
            "maxlen": self._maxlen,
            "timestamps": list(self._timestamps),
            "values": list(self._values),
        }

    @classmethod
    def from_snapshot(cls, state: dict) -> "TimeSeries":
        """Rebuild a series from :meth:`snapshot` output, bit for bit."""
        require_state(state, "timeseries", 1)
        maxlen = state["maxlen"]
        series = cls(maxlen=None if maxlen is None else int(maxlen))
        series._timestamps = [float(t) for t in state["timestamps"]]
        series._values = [float(v) for v in state["values"]]
        return series

    def __len__(self) -> int:
        return len(self._timestamps)

    def __bool__(self) -> bool:
        return bool(self._timestamps)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self._timestamps, self._values))

    def __getitem__(self, index: int) -> Tuple[float, float]:
        return self._timestamps[index], self._values[index]

    def append(self, timestamp: float, value: float) -> None:
        if self._timestamps and timestamp < self._timestamps[-1]:
            raise ValueError(
                f"out-of-order append: {timestamp} < {self._timestamps[-1]}"
            )
        self._timestamps.append(float(timestamp))
        self._values.append(float(value))
        # Ring-buffer bound: maxlen values are small (tens of points), so the
        # front drop stays cheap while keeping memory constant over the run.
        if self._maxlen is not None and len(self._timestamps) > self._maxlen:
            del self._timestamps[0]
            del self._values[0]

    @property
    def timestamps(self) -> Sequence[float]:
        return tuple(self._timestamps)

    @property
    def values(self) -> Sequence[float]:
        return tuple(self._values)

    def last(self) -> Tuple[float, float]:
        if not self._timestamps:
            raise IndexError("empty time series")
        return self._timestamps[-1], self._values[-1]

    def value_at(self, timestamp: float) -> float:
        """Most recent value at or before ``timestamp`` (step interpolation)."""
        if not self._timestamps:
            raise IndexError("empty time series")
        index = bisect.bisect_right(self._timestamps, timestamp) - 1
        if index < 0:
            raise KeyError(f"no observation at or before {timestamp}")
        return self._values[index]

    def between(self, start: float, end: float) -> "TimeSeries":
        """Sub-series with ``start <= timestamp <= end``."""
        if end < start:
            raise ValueError("end must not precede start")
        lo = bisect.bisect_left(self._timestamps, start)
        hi = bisect.bisect_right(self._timestamps, end)
        series = TimeSeries()
        series._timestamps = self._timestamps[lo:hi]
        series._values = self._values[lo:hi]
        return series

    def tail(self, n: int) -> List[float]:
        """The last ``n`` values (fewer if the series is shorter)."""
        if n <= 0:
            return []
        return list(self._values[-n:])

    def tail_points(self, n: int) -> Tuple[List[float], List[float]]:
        """The last ``n`` points as ``(timestamps, values)`` lists.

        The journal-delta encoding of a series: a bounded ring that took
        ``n`` appends since a baseline is reproduced exactly by extending
        the baseline with this tail and re-trimming to ``maxlen`` (when
        ``n`` reaches ``maxlen`` the tail *is* the whole series).
        """
        if n <= 0:
            return [], []
        return list(self._timestamps[-n:]), list(self._values[-n:])

    def previous_values(self) -> List[float]:
        """Every value except the most recent one (empty when len < 2).

        This is the history a one-step-ahead predictor may see after the
        current observation has been appended; a single slice instead of the
        tuple-copy-then-trim dance the callers would otherwise do.
        """
        return self._values[:-1]

    def resample(self, start: float, end: float, step: float) -> "TimeSeries":
        """Sample the series on a regular grid using step interpolation."""
        if step <= 0:
            raise ValueError("step must be positive")
        if end < start:
            raise ValueError("end must not precede start")
        series = TimeSeries()
        t = start
        while t <= end + 1e-9:
            try:
                value = self.value_at(t)
            except (KeyError, IndexError):
                value = 0.0
            series.append(t, value)
            t += step
        return series

    def mean(self) -> float:
        if not self._values:
            return 0.0
        return sum(self._values) / len(self._values)

    def std(self) -> float:
        if len(self._values) < 2:
            return 0.0
        mu = self.mean()
        variance = sum((v - mu) ** 2 for v in self._values) / (len(self._values) - 1)
        return math.sqrt(variance)

    def max(self) -> float:
        if not self._values:
            return 0.0
        return max(self._values)

    def min(self) -> float:
        if not self._values:
            return 0.0
        return min(self._values)

    def diff(self) -> "TimeSeries":
        """First differences: value[i] - value[i-1] stamped at timestamp[i]."""
        series = TimeSeries()
        for i in range(1, len(self._values)):
            series.append(self._timestamps[i], self._values[i] - self._values[i - 1])
        return series
