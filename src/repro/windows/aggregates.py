"""Windowed aggregates built on top of the sliding windows.

The seed-tag selector needs sliding-window averages of tag frequencies, and
the correlation tracker needs windowed document counts per tag and per tag
pair.  These aggregates keep the per-entry data so that evictions are exact;
approximate counterparts based on synopses live in :mod:`repro.sketches`.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple, Union

from repro.persistence.snapshot import require_compatible, require_state
from repro.windows.sliding import TimeSlidingWindow
from repro.windows.striped import StripedCounter


class SlidingSum:
    """Sum of numeric values observed within a time horizon."""

    def __init__(self, horizon: float):
        self._window = TimeSlidingWindow(horizon)
        self._sum = 0.0

    def add(self, timestamp: float, value: float) -> None:
        self._window.append(timestamp, float(value))
        self._resync()

    def advance_to(self, timestamp: float) -> None:
        self._window.advance_to(timestamp)
        self._resync()

    @property
    def value(self) -> float:
        return self._sum

    def __len__(self) -> int:
        return len(self._window)

    def _resync(self) -> None:
        # Recompute from live entries: windows are small relative to the
        # stream, and exact recomputation avoids floating point drift from
        # incremental add/subtract over long runs.
        self._sum = float(sum(self._window.values()))


class SlidingAverage:
    """Sliding-window average, the paper's popularity measure for seed tags."""

    def __init__(self, horizon: float):
        self._window = TimeSlidingWindow(horizon)

    def add(self, timestamp: float, value: float = 1.0) -> None:
        self._window.append(timestamp, float(value))

    def advance_to(self, timestamp: float) -> None:
        self._window.advance_to(timestamp)

    @property
    def count(self) -> int:
        return len(self._window)

    @property
    def value(self) -> float:
        """Mean of the live values; 0.0 when the window is empty."""
        if not self._window:
            return 0.0
        values = self._window.values()
        return float(sum(values)) / len(values)

    def rate(self) -> float:
        """Arrivals per time unit over the window horizon."""
        return len(self._window) / self._window.horizon


class SlidingCounter:
    """Number of events observed within a time horizon."""

    def __init__(self, horizon: float):
        self._window = TimeSlidingWindow(horizon)

    def add(self, timestamp: float) -> None:
        self._window.append(timestamp, 1)

    def advance_to(self, timestamp: float) -> None:
        self._window.advance_to(timestamp)

    @property
    def value(self) -> int:
        return len(self._window)

    @property
    def horizon(self) -> float:
        return self._window.horizon


class TagFrequencyWindow:
    """Windowed per-tag document counts over the stream.

    This is the statistic behind both seed-tag popularity and the
    denominators of the pairwise correlation measures: for each tag it tracks
    how many documents inside the sliding window carry that tag, and it also
    tracks the total number of documents in the window.
    """

    def __init__(self, horizon: float, stripes: int = 1):
        if horizon <= 0:
            raise ValueError("window horizon must be positive")
        if stripes < 1:
            raise ValueError("stripes must be at least 1")
        self.horizon = float(horizon)
        self.stripes = int(stripes)
        self._events: Deque[Tuple[float, Tuple[str, ...]]] = deque()
        # MRV striping for the hot per-tag tallies: with one writer the
        # plain Counter is strictly faster, so stripes=1 keeps it; the
        # threads shard backend opts into per-thread stripes merged on
        # read (integer sums, so totals stay bit-identical).
        self._counts: Union[Counter, StripedCounter] = (
            Counter() if self.stripes == 1 else StripedCounter(self.stripes)
        )
        self._documents = 0
        self._latest: Optional[float] = None

    @property
    def latest_timestamp(self) -> Optional[float]:
        return self._latest

    @property
    def document_count(self) -> int:
        """Number of documents currently inside the window."""
        return self._documents

    @property
    def counts(self) -> Counter:
        """The per-tag counts as one ``Counter`` (read-only; do not mutate).

        Hot loops (the tracker's evaluation samples hundreds of pairs per
        boundary) read this directly instead of paying two method calls per
        tag via :meth:`count`.  With ``stripes == 1`` this is the live
        counter itself; a striped window returns the exact merged sum of
        its stripes (one merge per evaluation, not per tag).
        """
        if self.stripes == 1:
            return self._counts
        return self._counts.merged()

    def add_document(self, timestamp: float, tags: Iterable[str],
                     prepared: bool = False) -> None:
        """Register a document and its (deduplicated) tag set.

        With ``prepared`` the caller asserts ``tags`` is already a
        deduplicated, sorted tuple, skipping the re-sort.
        """
        if self._latest is not None and timestamp < self._latest:
            raise ValueError(
                f"out-of-order insertion: {timestamp} < {self._latest}"
            )
        unique_tags = tags if prepared else tuple(sorted(set(tags)))
        self._events.append((timestamp, unique_tags))
        self._counts.update(unique_tags)
        self._documents += 1
        self._latest = timestamp
        self._evict(timestamp)

    def add_documents(
        self,
        documents: Iterable[Tuple[float, Iterable[str]]],
        prepared: bool = False,
    ) -> int:
        """Register a time-ordered chunk of ``(timestamp, tags)`` documents.

        Counter updates run once over the whole chunk and the window is
        evicted once at the end; because eviction is monotone in time, the
        final state is identical to one :meth:`add_document` call per
        document.  With ``prepared`` the caller asserts that every tag
        collection is already a deduplicated, sorted tuple (the correlation
        tracker normalises documents before handing them over), skipping the
        per-document re-sort.  Returns the number of documents added.

        The whole chunk is validated before any state is touched, so a
        rejected document leaves the window unchanged (as the per-document
        path does).
        """
        latest = self._latest
        staged: List[Tuple[float, Tuple[str, ...]]] = []
        added: List[str] = []
        for timestamp, tags in documents:
            if latest is not None and timestamp < latest:
                raise ValueError(
                    f"out-of-order insertion: {timestamp} < {latest}"
                )
            unique_tags = tags if prepared else tuple(sorted(set(tags)))
            staged.append((timestamp, unique_tags))
            added.extend(unique_tags)
            latest = timestamp
        if not staged:
            return 0
        self._events.extend(staged)
        self._counts.update(added)
        self._documents += len(staged)
        self._latest = latest
        self._evict(latest)
        return len(staged)

    def advance_to(self, timestamp: float) -> None:
        if self._latest is not None and timestamp < self._latest:
            raise ValueError(
                f"cannot advance backwards: {timestamp} < {self._latest}"
            )
        self._latest = timestamp
        self._evict(timestamp)

    def count(self, tag: str) -> int:
        """Documents in the window tagged with ``tag``."""
        return self._counts.get(tag, 0)

    def frequency(self, tag: str) -> float:
        """Fraction of windowed documents tagged with ``tag``."""
        if self._documents == 0:
            return 0.0
        return self._counts.get(tag, 0) / self._documents

    def tags(self) -> List[str]:
        """Tags with at least one live occurrence."""
        return [tag for tag, count in self._counts.items() if count > 0]

    def top_tags(self, k: int) -> List[Tuple[str, int]]:
        """The ``k`` most frequent tags in the window, ties broken by name."""
        if k <= 0:
            return []
        live = [(tag, count) for tag, count in self._counts.items() if count > 0]
        live.sort(key=lambda item: (-item[1], item[0]))
        return live[:k]

    def snapshot(self) -> Dict[str, int]:
        """Copy of the live per-tag counts."""
        return {tag: count for tag, count in self._counts.items() if count > 0}

    # -- persistence ----------------------------------------------------------

    def state_dict(self) -> dict:
        """The window's complete state as a versioned, JSON-safe dict.

        (Named ``state_dict`` rather than the ``Snapshotable`` protocol's
        ``snapshot`` because :meth:`snapshot` — the per-tag counts copy —
        predates the persistence layer and feeds the seed selector.)  Only
        the event deque and the latest timestamp are stored: the per-tag
        counters and the document count are derived exactly from the events
        on restore.
        """
        return {
            "kind": "tag-frequency-window",
            "version": 1,
            "horizon": self.horizon,
            "latest": self._latest,
            "events": [
                [timestamp, list(tags)] for timestamp, tags in self._events
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Replace this window's state with a :meth:`state_dict` snapshot."""
        require_state(state, "tag-frequency-window", 1)
        require_compatible(
            "tag-frequency-window", {"horizon": self.horizon}, state
        )
        events: Deque[Tuple[float, Tuple[str, ...]]] = deque()
        counts: Counter = Counter()
        for timestamp, tags in state["events"]:
            unique_tags = tuple(str(tag) for tag in tags)
            events.append((float(timestamp), unique_tags))
            counts.update(unique_tags)
        self._events = events
        if self.stripes == 1:
            self._counts = counts
        else:
            striped = StripedCounter(self.stripes)
            striped.seed(counts)
            self._counts = striped
        self._documents = len(events)
        latest = state["latest"]
        self._latest = None if latest is None else float(latest)

    def _evict(self, now: float) -> None:
        cutoff = now - self.horizon
        expired: List[str] = []
        while self._events and self._events[0][0] <= cutoff:
            _, tags = self._events.popleft()
            expired.extend(tags)
            self._documents -= 1
        if expired:
            self._counts.subtract(expired)
            for tag in set(expired):
                if self._counts[tag] <= 0:
                    del self._counts[tag]
