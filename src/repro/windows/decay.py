"""Exponential decay utilities.

The paper's shift detector keeps, for every candidate topic, "the maximum of
the current prediction error and the prediction errors from the past,
dampened appropriately using an exponential decline factor with a half life
of approximately 2 days".  :class:`DecayedMaximum` implements exactly that
decayed-maximum score; :class:`ExponentialDecay` provides the underlying
decay factor computation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

#: Two days expressed in seconds, the paper's default half-life.
TWO_DAYS_SECONDS = 2 * 24 * 3600.0


def half_life_to_lambda(half_life: float) -> float:
    """Convert a half-life into the exponential decay rate ``lambda``.

    A value decayed for ``half_life`` time units is multiplied by exactly
    ``0.5``: ``exp(-lambda * half_life) == 0.5``.
    """
    if half_life <= 0:
        raise ValueError("half-life must be positive")
    return math.log(2.0) / half_life


@dataclass(frozen=True)
class ExponentialDecay:
    """Exponential decay characterised by its half-life."""

    half_life: float = TWO_DAYS_SECONDS

    def __post_init__(self) -> None:
        if self.half_life <= 0:
            raise ValueError("half-life must be positive")

    @property
    def decay_rate(self) -> float:
        return half_life_to_lambda(self.half_life)

    def factor(self, elapsed: float) -> float:
        """Multiplicative decay factor after ``elapsed`` time units."""
        if elapsed < 0:
            raise ValueError("elapsed time must be non-negative")
        return math.exp(-self.decay_rate * elapsed)

    def decay(self, value: float, elapsed: float) -> float:
        """Return ``value`` dampened by ``elapsed`` time units of decay."""
        return value * self.factor(elapsed)


class DecayedMaximum:
    """Running maximum of observations under exponential decay.

    ``update(t, x)`` first decays the stored maximum from its last update
    time to ``t`` and then takes the maximum with ``x``.  ``value_at(t)``
    reads the decayed maximum without recording a new observation.  This is
    the score a topic carries in the emergent-topic ranking.
    """

    def __init__(self, decay: Optional[ExponentialDecay] = None):
        self.decay = decay or ExponentialDecay()
        self._value = 0.0
        self._last_update: Optional[float] = None

    @property
    def last_update(self) -> Optional[float]:
        return self._last_update

    def state(self) -> Tuple[float, Optional[float]]:
        """The raw ``(value, last_update)`` pair, for persistence."""
        return self._value, self._last_update

    def restore_state(self, value: float, last_update: Optional[float]) -> None:
        """Set the raw state, the inverse of :meth:`state`."""
        if value < 0:
            raise ValueError("decayed maxima are non-negative")
        self._value = float(value)
        self._last_update = None if last_update is None else float(last_update)

    def update(self, timestamp: float, observation: float) -> float:
        """Fold a new observation in and return the resulting score."""
        if observation < 0:
            raise ValueError("observations must be non-negative")
        decayed = self.value_at(timestamp)
        self._value = max(decayed, observation)
        self._last_update = timestamp
        return self._value

    def value_at(self, timestamp: float) -> float:
        """The decayed maximum as of ``timestamp`` (no state change)."""
        if self._last_update is None:
            return 0.0
        if timestamp < self._last_update:
            raise ValueError(
                f"cannot evaluate in the past: {timestamp} < {self._last_update}"
            )
        elapsed = timestamp - self._last_update
        return self.decay.decay(self._value, elapsed)

    def reset(self) -> None:
        self._value = 0.0
        self._last_update = None
