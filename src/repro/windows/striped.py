"""MRV-style striped counters for hot shared tallies.

The two hottest shared dictionaries of the pipeline — the tag-frequency
window's per-tag counts and the tracker's co-tag usage counters — are
written on every ingested document.  Under the ``threads`` shard backend a
single :class:`collections.Counter` guarded by one lock would serialize all
writers on one hot dict; the Multi-Record-Values idea (split one hot value
into per-worker records, merge on read) removes that: each writer thread
lands its increments in its own stripe under a stripe-local lock, and
readers sum the stripes.

Counts are integers, so the merge is exact — a striped counter reports
*bit-identical* totals to the plain ``Counter`` it replaces, which is what
lets :class:`~repro.windows.aggregates.TagFrequencyWindow` switch between
the two representations without perturbing a single correlation value.

Reads are proportionally more expensive (one dict merge per read), so the
default everywhere stays ``stripes=1`` — a plain ``Counter`` — and striping
is opted into where concurrent writers exist.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Iterable, Iterator, List, Mapping, Tuple


class StripedCounter:
    """A ``Counter`` split into per-thread stripes, merged on read.

    Writes (``update``, ``subtract``, ``__setitem__``) pick a stripe from
    the calling thread's identity and mutate it under that stripe's lock,
    so concurrent writers on different stripes never contend.  Reads
    (``__getitem__``, ``get``, ``items``, ``merged``) sum the stripes;
    integer sums are associative and exact, so the merged view equals the
    single-counter history of the same operations.

    Read-modify-write sequences (``counter[k] -= 1`` followed by a delete)
    are *not* atomic across threads — the callers in this repository
    perform them only from the owning coordinator thread, exactly as they
    did against the plain ``Counter``.
    """

    def __init__(self, stripes: int = 2):
        if stripes < 1:
            raise ValueError("stripes must be at least 1")
        self._counters: List[Counter] = [Counter() for _ in range(stripes)]
        self._locks: List[threading.Lock] = [
            threading.Lock() for _ in range(stripes)
        ]

    @property
    def stripes(self) -> int:
        return len(self._counters)

    def _stripe(self) -> int:
        # Thread identity spreads concurrent writers across stripes; any
        # assignment is *correct* (the merge is a plain integer sum), this
        # one just keeps a steady writer on a steady stripe.
        return threading.get_ident() % len(self._counters)

    # -- writes ---------------------------------------------------------------

    def update(self, keys: Iterable[str]) -> None:
        """Count every element of ``keys`` (Counter.update semantics)."""
        index = self._stripe()
        with self._locks[index]:
            self._counters[index].update(keys)

    def subtract(self, keys: Iterable[str]) -> None:
        """Subtract one per element of ``keys`` (Counter.subtract semantics)."""
        index = self._stripe()
        with self._locks[index]:
            self._counters[index].subtract(keys)

    def increment(self, key: str, amount: int = 1) -> None:
        index = self._stripe()
        with self._locks[index]:
            self._counters[index][key] += amount

    def __setitem__(self, key: str, value: int) -> None:
        """Set the *merged* total of ``key`` to ``value``.

        Clears the key from every stripe and records the total in the
        calling thread's stripe; used by the read-modify-write eviction
        paths, which only ever run on the owning thread.
        """
        for index, lock in enumerate(self._locks):
            with lock:
                self._counters[index].pop(key, None)
        self.increment(key, value)

    def __delitem__(self, key: str) -> None:
        for index, lock in enumerate(self._locks):
            with lock:
                self._counters[index].pop(key, None)

    def seed(self, counts: Mapping[str, int]) -> None:
        """Adopt ``counts`` wholesale (restore path); lands in one stripe."""
        for index, lock in enumerate(self._locks):
            with lock:
                self._counters[index].clear()
        with self._locks[0]:
            self._counters[0].update(counts)

    # -- reads ----------------------------------------------------------------

    def merged(self) -> Counter:
        """One exact ``Counter`` summing every stripe."""
        totals: Counter = Counter()
        for index, lock in enumerate(self._locks):
            with lock:
                totals.update(self._counters[index])
        return totals

    def __getitem__(self, key: str) -> int:
        return self.get(key, 0)

    def get(self, key: str, default: int = 0) -> int:
        total = 0
        present = False
        for index, lock in enumerate(self._locks):
            with lock:
                counter = self._counters[index]
                if key in counter:
                    present = True
                    total += counter[key]
        return total if present else default

    def __contains__(self, key: str) -> bool:
        return any(key in counter for counter in self._counters)

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(self.merged().items())

    def __iter__(self) -> Iterator[str]:
        return iter(self.merged())

    def __len__(self) -> int:
        return len(self.merged())

    def __bool__(self) -> bool:
        return any(self._counters)
