"""MRV-style striped counters for hot shared tallies.

The two hottest shared dictionaries of the pipeline — the tag-frequency
window's per-tag counts and the tracker's co-tag usage counters — are
written on every ingested document.  Under the ``threads`` shard backend a
single :class:`collections.Counter` guarded by one lock would serialize all
writers on one hot dict; the Multi-Record-Values idea (split one hot value
into per-worker records, merge on read) removes that: each writer thread
lands its increments in its own stripe under a stripe-local lock, and
readers sum the stripes.

Counts are integers, so the merge is exact — a striped counter reports
*bit-identical* totals to the plain ``Counter`` it replaces, which is what
lets :class:`~repro.windows.aggregates.TagFrequencyWindow` switch between
the two representations without perturbing a single correlation value.

Reads are proportionally more expensive (one dict merge per read), so the
default everywhere stays ``stripes=1`` — a plain ``Counter`` — and striping
is opted into where concurrent writers exist.
"""

from __future__ import annotations

import threading
import zlib
from collections import Counter, deque
from typing import Deque, Dict, Iterable, Iterator, List, Mapping, Tuple


class StripedCounter:
    """A ``Counter`` split into per-thread stripes, merged on read.

    Writes (``update``, ``subtract``, ``__setitem__``) pick a stripe from
    the calling thread's identity and mutate it under that stripe's lock,
    so concurrent writers on different stripes never contend.  Reads
    (``__getitem__``, ``get``, ``items``, ``merged``) sum the stripes;
    integer sums are associative and exact, so the merged view equals the
    single-counter history of the same operations.

    Read-modify-write sequences (``counter[k] -= 1`` followed by a delete)
    are *not* atomic across threads — the callers in this repository
    perform them only from the owning coordinator thread, exactly as they
    did against the plain ``Counter``.
    """

    def __init__(self, stripes: int = 2):
        if stripes < 1:
            raise ValueError("stripes must be at least 1")
        self._counters: List[Counter] = [Counter() for _ in range(stripes)]
        self._locks: List[threading.Lock] = [
            threading.Lock() for _ in range(stripes)
        ]

    @property
    def stripes(self) -> int:
        return len(self._counters)

    def _stripe(self) -> int:
        # Thread identity spreads concurrent writers across stripes; any
        # assignment is *correct* (the merge is a plain integer sum), this
        # one just keeps a steady writer on a steady stripe.
        return threading.get_ident() % len(self._counters)

    # -- writes ---------------------------------------------------------------

    def update(self, keys: Iterable[str]) -> None:
        """Count every element of ``keys`` (Counter.update semantics)."""
        index = self._stripe()
        with self._locks[index]:
            self._counters[index].update(keys)

    def subtract(self, keys: Iterable[str]) -> None:
        """Subtract one per element of ``keys`` (Counter.subtract semantics)."""
        index = self._stripe()
        with self._locks[index]:
            self._counters[index].subtract(keys)

    def increment(self, key: str, amount: int = 1) -> None:
        index = self._stripe()
        with self._locks[index]:
            self._counters[index][key] += amount

    def __setitem__(self, key: str, value: int) -> None:
        """Set the *merged* total of ``key`` to ``value``.

        Clears the key from every stripe and records the total in the
        calling thread's stripe; used by the read-modify-write eviction
        paths, which only ever run on the owning thread.
        """
        for index, lock in enumerate(self._locks):
            with lock:
                self._counters[index].pop(key, None)
        self.increment(key, value)

    def __delitem__(self, key: str) -> None:
        for index, lock in enumerate(self._locks):
            with lock:
                self._counters[index].pop(key, None)

    def seed(self, counts: Mapping[str, int]) -> None:
        """Adopt ``counts`` wholesale (restore path); lands in one stripe."""
        for index, lock in enumerate(self._locks):
            with lock:
                self._counters[index].clear()
        with self._locks[0]:
            self._counters[0].update(counts)

    # -- reads ----------------------------------------------------------------

    def merged(self) -> Counter:
        """One exact ``Counter`` summing every stripe."""
        totals: Counter = Counter()
        for index, lock in enumerate(self._locks):
            with lock:
                totals.update(self._counters[index])
        return totals

    def __getitem__(self, key: str) -> int:
        return self.get(key, 0)

    def get(self, key: str, default: int = 0) -> int:
        total = 0
        present = False
        for index, lock in enumerate(self._locks):
            with lock:
                counter = self._counters[index]
                if key in counter:
                    present = True
                    total += counter[key]
        return total if present else default

    def __contains__(self, key: str) -> bool:
        return any(key in counter for counter in self._counters)

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(self.merged().items())

    def __iter__(self) -> Iterator[str]:
        return iter(self.merged())

    def __len__(self) -> int:
        return len(self.merged())

    def __bool__(self) -> bool:
        return any(self._counters)


class StripedCountHistory:
    """The coordinator's per-tag count-history deques, striped by tag.

    The sharded coordinator appends one row to the count history at every
    evaluation boundary while — under the ``threads`` backend — checkpoint
    and status threads read it concurrently.  One dict under one lock would
    hold every reader for the full row append (one entry per live tag);
    here each tag's series lives in exactly one stripe (stable CRC-32
    routing, the same family as the pair partitioner), and
    :meth:`record_row` takes the stripe locks one at a time, so readers of
    other stripes proceed while one stripe's row lands.

    The merged view is a plain dict union — stripes partition the tag
    space, no key lives twice — so reads are *bit-identical* to the plain
    ``dict`` of deques this replaces, which is what lets the seed
    selectors and the snapshot path swap the representation freely.
    """

    def __init__(self, history_length: int, stripes: int = 2):
        if stripes < 1:
            raise ValueError("stripes must be at least 1")
        if history_length < 1:
            raise ValueError("history_length must be at least 1")
        self.history_length = int(history_length)
        self._maps: List[Dict[str, Deque[int]]] = [
            {} for _ in range(stripes)
        ]
        self._locks: List[threading.Lock] = [
            threading.Lock() for _ in range(stripes)
        ]

    @property
    def stripes(self) -> int:
        return len(self._maps)

    def _stripe(self, tag: str) -> int:
        # Stable content routing: a tag's whole series stays in one
        # stripe, so a read never merges partial series across stripes.
        return zlib.crc32(tag.encode("utf-8")) % len(self._maps)

    # -- writes ---------------------------------------------------------------

    def record_row(self, snapshot: Mapping[str, int]) -> None:
        """Fold one evaluation's per-tag count row in, stripe by stripe.

        Applies the :func:`repro.core.tracker.record_count_history` rule —
        present tags append their count, absent tags append an explicit
        zero, bounded deques trim — to each stripe under its own lock.
        """
        per_stripe: List[List[Tuple[str, int]]] = [
            [] for _ in self._maps
        ]
        for tag, count in snapshot.items():
            per_stripe[self._stripe(tag)].append((tag, count))
        for index, lock in enumerate(self._locks):
            with lock:
                series_map = self._maps[index]
                for tag, count in per_stripe[index]:
                    series = series_map.get(tag)
                    if series is None:
                        series = series_map[tag] = deque(
                            maxlen=self.history_length
                        )
                    series.append(count)
                for tag, series in series_map.items():
                    if tag not in snapshot:
                        series.append(0)

    def seed(self, history: Mapping[str, Iterable[int]]) -> None:
        """Adopt ``history`` wholesale (the restore path)."""
        for lock in self._locks:
            lock.acquire()
        try:
            for series_map in self._maps:
                series_map.clear()
            for tag, values in history.items():
                name = str(tag)
                self._maps[self._stripe(name)][name] = deque(
                    (int(value) for value in values),
                    maxlen=self.history_length,
                )
        finally:
            for lock in self._locks:
                lock.release()

    # -- reads ----------------------------------------------------------------

    def merged(self) -> Dict[str, Tuple[int, ...]]:
        """One plain dict of immutable series, consistent per stripe."""
        totals: Dict[str, Tuple[int, ...]] = {}
        for index, lock in enumerate(self._locks):
            with lock:
                for tag, series in self._maps[index].items():
                    totals[tag] = tuple(series)
        return totals

    def __getitem__(self, tag: str) -> Tuple[int, ...]:
        index = self._stripe(tag)
        with self._locks[index]:
            return tuple(self._maps[index][tag])

    def get(self, tag: str, default=None):
        index = self._stripe(tag)
        with self._locks[index]:
            series = self._maps[index].get(tag)
            return tuple(series) if series is not None else default

    def __contains__(self, tag: str) -> bool:
        index = self._stripe(tag)
        with self._locks[index]:
            return tag in self._maps[index]

    def items(self) -> Iterator[Tuple[str, Tuple[int, ...]]]:
        return iter(self.merged().items())

    def __iter__(self) -> Iterator[str]:
        return iter(self.merged())

    def __len__(self) -> int:
        return sum(len(series_map) for series_map in self._maps)

    def __bool__(self) -> bool:
        return any(self._maps)
