"""Command-line interface for the enBlogue reproduction.

A small CLI that makes the library's main entry points reachable without
writing a script: replaying the synthetic datasets through the detection
engine, comparing detectors against the injected ground truth, and exporting
the produced rankings as JSON for external consumers.

Examples::

    python -m repro.cli replay --dataset tweets --hours 48 --top-k 5
    python -m repro.cli replay --dataset tweets --shards 4 --backend process
    python -m repro.cli replay --dataset tweets --metrics
    python -m repro.cli replay --dataset nyt --export /tmp/rankings.json
    python -m repro.cli replay --dataset tweets --shards 2 \
        --checkpoint-every 8 --checkpoint-dir /tmp/ckpt
    python -m repro.cli replay --dataset tweets --shards 2 \
        --checkpoint-every 8 --checkpoint-dir /tmp/ckpt \
        --checkpoint-mode delta --full-every 16
    python -m repro.cli replay --resume /tmp/ckpt --shards 4
    python -m repro.cli serve --port 8000 --shards 2 --backend process \
        --checkpoint-dir /tmp/serve-ckpt --checkpoint-every 4 \
        --checkpoint-mode delta
    python -m repro.cli serve --resume /tmp/serve-ckpt --port 8000
    python -m repro.cli compare --dataset shifts
    python -m repro.cli explore --dataset nyt --start-day 50 --end-day 80
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional, Sequence, Tuple

from repro.baselines.popularity import PopularityBaseline
from repro.baselines.twitter_monitor import TwitterMonitorBaseline
from repro.core.config import EnBlogueConfig, live_stream_config, news_archive_config
from repro.core.engine import EnBlogue
from repro.core.explorer import ArchiveExplorer
from repro.datasets.documents import Corpus
from repro.datasets.events import EventSchedule
from repro.datasets.nyt import DAY, NytArchiveGenerator
from repro.datasets.synthetic import correlation_shift_stream
from repro.datasets.twitter import TweetStreamGenerator
from repro.evaluation.harness import run_detector, run_experiment
from repro.evaluation.reporting import format_table
from repro.observability import Observability, format_stage_table
from repro.persistence.cadence import CheckpointCadence
from repro.persistence.resume import load_engine
from repro.faults import FaultPlan
from repro.portal.serialization import rankings_to_json
from repro.sharding import (
    RetryPolicy,
    ShardedEnBlogue,
    SupervisedBackend,
    available_backends,
    make_backend,
)

HOUR = 3600.0

#: Parser defaults of the dataset parameters, shared with the resume
#: conflict check (a flag equal to its default was not explicitly asked
#: for, so it silently defers to the checkpoint manifest).
_RESUME_FALLBACK_DEFAULTS = {
    "dataset": "tweets", "hours": 72, "years": 0.5, "seed": 19,
}


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer: {value!r}")
    return parsed


def _load_dataset(name: str, hours: int, years: float,
                  seed: int) -> Tuple[Corpus, EventSchedule, EnBlogueConfig]:
    """Build the requested dataset and a configuration suited to it."""
    if name == "tweets":
        corpus, schedule = TweetStreamGenerator(
            hours=hours, tweets_per_hour=40, seed=seed).generate()
        return corpus, schedule, live_stream_config()
    if name == "nyt":
        corpus, schedule = NytArchiveGenerator(
            years=years, articles_per_day=16, seed=seed).generate()
        return corpus, schedule, news_archive_config()
    if name == "shifts":
        corpus, schedule = correlation_shift_stream(
            num_events=4, num_steps=max(hours, 48), shift_start=max(hours, 48) // 2,
            seed=seed)
        # A one-day window keeps the (gradual) correlation shifts sharp; the
        # two-day default of the live preset dilutes them below the noise.
        config = live_stream_config().with_overrides(
            window_horizon=24 * HOUR, min_seed_count=1,
            min_pair_support=2, min_history=3,
            predictor="moving_average", predictor_window=5)
        return corpus, schedule, config
    raise ValueError(f"unknown dataset {name!r}; expected tweets, nyt or shifts")


def _apply_overrides(config: EnBlogueConfig, args: argparse.Namespace) -> EnBlogueConfig:
    overrides = {}
    if args.top_k is not None:
        overrides["top_k"] = args.top_k
    if args.measure is not None:
        overrides["correlation_measure"] = args.measure
    if args.predictor is not None:
        overrides["predictor"] = args.predictor
    if args.seeds is not None:
        overrides["num_seeds"] = args.seeds
    if getattr(args, "tracking", None) is not None:
        overrides["tracking"] = args.tracking
    if getattr(args, "promote_support", None) is not None:
        overrides["promote_support"] = args.promote_support
    return config.with_overrides(**overrides) if overrides else config


def _resolve_backend(args: argparse.Namespace):
    """The --backend string, possibly wrapped for supervision and faults.

    Plain runs keep the string (``make_backend`` resolves it downstream,
    exactly as before).  ``--supervise`` builds the backend object and
    wraps it in a :class:`SupervisedBackend` carrying the retry policy
    and the checkpoint directory (so recovery can re-base from disk).  A
    ``REPRO_FAULT_PLAN`` environment plan — the chaos harness — is bound
    to whichever backend results.
    """
    plan = FaultPlan.from_env()
    name = args.backend
    supervise = getattr(args, "supervise", False) or name == "supervised"
    if not supervise and plan is None:
        return name
    if name == "supervised":
        name = "serial"
    backend = make_backend(name)
    if supervise:
        backend = SupervisedBackend(
            backend,
            policy=RetryPolicy(
                max_retries=getattr(args, "max_retries", 3),
                backoff_base=getattr(args, "retry_backoff", 0.05),
            ),
            checkpoint_dir=(getattr(args, "checkpoint_dir", None)
                            or getattr(args, "resume", None)),
        )
    if plan is not None:
        backend.bind_fault_plan(plan)
    return backend


def _make_engine(config: EnBlogueConfig, args: argparse.Namespace,
                 observability: Optional[Observability] = None):
    """The single engine, or the sharded one when --shards/--backend ask for it."""
    shards = args.shards or 1
    backend = _resolve_backend(args)
    if shards <= 1 and backend == "serial":
        return EnBlogue(config, observability=observability)
    return ShardedEnBlogue(config, num_shards=shards, backend=backend,
                           observability=observability)


def _print_runtime(engine) -> None:
    """One line naming the engine shape and the live evaluation path."""
    info = engine.runtime_info()
    print(
        f"runtime: engine={info['engine']} backend={info['backend']} "
        f"shards={info['shards']} evaluation_path={info['evaluation_path']} "
        f"tracking={info.get('tracking', 'exact')}"
    )


def _checkpoint_extras(dataset: str, hours: int, years: float,
                       seed: int) -> dict:
    """Dataset parameters stored in the manifest so --resume can rebuild
    the exact stream the checkpoint was taken from."""
    return {"dataset": dataset, "hours": hours, "years": years, "seed": seed}


def _metrics_extras_provider(observability: Optional[Observability]):
    """An ``extras_provider`` persisting the metric state per checkpoint.

    Metrics ride the manifest's ``extras`` (not the engine snapshot), so
    a resumed process continues its counters instead of starting the
    story over — and checkpoints written without observability stay
    byte-for-byte what they always were.
    """
    if observability is None or not observability.enabled:
        return None
    return lambda: {"metrics": observability.snapshot()}


def _restore_metrics(observability: Optional[Observability],
                     manifest: dict) -> None:
    """Continue the checkpointed metric story, if one was recorded."""
    if observability is None or not observability.enabled:
        return
    snapshot = manifest.get("extras", {}).get("metrics")
    if snapshot:
        observability.restore(snapshot)


def _checkpoint_cadence(engine, args: argparse.Namespace, extras: dict,
                        observability: Optional[Observability] = None,
                        ) -> CheckpointCadence:
    """The checkpoint policy shared by replays, resumes and ``serve``.

    Built on the shared :class:`CheckpointCadence` (the serving layer
    runs the very same class on its engine executor, so serve-time
    checkpoints cannot drift from what ``--resume`` is tested against).
    ``begin`` eagerly writes the delta chain's base — the replay-start
    state (for ``--resume``: the just-restored state, which compacts any
    inherited journal) — so every cadence tick until the next re-base
    appends a segment.
    """
    cadence = CheckpointCadence(
        engine,
        directory=args.checkpoint_dir,
        every=args.checkpoint_every,
        mode=args.checkpoint_mode,
        full_every=args.full_every,
        extras=extras,
        extras_provider=_metrics_extras_provider(observability),
    )
    cadence.begin()
    return cadence


def _report_checkpoints(cadence: CheckpointCadence, directory) -> None:
    if cadence.checkpoints_written:
        print(f"\nwrote {cadence.checkpoints_written} checkpoint(s) "
              f"to {directory}")


def _export_rankings(path: str, rankings: Sequence) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(rankings_to_json(list(rankings), indent=2))
    print(f"\nwrote {len(rankings)} rankings to {path}")


def _cmd_replay(args: argparse.Namespace) -> int:
    if args.checkpoint_every and not args.checkpoint_dir:
        raise SystemExit("--checkpoint-every requires --checkpoint-dir")
    if args.checkpoint_mode == "delta" and not args.checkpoint_every:
        raise SystemExit(
            "--checkpoint-mode delta requires --checkpoint-every: a delta "
            "journal only exists on a cadence (a one-off save is a full "
            "checkpoint already)"
        )
    if args.resume:
        return _cmd_replay_resume(args)
    corpus, schedule, config = _load_dataset(args.dataset, args.hours, args.years, args.seed)
    config = _apply_overrides(config, args)
    observability = Observability() if args.metrics else None
    engine = _make_engine(config, args, observability=observability)
    name = "enblogue" if isinstance(engine, EnBlogue) \
        else f"enblogue[{engine.num_shards}x{args.backend}]"

    if args.verbose:
        _print_runtime(engine)

    extras = _checkpoint_extras(args.dataset, args.hours, args.years, args.seed)
    cadence = _checkpoint_cadence(engine, args, extras, observability)

    try:
        result = run_experiment(
            engine, corpus, schedule, name=name, k=config.top_k,
            after_ranking=cadence.hook(),
        )
        cadence.finalize()
    finally:
        if isinstance(engine, ShardedEnBlogue):
            engine.close()
    print(format_table([result.summary()], title=f"replay of {args.dataset!r}"))
    if observability is not None:
        print()
        print(format_stage_table(observability.registry))
    _report_checkpoints(cadence, args.checkpoint_dir)
    final = result.run.final_ranking()
    if final is not None:
        print()
        print(final.describe(k=config.top_k))
    if args.export:
        _export_rankings(args.export, result.run.rankings)
    return 0


def _require_no_resume_overrides(args: argparse.Namespace,
                                 extras: dict, parser_defaults: dict) -> None:
    """Reject flags a resume cannot honor, instead of dropping them.

    A resumed engine runs under the checkpoint's configuration and
    replays the checkpoint's stream; silently accepting ``--top-k`` or
    ``--hours`` would hand the user something other than what they asked
    for.  Config overrides are detectable directly (their defaults are
    None); dataset parameters are flagged when they differ from both the
    parser default and the manifest (explicitly re-passing the recorded
    value is a harmless no-op).
    """
    for flag in ("top_k", "measure", "predictor", "seeds",
                 "tracking", "promote_support"):
        if getattr(args, flag) is not None:
            raise SystemExit(
                f"--{flag.replace('_', '-')} cannot be combined with "
                f"--resume: the engine runs under the checkpoint's "
                f"configuration"
            )
    for flag in ("dataset", "hours", "years", "seed"):
        value = getattr(args, flag)
        if flag in extras and value != parser_defaults[flag] \
                and value != type(value)(extras[flag]):
            raise SystemExit(
                f"--{flag} {value!r} conflicts with the checkpoint's "
                f"recorded {flag}={extras[flag]!r}; --resume always "
                f"replays the checkpointed stream"
            )


def _cmd_replay_resume(args: argparse.Namespace) -> int:
    """Resume a replay from a checkpoint directory.

    The engine (kind, configuration, shard count) is rebuilt from the
    checkpoint manifest; ``--shards``/``--backend`` override the shard
    count (re-partitioning the pair state) and the execution backend.  The
    dataset parameters recorded at save time rebuild the stream, and only
    the documents past the checkpoint are replayed.  ``--export`` writes
    the rankings produced *after* the resume point.
    """
    observability = Observability() if args.metrics else None
    engine, manifest = load_engine(
        args.resume, num_shards=args.shards, backend=_resolve_backend(args),
        observability=observability,
    )
    _restore_metrics(observability, manifest)
    extras = manifest.get("extras", {})
    try:
        _require_no_resume_overrides(args, extras, _RESUME_FALLBACK_DEFAULTS)
    except SystemExit:
        if isinstance(engine, ShardedEnBlogue):
            engine.close()
        raise
    dataset = extras.get("dataset", args.dataset)
    hours = int(extras.get("hours", args.hours))
    years = float(extras.get("years", args.years))
    seed = int(extras.get("seed", args.seed))
    corpus, _, _ = _load_dataset(dataset, hours, years, seed)

    if args.verbose:
        _print_runtime(engine)

    skip = engine.documents_processed
    remaining = list(corpus)[skip:]
    cadence = _checkpoint_cadence(engine, args, extras, observability)

    try:
        # The one replay loop of the harness: collection, the cadence
        # hook's consistency guarantees and the replayed-anything guard on
        # the forced final evaluation all come with it.
        run = run_detector(
            engine, remaining, name="resume", after_ranking=cadence.hook(),
        )
        produced = run.rankings
        cadence.finalize()
    finally:
        if isinstance(engine, ShardedEnBlogue):
            engine.close()

    shape = "single" if isinstance(engine, EnBlogue) \
        else f"{engine.num_shards}x{args.backend}"
    print(f"resumed {dataset!r} from {args.resume} ({shape}): "
          f"skipped {skip} checkpointed documents, replayed "
          f"{len(remaining)}, produced {len(produced)} rankings")
    if observability is not None:
        print()
        print(format_stage_table(observability.registry))
    _report_checkpoints(cadence, args.checkpoint_dir)
    if produced:
        print()
        print(produced[-1].describe(k=engine.config.top_k))
    if args.export:
        _export_rankings(args.export, produced)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve the engine over HTTP: live ingest, rankings, SSE stream.

    Documents arrive over ``POST /ingest`` (a bounded queue pushes back on
    producers), rankings leave over ``GET /rankings`` and the SSE stream
    ``GET /rankings/stream``, and the checkpoint cadence — delta mode
    included — rides the same event loop, writing between batches.
    ``--resume`` restores engine and configuration from a checkpoint
    directory and keeps serving the stream from where it stopped.
    """
    from repro.serving import DetectionService, RankingServer

    if args.checkpoint_every and not args.checkpoint_dir:
        raise SystemExit("--checkpoint-every requires --checkpoint-dir")
    if args.checkpoint_mode == "delta" and not args.checkpoint_every:
        raise SystemExit(
            "--checkpoint-mode delta requires --checkpoint-every: a delta "
            "journal only exists on a cadence"
        )
    # Serving always runs instrumented: /metrics, /trace, /logs, /slo
    # are part of the HTTP surface, and the ≤2% overhead is the price of
    # admission.  --log-file adds an NDJSON sink next to the in-memory
    # log ring.
    observability = Observability(log_path=args.log_file)
    if args.resume:
        for flag in ("top_k", "measure", "predictor", "seeds",
                     "tracking", "promote_support"):
            if getattr(args, flag) is not None:
                raise SystemExit(
                    f"--{flag.replace('_', '-')} cannot be combined with "
                    f"--resume: the engine runs under the checkpoint's "
                    f"configuration"
                )
        engine, manifest = load_engine(
            args.resume, num_shards=args.shards,
            backend=_resolve_backend(args),
            observability=observability,
        )
        _restore_metrics(observability, manifest)
        extras = dict(manifest.get("extras", {}))
        extras.pop("metrics", None)  # superseded by the extras_provider
    else:
        config = news_archive_config() if args.preset == "news" \
            else live_stream_config()
        config = _apply_overrides(config, args)
        engine = _make_engine(config, args, observability=observability)
        extras = {"source": "serve"}

    try:
        return asyncio.run(_serve_async(
            engine, args, extras, DetectionService, RankingServer,
            observability=observability,
        ))
    except KeyboardInterrupt:
        return 0
    finally:
        if isinstance(engine, ShardedEnBlogue):
            engine.close()
        observability.close()


async def _serve_async(engine, args: argparse.Namespace, extras: dict,
                       service_class, server_class,
                       observability: Optional[Observability] = None) -> int:
    cadence = None
    if args.checkpoint_dir:
        cadence = CheckpointCadence(
            engine,
            directory=args.checkpoint_dir,
            every=args.checkpoint_every,
            mode=args.checkpoint_mode,
            full_every=args.full_every,
            extras=extras,
            extras_provider=_metrics_extras_provider(observability),
        )
    service = service_class(
        engine,
        queue_capacity=args.queue_capacity,
        buffer_limit=args.buffer_limit,
        cadence=cadence,
        observability=observability,
    )
    await service.start()
    server = server_class(service, host=args.host, port=args.port)
    await server.start()

    shape = "single" if isinstance(engine, EnBlogue) \
        else f"{engine.num_shards}x{engine.backend.name}"
    print(f"serving enblogue[{shape}] on http://{server.host}:{server.port} "
          f"(POST /ingest, GET /rankings, GET /rankings/stream, GET /status, "
          f"GET /metrics, GET /trace, GET /profile, GET /logs, GET /slo)",
          flush=True)

    import signal

    stopping = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stopping.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    try:
        await stopping.wait()
    finally:
        # Stop accepting first, then drain: every accepted batch is
        # processed, its frames pushed to still-open SSE streams (which
        # end on the fan-out's sentinel), and the end state checkpointed
        # — only then are straggling connections reaped.
        await server.close_listener()
        await service.stop()
        await server.stop()
    status = service.status()
    print(f"\nserved {status['documents_processed']} documents, "
          f"published {status['rankings_published']} rankings, "
          f"wrote {status['checkpoints_written']} checkpoint(s)")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    corpus, schedule, config = _load_dataset(args.dataset, args.hours, args.years, args.seed)
    config = _apply_overrides(config, args)
    window = config.window_horizon
    interval = config.evaluation_interval
    detectors = {
        "enblogue": EnBlogue(config),
        "twitter-monitor": TwitterMonitorBaseline(
            window_horizon=window, evaluation_interval=interval, top_k=config.top_k),
        "popularity": PopularityBaseline(
            window_horizon=window, evaluation_interval=interval, top_k=config.top_k),
    }
    rows = []
    for name, detector in detectors.items():
        result = run_experiment(detector, corpus, schedule, name=name, k=config.top_k)
        rows.append(result.summary())
    print(format_table(rows, title=f"detector comparison on {args.dataset!r}"))
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    corpus, schedule, config = _load_dataset(args.dataset, args.hours, args.years, args.seed)
    partition = DAY if args.dataset == "nyt" else HOUR
    explorer = ArchiveExplorer(partition_length=partition,
                               min_pair_support=2)
    explorer.index_many(corpus)
    start, end = explorer.time_range()
    unit = DAY if args.dataset == "nyt" else HOUR
    range_start = start + args.start_day * unit if args.start_day is not None else start
    range_end = start + args.end_day * unit if args.end_day is not None else end
    ranking = explorer.rank(range_start, range_end, top_k=args.top_k or 10)
    print(f"indexed {explorer.documents_indexed} documents; "
          f"ranking for [{range_start:.0f}, {range_end:.0f}]:")
    print(ranking.describe())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="EnBlogue emergent-topic detection (SIGMOD 2011 reproduction)")
    parser.add_argument("--seed", type=int,
                        default=_RESUME_FALLBACK_DEFAULTS["seed"],
                        help="dataset generator seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--dataset", choices=("tweets", "nyt", "shifts"),
                         default=_RESUME_FALLBACK_DEFAULTS["dataset"],
                         help="which synthetic dataset to replay")
        sub.add_argument("--hours", type=int,
                         default=_RESUME_FALLBACK_DEFAULTS["hours"],
                         help="stream length in hours (tweets / shifts datasets)")
        sub.add_argument("--years", type=float,
                         default=_RESUME_FALLBACK_DEFAULTS["years"],
                         help="archive length in years (nyt dataset)")
        sub.add_argument("--top-k", type=int, default=None, help="ranking size")
        sub.add_argument("--measure", default=None,
                         help="correlation measure (jaccard, overlap, cosine, pmi, kl)")
        sub.add_argument("--predictor", default=None,
                         help="shift predictor (last, moving_average, ewma, linear, holt)")
        sub.add_argument("--seeds", type=int, default=None, help="number of seed tags")
        sub.add_argument("--tracking", choices=("exact", "tiered"),
                         default=None,
                         help="pair-tracking mode: 'exact' keeps every live "
                              "pair; 'tiered' absorbs cold pairs in a "
                              "Count-Min + Bloom sketch tier and promotes "
                              "only pairs reaching --promote-support")
        sub.add_argument("--promote-support", type=int, default=None,
                         metavar="K",
                         help="with --tracking tiered: sketched windowed "
                              "support at which a pair is promoted into "
                              "exact tracking (0 or 1 degenerate to the "
                              "exact engine)")

    replay = subparsers.add_parser("replay", help="replay a dataset through enBlogue")
    add_common(replay)
    replay.add_argument("--verbose", action="store_true",
                        help="print the engine shape and active evaluation "
                             "path (vectorized or scalar) before replaying")
    replay.add_argument("--metrics", action="store_true",
                        help="run instrumented (metrics registry + stage "
                             "tracer) and print a per-stage timing table "
                             "after the replay")
    replay.add_argument("--export", default=None,
                        help="write the produced rankings to this JSON file "
                             "(with --resume: only the post-resume rankings)")
    replay.add_argument("--shards", type=_positive_int, default=None,
                        help="partition the pair space over N shards "
                             "(default 1 = the single-process engine; with "
                             "--resume: restore into N shards, re-partitioning "
                             "the checkpointed pair state if N differs)")
    replay.add_argument("--backend", choices=available_backends(), default="serial",
                        help="shard execution backend (with --shards > 1)")
    replay.add_argument("--checkpoint-every", type=_positive_int, default=None,
                        metavar="N",
                        help="write a checkpoint after every N published "
                             "rankings (requires --checkpoint-dir)")
    replay.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="checkpoint directory; without --checkpoint-every "
                             "the end-of-replay state is saved once")
    replay.add_argument("--checkpoint-mode", choices=("full", "delta"),
                        default="full",
                        help="cadence checkpoint format: 'full' re-serializes "
                             "the whole window each tick; 'delta' writes a "
                             "full base then appends journal segments "
                             "proportional to the new documents")
    replay.add_argument("--full-every", type=_positive_int, default=16,
                        metavar="K",
                        help="with --checkpoint-mode delta: write a fresh "
                             "full base (compacting the journal) every K-th "
                             "cadence tick")
    replay.add_argument("--resume", default=None, metavar="DIR",
                        help="resume from the checkpoint in DIR instead of "
                             "replaying from cold (engine config and dataset "
                             "parameters come from the checkpoint manifest)")
    replay.add_argument("--supervise", action="store_true",
                        help="wrap the shard backend in the self-healing "
                             "supervisor: dead workers are respawned and "
                             "their state rebuilt (checkpoint + journal "
                             "replay when --checkpoint-dir is set, "
                             "in-memory replay otherwise)")
    replay.add_argument("--max-retries", type=int, default=3, metavar="N",
                        help="with --supervise: failed shard operations are "
                             "retried up to N times before the failure is "
                             "escalated as permanent")
    replay.add_argument("--retry-backoff", type=float, default=0.05,
                        metavar="SECONDS",
                        help="with --supervise: base of the exponential "
                             "retry backoff (doubles per attempt)")
    replay.set_defaults(handler=_cmd_replay)

    serve = subparsers.add_parser(
        "serve",
        help="serve the engine over HTTP: live ingest, rankings, SSE push")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8000,
                       help="TCP port (0 picks an ephemeral port, printed "
                            "on startup)")
    serve.add_argument("--preset", choices=("live", "news"), default="live",
                       help="configuration preset for a fresh engine "
                            "(ignored with --resume)")
    serve.add_argument("--top-k", type=int, default=None, help="ranking size")
    serve.add_argument("--measure", default=None,
                       help="correlation measure (jaccard, overlap, cosine, "
                            "pmi, kl)")
    serve.add_argument("--predictor", default=None,
                       help="shift predictor (last, moving_average, ewma, "
                            "linear, holt)")
    serve.add_argument("--seeds", type=int, default=None,
                       help="number of seed tags")
    serve.add_argument("--tracking", choices=("exact", "tiered"),
                       default=None,
                       help="pair-tracking mode (see replay)")
    serve.add_argument("--promote-support", type=int, default=None,
                       metavar="K",
                       help="with --tracking tiered: promotion threshold "
                            "(see replay)")
    serve.add_argument("--shards", type=_positive_int, default=None,
                       help="partition the pair space over N shards "
                            "(default 1 = the single-process engine)")
    serve.add_argument("--backend", choices=available_backends(),
                       default="serial",
                       help="shard execution backend (with --shards > 1)")
    serve.add_argument("--queue-capacity", type=_positive_int, default=8,
                       help="bound of the ingest queue, in batches; a full "
                            "queue blocks POST /ingest responses "
                            "(backpressure)")
    serve.add_argument("--buffer-limit", type=_positive_int, default=64,
                       help="per-subscriber SSE frame buffer; slow "
                            "consumers drop oldest frames beyond it")
    serve.add_argument("--log-file", default=None, metavar="PATH",
                       help="append every structured log record (the NDJSON "
                            "events served on GET /logs) to this file")
    serve.add_argument("--checkpoint-every", type=_positive_int, default=None,
                       metavar="N",
                       help="checkpoint after every N published rankings "
                            "(requires --checkpoint-dir)")
    serve.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="checkpoint directory; without "
                            "--checkpoint-every the end state is saved "
                            "once at shutdown")
    serve.add_argument("--checkpoint-mode", choices=("full", "delta"),
                       default="full",
                       help="cadence checkpoint format (see replay)")
    serve.add_argument("--full-every", type=_positive_int, default=16,
                       metavar="K",
                       help="with --checkpoint-mode delta: re-base the "
                            "journal every K-th cadence tick")
    serve.add_argument("--resume", default=None, metavar="DIR",
                       help="restore engine and configuration from the "
                            "checkpoint in DIR and continue serving")
    serve.add_argument("--supervise", action="store_true",
                       help="self-healing shard pool: dead workers are "
                            "respawned and rebuilt mid-serve while ingest "
                            "keeps being accepted and the last good "
                            "ranking is served (marked stale)")
    serve.add_argument("--max-retries", type=int, default=3, metavar="N",
                       help="with --supervise: retry budget per shard "
                            "operation before escalating to 503")
    serve.add_argument("--retry-backoff", type=float, default=0.05,
                       metavar="SECONDS",
                       help="with --supervise: base of the exponential "
                            "retry backoff (doubles per attempt)")
    serve.set_defaults(handler=_cmd_serve)

    compare = subparsers.add_parser("compare",
                                    help="compare enBlogue against the baselines")
    add_common(compare)
    compare.set_defaults(handler=_cmd_compare)

    explore = subparsers.add_parser("explore",
                                    help="rank an archive time range (show case 1)")
    add_common(explore)
    explore.add_argument("--start-day", type=float, default=None,
                         help="analysis window start (days/hours from archive start)")
    explore.add_argument("--end-day", type=float, default=None,
                         help="analysis window end (days/hours from archive start)")
    explore.set_defaults(handler=_cmd_explore)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
