"""One-step-ahead predictors for correlation series.

The shift detector's rule is: "at any point in time we use the previous
correlation values and try to predict the current ones.  If a predicted
value is far away from the real one then the topic is considered to be
emergent and the prediction error is used as a ranking criterion."  Each
predictor here answers the question "given the history, what value do you
expect next?" — the detector supplies the history and compares against the
observation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Type


class Predictor:
    """Interface: predict the next value from a history of past values."""

    #: Minimum number of past observations needed for a meaningful forecast.
    min_history = 1

    def predict(self, history: Sequence[float]) -> float:
        """Forecast the next value.  ``history`` is ordered oldest-first."""
        raise NotImplementedError

    def can_predict(self, history: Sequence[float]) -> bool:
        return len(history) >= self.min_history


class LastValuePredictor(Predictor):
    """Naive persistence forecast: the next value equals the last one."""

    def predict(self, history: Sequence[float]) -> float:
        if not history:
            raise ValueError("cannot predict from an empty history")
        return float(history[-1])


class MovingAveragePredictor(Predictor):
    """Mean of the last ``window`` observations."""

    def __init__(self, window: int = 5):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = int(window)

    def predict(self, history: Sequence[float]) -> float:
        if not history:
            raise ValueError("cannot predict from an empty history")
        recent = history[-self.window:]
        return float(sum(recent)) / len(recent)


class EwmaPredictor(Predictor):
    """Exponentially weighted moving average with smoothing factor ``alpha``."""

    def __init__(self, alpha: float = 0.3):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must lie in (0, 1]")
        self.alpha = float(alpha)

    def predict(self, history: Sequence[float]) -> float:
        if not history:
            raise ValueError("cannot predict from an empty history")
        estimate = float(history[0])
        for value in history[1:]:
            estimate = self.alpha * float(value) + (1 - self.alpha) * estimate
        return estimate


class LinearTrendPredictor(Predictor):
    """Least-squares line over the last ``window`` points, extrapolated one step."""

    min_history = 2

    def __init__(self, window: int = 8):
        if window < 2:
            raise ValueError("window must be at least 2")
        self.window = int(window)

    def predict(self, history: Sequence[float]) -> float:
        if len(history) < 2:
            raise ValueError("linear trend needs at least two observations")
        recent = [float(v) for v in history[-self.window:]]
        n = len(recent)
        xs = list(range(n))
        mean_x = sum(xs) / n
        mean_y = sum(recent) / n
        denominator = sum((x - mean_x) ** 2 for x in xs)
        if denominator == 0:
            return mean_y
        slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, recent)) / denominator
        intercept = mean_y - slope * mean_x
        return intercept + slope * n


class HoltPredictor(Predictor):
    """Holt's double exponential smoothing (level + trend)."""

    min_history = 2

    def __init__(self, alpha: float = 0.4, beta: float = 0.2):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must lie in (0, 1]")
        if not 0 < beta <= 1:
            raise ValueError("beta must lie in (0, 1]")
        self.alpha = float(alpha)
        self.beta = float(beta)

    def predict(self, history: Sequence[float]) -> float:
        if len(history) < 2:
            raise ValueError("Holt smoothing needs at least two observations")
        values = [float(v) for v in history]
        level = values[0]
        trend = values[1] - values[0]
        for value in values[1:]:
            previous_level = level
            level = self.alpha * value + (1 - self.alpha) * (level + trend)
            trend = self.beta * (level - previous_level) + (1 - self.beta) * trend
        return level + trend


_PREDICTOR_REGISTRY: Dict[str, Type[Predictor]] = {
    "last": LastValuePredictor,
    "moving_average": MovingAveragePredictor,
    "ewma": EwmaPredictor,
    "linear": LinearTrendPredictor,
    "holt": HoltPredictor,
}


def available_predictors() -> List[str]:
    """Names accepted by :func:`make_predictor`."""
    return sorted(_PREDICTOR_REGISTRY)


def make_predictor(name: str, **kwargs) -> Predictor:
    """Instantiate a predictor by name (``last``, ``moving_average``,
    ``ewma``, ``linear`` or ``holt``)."""
    try:
        predictor_class = _PREDICTOR_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown predictor {name!r}; available: {available_predictors()}"
        ) from None
    return predictor_class(**kwargs)
