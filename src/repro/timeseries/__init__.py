"""General time-series machinery used by the shift detector and baselines.

Section 2 of the paper notes that "dealing with time series in this general
sense is a sub-problem of our approach that arises in the second step of our
framework".  This package collects that machinery: one-step-ahead predictors
(the shift detector scores a tag pair by how far the observed correlation is
from the predicted one), burst detection over single-tag frequency series
(the TwitterMonitor-style baseline), and online motif discovery (the Mueen &
Keogh line of work the paper cites as a complementary tool).
"""

from repro.timeseries.predictors import (
    EwmaPredictor,
    HoltPredictor,
    LastValuePredictor,
    LinearTrendPredictor,
    MovingAveragePredictor,
    Predictor,
    make_predictor,
)
from repro.timeseries.bursts import BurstDetector, BurstEvent, MeanDeviationBurstModel
from repro.timeseries.motifs import MotifDiscovery, Motif

__all__ = [
    "Predictor",
    "LastValuePredictor",
    "MovingAveragePredictor",
    "EwmaPredictor",
    "LinearTrendPredictor",
    "HoltPredictor",
    "make_predictor",
    "BurstDetector",
    "BurstEvent",
    "MeanDeviationBurstModel",
    "MotifDiscovery",
    "Motif",
]
