"""Online discovery of repeating patterns (motifs) in a time series.

The paper cites Mueen & Keogh (KDD 2010) on "online discovery and
maintenance of time series motifs" as complementary machinery for the
time-series sub-problem.  We provide a straightforward online motif tracker:
it maintains the pair of (z-normalised) subsequences of a fixed length with
the smallest Euclidean distance seen so far, updating as new points arrive.
It is quadratic per insertion in the number of stored windows rather than
using the authors' optimised data structures, which is adequate at the
series lengths produced by the correlation tracker.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Motif:
    """The closest pair of subsequences found so far."""

    first_start: int
    second_start: int
    length: int
    distance: float

    def __post_init__(self) -> None:
        if self.first_start < 0 or self.second_start < 0:
            raise ValueError("motif offsets must be non-negative")
        if self.length <= 0:
            raise ValueError("motif length must be positive")
        if self.distance < 0:
            raise ValueError("motif distance must be non-negative")


def _znormalize(values: Sequence[float]) -> List[float]:
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    std = math.sqrt(variance)
    if std < 1e-12:
        return [0.0] * n
    return [(v - mean) / std for v in values]


def _euclidean(a: Sequence[float], b: Sequence[float]) -> float:
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


class MotifDiscovery:
    """Maintain the best motif pair of a streaming series online."""

    def __init__(self, window: int = 8, exclusion: Optional[int] = None):
        if window < 2:
            raise ValueError("motif window must be at least 2")
        self.window = int(window)
        # Trivial matches (overlapping windows) are excluded, as in the
        # motif-discovery literature.
        self.exclusion = int(exclusion) if exclusion is not None else self.window
        self._values: List[float] = []
        self._windows: List[Tuple[int, List[float]]] = []
        self._best: Optional[Motif] = None

    def __len__(self) -> int:
        return len(self._values)

    @property
    def best_motif(self) -> Optional[Motif]:
        return self._best

    def append(self, value: float) -> Optional[Motif]:
        """Add one observation; return the best motif if it changed."""
        self._values.append(float(value))
        if len(self._values) < self.window:
            return None
        start = len(self._values) - self.window
        newest = _znormalize(self._values[start:])
        improved = None
        for other_start, other in self._windows:
            if abs(start - other_start) < self.exclusion:
                continue
            distance = _euclidean(newest, other)
            if self._best is None or distance < self._best.distance:
                self._best = Motif(
                    first_start=other_start,
                    second_start=start,
                    length=self.window,
                    distance=distance,
                )
                improved = self._best
        self._windows.append((start, newest))
        return improved

    def extend(self, values: Sequence[float]) -> Optional[Motif]:
        """Append many observations; return the final best motif."""
        for value in values:
            self.append(value)
        return self._best
