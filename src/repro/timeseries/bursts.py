"""Burst detection over single-tag frequency series.

TwitterMonitor (Mathioudakis & Koudas, SIGMOD 2010) — the closest related
system and our main baseline — "discovers topic trends in tweets by
detecting bursts of tags or tag groups".  A tag is bursting when its current
arrival rate significantly exceeds its historical baseline.  We implement a
mean/standard-deviation burst model over a trailing history window, which is
the standard formulation of that test and is sufficient to reproduce the
qualitative contrast the paper draws in Figure 1 (bursty tags versus
correlation shifts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class BurstEvent:
    """One detected burst: which series, when, and how strong."""

    key: str
    timestamp: float
    value: float
    baseline: float
    score: float

    def __post_init__(self) -> None:
        if self.score < 0:
            raise ValueError("burst scores are non-negative")


class MeanDeviationBurstModel:
    """Z-score style burst test against a trailing baseline window."""

    def __init__(self, history: int = 24, threshold: float = 3.0, min_history: int = 4):
        if history <= 0:
            raise ValueError("history must be positive")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if min_history < 2:
            raise ValueError("min_history must be at least 2")
        self.history = int(history)
        self.threshold = float(threshold)
        self.min_history = int(min_history)

    def score(self, history: Sequence[float], value: float) -> float:
        """Burst score of ``value`` given the trailing ``history``.

        The score is the number of standard deviations the value lies above
        the historical mean (0 when below the mean or history is too short).
        A small variance floor keeps constant histories from producing
        infinite scores.
        """
        if len(history) < self.min_history:
            return 0.0
        recent = [float(v) for v in history[-self.history:]]
        mean = sum(recent) / len(recent)
        variance = sum((v - mean) ** 2 for v in recent) / len(recent)
        std = math.sqrt(variance)
        floor = max(1.0, 0.05 * mean)
        std = max(std, floor * 0.25)
        if value <= mean:
            return 0.0
        return (value - mean) / std

    def is_burst(self, history: Sequence[float], value: float) -> bool:
        return self.score(history, value) >= self.threshold


class BurstDetector:
    """Track many keyed series and report bursts as observations arrive."""

    def __init__(self, model: Optional[MeanDeviationBurstModel] = None):
        self.model = model or MeanDeviationBurstModel()
        self._histories: Dict[str, List[float]] = {}
        self._events: List[BurstEvent] = []

    def observe(self, key: str, timestamp: float, value: float) -> Optional[BurstEvent]:
        """Record one observation; return a burst event if it qualifies."""
        history = self._histories.setdefault(key, [])
        score = self.model.score(history, value)
        event: Optional[BurstEvent] = None
        if score >= self.model.threshold:
            recent = history[-self.model.history:]
            baseline = sum(recent) / len(recent) if recent else 0.0
            event = BurstEvent(
                key=key, timestamp=timestamp, value=value,
                baseline=baseline, score=score,
            )
            self._events.append(event)
        history.append(float(value))
        # Bound memory: only the trailing model history is ever consulted.
        if len(history) > 4 * self.model.history:
            del history[: len(history) - 2 * self.model.history]
        return event

    def history(self, key: str) -> List[float]:
        return list(self._histories.get(key, []))

    def events(self, key: Optional[str] = None) -> List[BurstEvent]:
        """All burst events so far, optionally filtered by key."""
        if key is None:
            return list(self._events)
        return [event for event in self._events if event.key == key]

    def bursting_keys(self, since: Optional[float] = None) -> List[str]:
        """Keys with at least one burst, optionally restricted to recent ones."""
        keys = []
        for event in self._events:
            if since is not None and event.timestamp < since:
                continue
            if event.key not in keys:
                keys.append(event.key)
        return keys
