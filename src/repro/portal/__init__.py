"""The front-end substrate: push-based ranking delivery.

Section 4.2: rankings are delivered to web browsers "in a push-based manner
(i.e., without the user having to continuously poll the server for updates
on emergent topic rankings)" through the Ajax Push Engine (APE): the
back-end sends topic rankings to APE, which "dispatches the messages to the
registered clients, i.e., all Web browsers that have currently active
sessions".

The browser side is out of scope for a library reproduction, but the message
flow is not: :class:`PushDispatcher` implements APE's channel/subscriber
semantics in process, :class:`ClientSession` stands in for a browser
session, and :class:`Portal` glues the enBlogue engine, the dispatcher and
per-user personalization together.
"""

from repro.portal.push import (
    Channel,
    ChannelClosedError,
    PushDispatcher,
    PushMessage,
)
from repro.portal.sessions import ClientSession
from repro.portal.server import Portal
from repro.portal.serialization import (
    ranking_from_dict,
    ranking_from_json,
    ranking_to_dict,
    ranking_to_json,
    rankings_from_json,
    rankings_to_json,
)

__all__ = [
    "PushMessage",
    "Channel",
    "ChannelClosedError",
    "PushDispatcher",
    "ClientSession",
    "Portal",
    "ranking_to_dict",
    "ranking_from_dict",
    "ranking_to_json",
    "ranking_from_json",
    "rankings_to_json",
    "rankings_from_json",
]
