"""An APE-style publish/subscribe dispatcher.

Channels carry messages; subscribers (client sessions or plain callables)
receive every message published on the channels they joined, at publish
time — push, not poll.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

Subscriber = Callable[["PushMessage"], None]


class ChannelClosedError(RuntimeError):
    """Publish or subscribe on a closed channel/dispatcher.

    Mirrors the shard backends' use-after-close contract: a closed
    channel silently swallowing messages would let a shut-down serving
    layer drop ranking pushes without anyone noticing, so the misuse
    fails loudly at the call site instead.
    """


@dataclass(frozen=True)
class PushMessage:
    """One message pushed to a channel."""

    channel: str
    payload: Any
    sequence: int
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if not self.channel:
            raise ValueError("channel must be non-empty")
        if self.sequence < 0:
            raise ValueError("sequence numbers are non-negative")


class Channel:
    """A named channel with its subscribers and a bounded message log."""

    def __init__(self, name: str, history_limit: int = 100):
        if not name:
            raise ValueError("channel name must be non-empty")
        if history_limit < 0:
            raise ValueError("history_limit must be non-negative")
        self.name = name
        self.history_limit = int(history_limit)
        self._subscribers: Dict[str, Subscriber] = {}
        self._history: List[PushMessage] = []
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def subscriber_ids(self) -> List[str]:
        return sorted(self._subscribers)

    def close(self) -> None:
        """Close the channel (idempotent): drops subscribers, keeps history.

        Further ``publish``/``subscribe`` calls raise
        :class:`ChannelClosedError`; ``history()`` stays readable so late
        consumers can still catch up on what was delivered.
        """
        self._closed = True
        self._subscribers.clear()

    def subscribe(self, subscriber_id: str, callback: Subscriber) -> None:
        self._ensure_open("subscribe to")
        self._subscribers[subscriber_id] = callback

    def unsubscribe(self, subscriber_id: str) -> None:
        self._subscribers.pop(subscriber_id, None)

    def publish(self, message: PushMessage) -> int:
        """Deliver ``message`` to every subscriber; returns delivery count."""
        self._ensure_open("publish on")
        self._history.append(message)
        if self.history_limit and len(self._history) > self.history_limit:
            del self._history[: len(self._history) - self.history_limit]
        delivered = 0
        for callback in list(self._subscribers.values()):
            callback(message)
            delivered += 1
        return delivered

    def history(self) -> List[PushMessage]:
        """Recent messages (new subscribers can catch up without polling)."""
        return list(self._history)

    def _ensure_open(self, action: str) -> None:
        if self._closed:
            raise ChannelClosedError(
                f"cannot {action} channel {self.name!r}: it is closed"
            )


class PushDispatcher:
    """Routes published payloads to channel subscribers."""

    def __init__(self, history_limit: int = 100):
        self.history_limit = int(history_limit)
        self._channels: Dict[str, Channel] = {}
        self._sequence = itertools.count()
        self._closed = False
        self.messages_published = 0
        self.deliveries = 0

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the dispatcher and every channel it routes (idempotent).

        Publishing (or creating/subscribing a channel) afterwards raises
        :class:`ChannelClosedError` — the same fail-loudly contract as the
        shard backends' use-after-close: a shut-down push path must never
        silently drop ranking updates.
        """
        self._closed = True
        for channel in self._channels.values():
            channel.close()

    def channel(self, name: str) -> Channel:
        """Get or create a channel."""
        self._ensure_open()
        if name not in self._channels:
            self._channels[name] = Channel(name, history_limit=self.history_limit)
        return self._channels[name]

    def channels(self) -> List[str]:
        return sorted(self._channels)

    def subscribe(self, channel_name: str, subscriber_id: str,
                  callback: Subscriber) -> Channel:
        channel = self.channel(channel_name)
        channel.subscribe(subscriber_id, callback)
        return channel

    def unsubscribe(self, channel_name: str, subscriber_id: str) -> None:
        if channel_name in self._channels:
            self._channels[channel_name].unsubscribe(subscriber_id)

    def publish(self, channel_name: str, payload: Any,
                timestamp: float = 0.0) -> PushMessage:
        """Publish ``payload`` on a channel and push it to all subscribers."""
        message = PushMessage(
            channel=channel_name,
            payload=payload,
            sequence=next(self._sequence),
            timestamp=timestamp,
        )
        delivered = self.channel(channel_name).publish(message)
        self.messages_published += 1
        self.deliveries += delivered
        return message

    def _ensure_open(self) -> None:
        if self._closed:
            raise ChannelClosedError(
                "cannot use a closed push dispatcher"
            )
