"""Client sessions: the stand-in for connected web browsers."""

from __future__ import annotations

from typing import Any, List, Optional

from repro.portal.push import PushMessage


class ClientSession:
    """One connected client receiving pushed ranking updates.

    The session records every message it receives (the "screen" of the
    simulated browser); ``latest_payload`` is what the user currently sees.
    A bounded inbox keeps long replays from accumulating unbounded state,
    mirroring a browser that only renders the latest updates.
    """

    def __init__(self, session_id: str, inbox_limit: int = 500):
        if not session_id:
            raise ValueError("session_id must be non-empty")
        if inbox_limit <= 0:
            raise ValueError("inbox_limit must be positive")
        self.session_id = session_id
        self.inbox_limit = int(inbox_limit)
        self._inbox: List[PushMessage] = []
        self.connected = True

    def __len__(self) -> int:
        return len(self._inbox)

    def deliver(self, message: PushMessage) -> None:
        """Receive one pushed message (no-op after disconnect)."""
        if not self.connected:
            return
        self._inbox.append(message)
        if len(self._inbox) > self.inbox_limit:
            del self._inbox[: len(self._inbox) - self.inbox_limit]

    def messages(self, channel: Optional[str] = None) -> List[PushMessage]:
        if channel is None:
            return list(self._inbox)
        return [message for message in self._inbox if message.channel == channel]

    def latest_payload(self, channel: Optional[str] = None) -> Optional[Any]:
        """Payload of the most recent message (optionally per channel)."""
        messages = self.messages(channel)
        if not messages:
            return None
        return messages[-1].payload

    def disconnect(self) -> None:
        self.connected = False
