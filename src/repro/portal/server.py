"""The portal: enBlogue rankings pushed to connected client sessions.

The portal subscribes itself to the engine's ranking updates, publishes the
global ranking on a public channel, and publishes per-user personalized
rankings on per-user channels.  Client sessions connect, pick their
channels, and from then on receive every update without polling — the same
interaction model as the demo's APE-backed web front end (including
"(mobile) smartphone users receiving continuous updates").
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.engine import EnBlogue
from repro.core.personalization import UserProfile
from repro.core.types import Ranking
from repro.portal.push import PushDispatcher
from repro.portal.sessions import ClientSession

#: Channel carrying the global (non-personalized) ranking.
GLOBAL_CHANNEL = "emergent-topics"


def user_channel(user_id: str) -> str:
    """Channel name carrying one user's personalized ranking."""
    return f"emergent-topics/{user_id}"


class Portal:
    """Front-end façade: sessions, subscriptions and pushed rankings."""

    def __init__(self, engine: EnBlogue, dispatcher: Optional[PushDispatcher] = None):
        self.engine = engine
        self.dispatcher = dispatcher or PushDispatcher()
        self._sessions: Dict[str, ClientSession] = {}
        self.engine.add_ranking_listener(self._on_ranking)

    # -- sessions ---------------------------------------------------------------

    def connect(self, session_id: str, user_id: Optional[str] = None) -> ClientSession:
        """Open a client session and subscribe it to the relevant channels.

        Anonymous sessions receive the global ranking; sessions opened for a
        registered user additionally receive that user's personalized
        channel.
        """
        if session_id in self._sessions:
            raise ValueError(f"session {session_id!r} already connected")
        session = ClientSession(session_id)
        self._sessions[session_id] = session
        self.dispatcher.subscribe(GLOBAL_CHANNEL, session_id, session.deliver)
        if user_id is not None:
            self.dispatcher.subscribe(user_channel(user_id), session_id, session.deliver)
        return session

    def disconnect(self, session_id: str) -> None:
        session = self._sessions.pop(session_id, None)
        if session is None:
            return
        session.disconnect()
        for channel_name in self.dispatcher.channels():
            self.dispatcher.unsubscribe(channel_name, session_id)

    def sessions(self) -> List[str]:
        return sorted(self._sessions)

    def session(self, session_id: str) -> ClientSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise KeyError(f"no session {session_id!r}") from None

    # -- users -----------------------------------------------------------------------

    def register_user(self, profile: UserProfile) -> UserProfile:
        """Register a personalization profile with the engine."""
        return self.engine.register_user(profile)

    # -- push -----------------------------------------------------------------------------

    def _on_ranking(self, ranking: Ranking) -> None:
        """Engine callback: push the new ranking to every channel."""
        self.dispatcher.publish(GLOBAL_CHANNEL, ranking, timestamp=ranking.timestamp)
        for user_id in self.engine.personalization.users():
            personalized = self.engine.personalization.personalize(ranking, user_id)
            self.dispatcher.publish(
                user_channel(user_id), personalized, timestamp=ranking.timestamp
            )

    # -- convenience -----------------------------------------------------------------------

    def current_view(self, session_id: str) -> Optional[Ranking]:
        """What the given session currently displays (its latest ranking)."""
        payload = self.session(session_id).latest_payload()
        return payload if isinstance(payload, Ranking) else None

    def status(self) -> Dict[str, object]:
        """Operational counters for examples and monitoring."""
        return {
            "sessions": len(self._sessions),
            "channels": len(self.dispatcher.channels()),
            "messages_published": self.dispatcher.messages_published,
            "deliveries": self.dispatcher.deliveries,
            "documents_processed": self.engine.documents_processed,
            "rankings_produced": len(self.engine.ranking_history()),
        }
