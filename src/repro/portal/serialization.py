"""JSON serialization of rankings for the web front end.

The back-end "sends topic rankings to an installation of APE which
dispatches the messages to the registered clients" — over the wire those
messages are JSON.  This module converts rankings and topics to and from
plain JSON-compatible dictionaries so the portal (or any external consumer)
can ship them across process boundaries, and so sessions can be replayed
from stored messages.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.core.types import EmergentTopic, Ranking, TagPair


def topic_to_dict(topic: EmergentTopic) -> Dict[str, Any]:
    """JSON-compatible representation of one emergent topic."""
    return {
        "tags": list(topic.pair.as_tuple()),
        "score": topic.score,
        "correlation": topic.correlation,
        "predicted_correlation": topic.predicted_correlation,
        "prediction_error": topic.prediction_error,
        "seed_tag": topic.seed_tag,
        "timestamp": topic.timestamp,
    }


def topic_from_dict(payload: Dict[str, Any]) -> EmergentTopic:
    """Inverse of :func:`topic_to_dict`."""
    tags = payload.get("tags")
    if not isinstance(tags, (list, tuple)) or len(tags) != 2:
        raise ValueError("topic payload must carry exactly two tags")
    return EmergentTopic(
        pair=TagPair(str(tags[0]), str(tags[1])),
        score=float(payload["score"]),
        correlation=float(payload.get("correlation", 0.0)),
        predicted_correlation=float(payload.get("predicted_correlation", 0.0)),
        prediction_error=float(payload.get("prediction_error", 0.0)),
        seed_tag=payload.get("seed_tag"),
        timestamp=float(payload.get("timestamp", 0.0)),
    )


def ranking_to_dict(ranking: Ranking) -> Dict[str, Any]:
    """JSON-compatible representation of a whole ranking."""
    return {
        "timestamp": ranking.timestamp,
        "label": ranking.label,
        "topics": [topic_to_dict(topic) for topic in ranking],
    }


def ranking_from_dict(payload: Dict[str, Any]) -> Ranking:
    """Inverse of :func:`ranking_to_dict`."""
    topics = [topic_from_dict(entry) for entry in payload.get("topics", [])]
    return Ranking(
        timestamp=float(payload["timestamp"]),
        topics=topics,
        label=str(payload.get("label", "")),
    )


def ranking_to_json(ranking: Ranking, indent: int = None) -> str:
    """Serialise a ranking to a JSON string."""
    return json.dumps(ranking_to_dict(ranking), indent=indent, sort_keys=True)


def ranking_from_json(text: str) -> Ranking:
    """Parse a ranking from a JSON string."""
    return ranking_from_dict(json.loads(text))


def rankings_to_json(rankings: List[Ranking], indent: int = None) -> str:
    """Serialise a sequence of rankings (e.g. a whole replay) to JSON."""
    return json.dumps([ranking_to_dict(r) for r in rankings],
                      indent=indent, sort_keys=True)


def rankings_from_json(text: str) -> List[Ranking]:
    """Parse a sequence of rankings from JSON."""
    return [ranking_from_dict(entry) for entry in json.loads(text)]
