"""Experiment runner: replay a corpus through a detector and score it."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.types import Ranking
from repro.datasets.documents import Corpus
from repro.datasets.events import EventSchedule
from repro.evaluation.ground_truth import DetectionOutcome, GroundTruthMatcher


@dataclass
class DetectorRun:
    """Raw output of replaying one corpus through one detector."""

    name: str
    rankings: List[Ranking] = field(default_factory=list)
    documents: int = 0
    wall_seconds: float = 0.0

    @property
    def throughput(self) -> float:
        """Documents processed per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.documents / self.wall_seconds

    def final_ranking(self) -> Optional[Ranking]:
        return self.rankings[-1] if self.rankings else None


@dataclass
class ExperimentResult:
    """A detector run scored against the ground truth."""

    run: DetectorRun
    recall: float
    precision: float
    mean_latency: Optional[float]
    outcomes: List[DetectionOutcome] = field(default_factory=list)
    extras: Dict[str, Any] = field(default_factory=dict)

    def summary(self) -> Dict[str, Any]:
        return {
            "detector": self.run.name,
            "documents": self.run.documents,
            "rankings": len(self.run.rankings),
            "recall": round(self.recall, 3),
            "precision": round(self.precision, 3),
            "mean_latency": (
                round(self.mean_latency, 1) if self.mean_latency is not None else None
            ),
            "throughput_docs_per_s": round(self.run.throughput, 1),
            **self.extras,
        }


def run_detector(
    detector,
    corpus: Iterable,
    name: Optional[str] = None,
    finalize: bool = True,
    after_ranking: Optional[Callable[[Ranking], None]] = None,
) -> DetectorRun:
    """Replay ``corpus`` through ``detector`` and collect its rankings.

    ``detector`` must expose ``process(document)`` returning an optional
    ranking (EnBlogue and both baselines do).  With ``finalize`` the
    detector's ``evaluate_now`` (when present) is called once after the
    replay so events near the end of the corpus still get a final ranking.

    ``after_ranking`` is called with each ranking the *stream itself*
    produced, after the producing ``process`` call has fully returned — at
    that point the detector is between documents and its state is
    checkpoint-consistent, which is what the CLI's ``--checkpoint-every``
    relies on.  The forced ``finalize`` ranking is excluded: it is not a
    stream boundary, so a checkpoint taken there would not resume
    identically.
    """
    run_name = name or type(detector).__name__
    rankings: List[Ranking] = []
    documents = 0
    started = time.perf_counter()
    for document in corpus:
        ranking = detector.process(document)
        documents += 1
        if ranking is not None:
            rankings.append(ranking)
            if after_ranking is not None:
                after_ranking(ranking)
    if finalize and hasattr(detector, "evaluate_now") and documents > 0:
        rankings.append(detector.evaluate_now())
    elapsed = time.perf_counter() - started
    return DetectorRun(
        name=run_name, rankings=rankings, documents=documents, wall_seconds=elapsed
    )


def score_run(
    run: DetectorRun,
    schedule: EventSchedule,
    k: int = 10,
    detection_window: Optional[float] = None,
    extras: Optional[Dict[str, Any]] = None,
) -> ExperimentResult:
    """Score a detector run against the injected events."""
    matcher = GroundTruthMatcher(schedule, k=k, detection_window=detection_window)
    return ExperimentResult(
        run=run,
        recall=matcher.recall(run.rankings),
        precision=matcher.precision(run.rankings),
        mean_latency=matcher.mean_latency(run.rankings),
        outcomes=matcher.outcomes(run.rankings),
        extras=dict(extras or {}),
    )


def run_experiment(
    detector,
    corpus: Corpus,
    schedule: EventSchedule,
    name: Optional[str] = None,
    k: int = 10,
    detection_window: Optional[float] = None,
    extras: Optional[Dict[str, Any]] = None,
    after_ranking: Optional[Callable[[Ranking], None]] = None,
) -> ExperimentResult:
    """Replay and score in one call."""
    run = run_detector(detector, corpus, name=name, after_ranking=after_ranking)
    return score_run(
        run, schedule, k=k, detection_window=detection_window, extras=extras
    )
