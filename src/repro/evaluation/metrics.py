"""Ranking and detection metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.types import Ranking, TagPair


def _as_pair_set(pairs: Iterable) -> Set[TagPair]:
    result: Set[TagPair] = set()
    for pair in pairs:
        if isinstance(pair, TagPair):
            result.add(pair)
        else:
            result.add(TagPair(pair[0], pair[1]))
    return result


def precision_at_k(ranking: Ranking, relevant: Iterable, k: int) -> float:
    """Fraction of the top-k ranked pairs that are relevant."""
    if k <= 0:
        return 0.0
    relevant_set = _as_pair_set(relevant)
    top = ranking.top(k)
    if not top:
        return 0.0
    hits = sum(1 for topic in top if topic.pair in relevant_set)
    return hits / len(top)


def recall_at_k(ranking: Ranking, relevant: Iterable, k: int) -> float:
    """Fraction of the relevant pairs that appear in the top-k."""
    relevant_set = _as_pair_set(relevant)
    if not relevant_set:
        return 1.0
    if k <= 0:
        return 0.0
    top_pairs = {topic.pair for topic in ranking.top(k)}
    hits = len(relevant_set & top_pairs)
    return hits / len(relevant_set)


def reciprocal_rank(ranking: Ranking, relevant: Iterable) -> float:
    """1 / (1 + rank) of the best-ranked relevant pair, 0.0 if none appears."""
    relevant_set = _as_pair_set(relevant)
    for index, topic in enumerate(ranking):
        if topic.pair in relevant_set:
            return 1.0 / (index + 1)
    return 0.0


def average_precision(ranking: Ranking, relevant: Iterable,
                      k: Optional[int] = None) -> float:
    """Average precision of a ranking against a set of relevant pairs.

    Precision is evaluated at every rank where a relevant pair appears
    (within the optional cut-off ``k``) and averaged over the number of
    relevant pairs, the standard AP formulation.
    """
    relevant_set = _as_pair_set(relevant)
    if not relevant_set:
        return 1.0
    considered = ranking.top(k) if k is not None else list(ranking)
    hits = 0
    precision_sum = 0.0
    for index, topic in enumerate(considered):
        if topic.pair in relevant_set:
            hits += 1
            precision_sum += hits / (index + 1)
    return precision_sum / len(relevant_set)


def ndcg_at_k(ranking: Ranking, relevance: Dict, k: int) -> float:
    """Normalised discounted cumulative gain at ``k``.

    ``relevance`` maps pairs (``TagPair`` or 2-tuples) to non-negative
    graded relevance values; pairs absent from the mapping have relevance 0.
    """
    import math

    if k <= 0:
        return 0.0
    graded = {}
    for pair, value in relevance.items():
        key = pair if isinstance(pair, TagPair) else TagPair(pair[0], pair[1])
        if value < 0:
            raise ValueError("relevance grades must be non-negative")
        graded[key] = float(value)
    gains = [graded.get(topic.pair, 0.0) for topic in ranking.top(k)]
    dcg = sum(gain / math.log2(position + 2) for position, gain in enumerate(gains))
    ideal = sorted(graded.values(), reverse=True)[:k]
    idcg = sum(gain / math.log2(position + 2) for position, gain in enumerate(ideal))
    if idcg == 0.0:
        return 1.0 if dcg == 0.0 else 0.0
    return dcg / idcg


def kendall_tau(first: Sequence, second: Sequence) -> float:
    """Kendall rank correlation between two rankings of (possibly) different items.

    The inputs are sequences of items (e.g. :class:`TagPair`); only items
    appearing in *both* sequences are compared.  Returns a value in [-1, 1];
    1.0 for identical orderings, -1.0 for reversed ones.  With fewer than two
    common items the orderings are trivially consistent and 1.0 is returned.
    """
    positions_first = {item: index for index, item in enumerate(first)}
    positions_second = {item: index for index, item in enumerate(second)}
    common = [item for item in first if item in positions_second]
    if len(common) < 2:
        return 1.0
    concordant = 0
    discordant = 0
    for i in range(len(common)):
        for j in range(i + 1, len(common)):
            a, b = common[i], common[j]
            first_order = positions_first[a] - positions_first[b]
            second_order = positions_second[a] - positions_second[b]
            product = first_order * second_order
            if product > 0:
                concordant += 1
            elif product < 0:
                discordant += 1
    total = concordant + discordant
    if total == 0:
        return 1.0
    return (concordant - discordant) / total


def detection_latency(
    rankings: Sequence[Ranking],
    pair,
    onset: float,
    k: Optional[int] = None,
) -> Optional[float]:
    """Stream-time delay until ``pair`` first enters the (top-k of the) ranking.

    Returns ``None`` when the pair never appears at or after ``onset``.
    Negative latencies are clamped to zero: appearing "before" the onset
    (because the injection ramps up inside the onset step) counts as
    immediate detection.
    """
    target = pair if isinstance(pair, TagPair) else TagPair(pair[0], pair[1])
    for ranking in rankings:
        if ranking.timestamp < onset:
            continue
        considered = ranking.top(k) if k is not None else list(ranking)
        if any(topic.pair == target for topic in considered):
            return max(0.0, ranking.timestamp - onset)
    return None


@dataclass(frozen=True)
class RankingComparison:
    """Summary of how two rankings relate (used by show case 3)."""

    overlap: float
    tau: float
    only_in_first: Tuple[TagPair, ...]
    only_in_second: Tuple[TagPair, ...]

    @classmethod
    def compare(cls, first: Ranking, second: Ranking, k: int = 10) -> "RankingComparison":
        top_first = [topic.pair for topic in first.top(k)]
        top_second = [topic.pair for topic in second.top(k)]
        set_first, set_second = set(top_first), set(top_second)
        union = set_first | set_second
        overlap = len(set_first & set_second) / len(union) if union else 1.0
        return cls(
            overlap=overlap,
            tau=kendall_tau(top_first, top_second),
            only_in_first=tuple(p for p in top_first if p not in set_second),
            only_in_second=tuple(p for p in top_second if p not in set_first),
        )
