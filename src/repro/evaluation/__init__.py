"""Evaluation harness: metrics, ground truth matching and reporting.

The demo's show cases were judged qualitatively ("each user, according to
his knowledge, experience, and interests, can judge whether the rankings
would be satisfactory or not").  Because our datasets inject events with
known tag pairs and onset times, the harness can score detectors
quantitatively: precision/recall of detected pairs against the ground
truth, detection latency relative to event onset, and rank-correlation
measures for comparing rankings across configurations or users.
"""

from repro.evaluation.metrics import (
    RankingComparison,
    average_precision,
    detection_latency,
    kendall_tau,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)
from repro.evaluation.ground_truth import DetectionOutcome, GroundTruthMatcher
from repro.evaluation.harness import DetectorRun, ExperimentResult, run_detector
from repro.evaluation.reporting import format_series, format_table

__all__ = [
    "precision_at_k",
    "recall_at_k",
    "reciprocal_rank",
    "average_precision",
    "ndcg_at_k",
    "kendall_tau",
    "detection_latency",
    "RankingComparison",
    "GroundTruthMatcher",
    "DetectionOutcome",
    "run_detector",
    "DetectorRun",
    "ExperimentResult",
    "format_table",
    "format_series",
]
