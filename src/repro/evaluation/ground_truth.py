"""Matching detector output against the injected ground-truth events."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.types import Ranking, TagPair
from repro.datasets.events import EmergentEvent, EventSchedule
from repro.evaluation.metrics import detection_latency


@dataclass(frozen=True)
class DetectionOutcome:
    """Whether and when one ground-truth event was detected."""

    event: EmergentEvent
    detected: bool
    latency: Optional[float]
    best_rank: Optional[int]

    @property
    def pair(self) -> TagPair:
        return TagPair.from_tuple(self.event.pair)


class GroundTruthMatcher:
    """Score a sequence of rankings against an event schedule."""

    def __init__(self, schedule: EventSchedule, k: int = 10,
                 detection_window: Optional[float] = None):
        """``detection_window`` limits how long after onset a detection still
        counts (None: any time during the replay counts)."""
        if k <= 0:
            raise ValueError("k must be positive")
        self.schedule = schedule
        self.k = int(k)
        self.detection_window = detection_window

    def outcomes(self, rankings: Sequence[Ranking]) -> List[DetectionOutcome]:
        """One outcome per ground-truth event."""
        results: List[DetectionOutcome] = []
        for event in self.schedule:
            pair = TagPair.from_tuple(event.pair)
            latency = detection_latency(rankings, pair, event.start, k=self.k)
            detected = latency is not None
            if detected and self.detection_window is not None:
                detected = latency <= self.detection_window
            best_rank = self._best_rank(rankings, pair, event)
            results.append(DetectionOutcome(
                event=event,
                detected=detected,
                latency=latency if detected else None,
                best_rank=best_rank,
            ))
        return results

    def recall(self, rankings: Sequence[Ranking]) -> float:
        """Fraction of ground-truth events detected in the top-k."""
        outcomes = self.outcomes(rankings)
        if not outcomes:
            return 1.0
        return sum(1 for outcome in outcomes if outcome.detected) / len(outcomes)

    def mean_latency(self, rankings: Sequence[Ranking]) -> Optional[float]:
        """Mean detection latency over the detected events (None if none)."""
        latencies = [
            outcome.latency for outcome in self.outcomes(rankings)
            if outcome.detected and outcome.latency is not None
        ]
        if not latencies:
            return None
        return sum(latencies) / len(latencies)

    def precision(self, rankings: Sequence[Ranking]) -> float:
        """Fraction of reported top-k pairs (while events are active) that
        correspond to some active or recent ground-truth event."""
        truth_pairs = {TagPair.from_tuple(event.pair) for event in self.schedule}
        reported = 0
        correct = 0
        for ranking in rankings:
            active = self.schedule.active_at(ranking.timestamp)
            if not active:
                continue
            for topic in ranking.top(self.k):
                reported += 1
                if topic.pair in truth_pairs:
                    correct += 1
        if reported == 0:
            return 0.0
        return correct / reported

    def _best_rank(self, rankings: Sequence[Ranking], pair: TagPair,
                   event: EmergentEvent) -> Optional[int]:
        best: Optional[int] = None
        for ranking in rankings:
            if ranking.timestamp < event.start:
                continue
            position = ranking.position_of(pair)
            if position is None:
                continue
            if best is None or position < best:
                best = position
        return best
