"""Plain-text tables and series for benchmark output.

The benchmark harness prints, for every reproduced figure/show case, the
rows or series the paper reports (or, for the demo show cases, the ranking
the demo would display).  Keeping the formatting here means every bench
prints consistently and the tests can assert on structure rather than
string layout.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dictionaries as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [
        [_format_cell(row.get(column)) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(row[index]) for row in rendered_rows))
        for index, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    x_values: Optional[Sequence[float]] = None,
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render one or more named series side by side (one row per x value)."""
    names = list(series)
    if not names:
        return (title + "\n" if title else "") + "(no series)"
    length = max(len(values) for values in series.values())
    if x_values is None:
        x_values = list(range(length))
    rows: List[Dict[str, Any]] = []
    for index in range(length):
        row: Dict[str, Any] = {"x": x_values[index] if index < len(x_values) else index}
        for name in names:
            values = series[name]
            row[name] = round(values[index], precision) if index < len(values) else ""
        rows.append(row)
    return format_table(rows, columns=["x", *names], title=title)


def _format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
