"""Inverted index from tags to the documents carrying them.

Supports the "full exploration of social media given the detected tag set
as input, for instance, in the form of a traditional keyword query" that
the introduction promises: once enBlogue reports the pair (volcano, air
traffic), this index answers which documents discuss both.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.streams.item import StreamItem


class InvertedTagIndex:
    """Tag -> set of document ids, with conjunctive queries."""

    def __init__(self, use_entities: bool = True):
        self.use_entities = bool(use_entities)
        self._postings: Dict[str, Set[str]] = {}
        self._documents: Dict[str, StreamItem] = {}

    def __len__(self) -> int:
        """Number of indexed documents."""
        return len(self._documents)

    def index(self, item: StreamItem) -> None:
        """Add a document to the index (re-indexing replaces the old entry)."""
        if item.doc_id in self._documents:
            self.remove(item.doc_id)
        self._documents[item.doc_id] = item
        for tag in self._tags_of(item):
            self._postings.setdefault(tag, set()).add(item.doc_id)

    def remove(self, doc_id: str) -> None:
        """Drop a document from the index (no-op when absent)."""
        item = self._documents.pop(doc_id, None)
        if item is None:
            return
        for tag in self._tags_of(item):
            postings = self._postings.get(tag)
            if postings is None:
                continue
            postings.discard(doc_id)
            if not postings:
                del self._postings[tag]

    def postings(self, tag: str) -> Set[str]:
        """Document ids carrying ``tag`` (a copy)."""
        return set(self._postings.get(tag, set()))

    def document_frequency(self, tag: str) -> int:
        return len(self._postings.get(tag, ()))

    def query(self, tags: Iterable[str]) -> List[StreamItem]:
        """Documents carrying *all* of ``tags``, newest first."""
        tag_list = [tag for tag in tags]
        if not tag_list:
            return []
        # Intersect the smallest posting lists first.
        tag_list.sort(key=self.document_frequency)
        result: Optional[Set[str]] = None
        for tag in tag_list:
            postings = self._postings.get(tag)
            if not postings:
                return []
            result = set(postings) if result is None else result & postings
            if not result:
                return []
        documents = [self._documents[doc_id] for doc_id in result or ()]
        documents.sort(key=lambda item: item.timestamp, reverse=True)
        return documents

    def cooccurrence_count(self, tag_a: str, tag_b: str) -> int:
        """Number of documents carrying both tags."""
        postings_a = self._postings.get(tag_a, set())
        postings_b = self._postings.get(tag_b, set())
        if len(postings_a) > len(postings_b):
            postings_a, postings_b = postings_b, postings_a
        return sum(1 for doc_id in postings_a if doc_id in postings_b)

    def tags(self) -> List[str]:
        return sorted(self._postings)

    def _tags_of(self, item: StreamItem) -> Set[str]:
        tags = set(item.tags)
        if self.use_entities:
            tags |= set(item.entities)
        return tags
