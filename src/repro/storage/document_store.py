"""A bounded in-memory document store keyed by document id."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional

from repro.streams.item import StreamItem


class DocumentStore:
    """Keep the most recent documents retrievable by id.

    The store is bounded (``capacity``) and evicts the oldest insertions
    first, matching what a streaming system can afford to keep around for
    drill-down queries from the front end.
    """

    def __init__(self, capacity: int = 100_000):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._items: "OrderedDict[str, StreamItem]" = OrderedDict()
        self._evicted = 0

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._items

    def __iter__(self) -> Iterator[StreamItem]:
        return iter(self._items.values())

    @property
    def evicted(self) -> int:
        """Number of documents dropped due to the capacity bound."""
        return self._evicted

    def put(self, item: StreamItem) -> None:
        """Insert or refresh a document, evicting the oldest if necessary."""
        if item.doc_id in self._items:
            # Refresh: move to the newest position with the updated item.
            del self._items[item.doc_id]
        self._items[item.doc_id] = item
        while len(self._items) > self.capacity:
            self._items.popitem(last=False)
            self._evicted += 1

    def get(self, doc_id: str) -> Optional[StreamItem]:
        return self._items.get(doc_id)

    def recent(self, count: int) -> List[StreamItem]:
        """The ``count`` most recently inserted documents, newest first."""
        if count <= 0:
            return []
        items = list(self._items.values())
        return list(reversed(items[-count:]))

    def clear(self) -> None:
        self._items.clear()
