"""In-memory storage substrate: document store and tag indexes.

The engine itself is purely streaming, but the demo's front end needs to
answer follow-up queries ("show me the documents behind this emergent
topic", "re-rank this past time range") which require keeping recent
documents retrievable by id, by tag and by time.  This package provides the
stores those features need: a document store, an inverted tag index and a
time-partitioned index for range queries.
"""

from repro.storage.document_store import DocumentStore
from repro.storage.inverted_index import InvertedTagIndex
from repro.storage.time_index import TimePartitionedIndex

__all__ = [
    "DocumentStore",
    "InvertedTagIndex",
    "TimePartitionedIndex",
]
