"""Time-partitioned tag index for range queries over the recent past.

Show case 1 lets users "specify their own time ranges and see how the
ranking changes with different time periods"; re-evaluating a time range
needs per-partition tag and pair counts.  The index buckets documents into
fixed-length partitions (e.g. one per archive day) and answers count
queries over any span of partitions.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.streams.item import StreamItem


class TimePartitionedIndex:
    """Per-partition tag counts, pair counts and document counts."""

    def __init__(self, partition_length: float, use_entities: bool = True):
        if partition_length <= 0:
            raise ValueError("partition_length must be positive")
        self.partition_length = float(partition_length)
        self.use_entities = bool(use_entities)
        self._tag_counts: Dict[int, Counter] = {}
        self._pair_counts: Dict[int, Counter] = {}
        self._doc_counts: Dict[int, int] = {}

    # -- ingestion ----------------------------------------------------------

    def index(self, item: StreamItem) -> None:
        partition = self.partition_of(item.timestamp)
        tags = sorted(set(item.tags) | (set(item.entities) if self.use_entities else set()))
        tag_counter = self._tag_counts.setdefault(partition, Counter())
        pair_counter = self._pair_counts.setdefault(partition, Counter())
        for tag in tags:
            tag_counter[tag] += 1
        for i in range(len(tags)):
            for j in range(i + 1, len(tags)):
                pair_counter[(tags[i], tags[j])] += 1
        self._doc_counts[partition] = self._doc_counts.get(partition, 0) + 1

    def partition_of(self, timestamp: float) -> int:
        if timestamp < 0:
            raise ValueError("timestamp must be non-negative")
        return int(math.floor(timestamp / self.partition_length))

    # -- queries --------------------------------------------------------------

    def partitions(self) -> List[int]:
        return sorted(self._doc_counts)

    def document_count(self, start: float, end: float) -> int:
        return sum(
            self._doc_counts.get(partition, 0)
            for partition in self._partitions_in(start, end)
        )

    def tag_count(self, tag: str, start: float, end: float) -> int:
        return sum(
            self._tag_counts.get(partition, Counter()).get(tag, 0)
            for partition in self._partitions_in(start, end)
        )

    def pair_count(self, tag_a: str, tag_b: str, start: float, end: float) -> int:
        key = (tag_a, tag_b) if tag_a <= tag_b else (tag_b, tag_a)
        return sum(
            self._pair_counts.get(partition, Counter()).get(key, 0)
            for partition in self._partitions_in(start, end)
        )

    def top_tags(self, start: float, end: float, k: int) -> List[Tuple[str, int]]:
        if k <= 0:
            return []
        totals: Counter = Counter()
        for partition in self._partitions_in(start, end):
            totals.update(self._tag_counts.get(partition, Counter()))
        ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]

    def top_pairs(self, start: float, end: float, k: int) -> List[Tuple[Tuple[str, str], int]]:
        if k <= 0:
            return []
        totals: Counter = Counter()
        for partition in self._partitions_in(start, end):
            totals.update(self._pair_counts.get(partition, Counter()))
        ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]

    def prune_before(self, timestamp: float) -> int:
        """Drop partitions that end before ``timestamp``; returns how many."""
        cutoff = self.partition_of(timestamp)
        stale = [p for p in self._doc_counts if p < cutoff]
        for partition in stale:
            self._doc_counts.pop(partition, None)
            self._tag_counts.pop(partition, None)
            self._pair_counts.pop(partition, None)
        return len(stale)

    def _partitions_in(self, start: float, end: float) -> List[int]:
        if end < start:
            raise ValueError("end must not precede start")
        first = self.partition_of(start)
        last = self.partition_of(end)
        return [p for p in self._doc_counts if first <= p <= last]
