"""FIG-1: regenerate Figure 1 — the correlation-shift illustration.

The paper's Figure 1 plots, over time, the document counts of a popular tag
t1 and a rare tag t2 together with the size of their intersection: the
popular tag peaks without moving the intersection, and later the
intersection grows dramatically although the individual frequencies do not
explain it.  This benchmark replays the synthetic two-tag scenario through
the enBlogue engine and prints the three series (plus the engine's
correlation and shift score), asserting the qualitative shape.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import HOUR, live_config
from repro.core.engine import EnBlogue
from repro.core.types import TagPair
from repro.datasets.synthetic import figure1_stream
from repro.evaluation.reporting import format_series

POPULAR = "politics"
RARE = "volcano"
NUM_STEPS = 60
SHIFT_START = 30
PEAKS = (15, 40)


def replay_figure1():
    corpus, schedule = figure1_stream(
        popular_tag=POPULAR, rare_tag=RARE, num_steps=NUM_STEPS,
        shift_start=SHIFT_START, shift_length=12, popularity_peaks=PEAKS,
    )
    engine = EnBlogue(live_config(
        window_horizon=6 * HOUR, min_pair_support=1, min_history=2,
        predictor="moving_average", predictor_window=3, name="figure1",
    ))
    engine.process_many(corpus)
    engine.evaluate_now()
    return corpus, schedule, engine


def per_step_counts(corpus, tag_filter):
    counts = []
    for step in range(NUM_STEPS):
        window = corpus.between(step * HOUR, (step + 1) * HOUR - 1)
        counts.append(float(len(tag_filter(window))))
    return counts


def test_figure1_correlation_shift(benchmark):
    corpus, schedule, engine = benchmark.pedantic(
        replay_figure1, rounds=1, iterations=1)

    popular_series = per_step_counts(corpus, lambda c: c.with_tag(POPULAR))
    rare_series = per_step_counts(corpus, lambda c: c.with_tag(RARE))
    intersection = per_step_counts(corpus, lambda c: c.with_tags(POPULAR, RARE))
    correlation = engine.correlation_history(POPULAR, RARE)

    print()
    print(format_series(
        {
            f"t1={POPULAR}": popular_series,
            f"t2={RARE}": rare_series,
            "intersection": intersection,
        },
        x_values=list(range(NUM_STEPS)),
        title="Figure 1 — number of documents per time step",
        precision=0,
    ))
    print()
    print(format_series(
        {"correlation(t1,t2)": list(correlation.values)},
        x_values=[round(t / HOUR, 1) for t in correlation.timestamps],
        title="Correlation of (t1, t2) as tracked by enBlogue (x = hours)",
    ))
    score = engine.topic_score(POPULAR, RARE)
    print(f"\nfinal shift score of ({POPULAR}, {RARE}): {score:.4f}")

    # -- shape assertions ----------------------------------------------------
    # The popular tag peaks (at the scripted steps) without the intersection moving.
    for peak in PEAKS:
        assert popular_series[peak] > 1.5 * popular_series[peak - 5]
    # ...and at the first peak (before the shift) the intersection stays flat.
    assert intersection[PEAKS[0]] <= 2
    # The intersection grows dramatically after the shift.
    assert max(intersection[SHIFT_START:SHIFT_START + 12]) >= 6
    assert max(intersection[:SHIFT_START]) <= 2
    # The tracked correlation rises accordingly and the pair ends up ranked #1.
    before = [v for t, v in correlation if t < SHIFT_START * HOUR]
    after = [v for t, v in correlation if t >= (SHIFT_START + 3) * HOUR]
    assert max(after) > 3 * max(before)
    pair = TagPair(POPULAR, RARE)
    best_position = min(
        (r.position_of(pair) for r in engine.ranking_history()
         if r.position_of(pair) is not None),
        default=None,
    )
    assert best_position == 0
