"""PERF-1: engine throughput, operator sharing and sketch-based counting.

Section 4.1 claims a push-based architecture where "overlapping parts, like
data sources, sketching operators, entity tagging, and statistics operators
are shared for efficiency" across parallel query plans.  The benchmark
measures

* raw detection throughput (documents/second through the full pipeline),
* the batched, index-backed ingestion path against a faithful replica of
  the seed revision's document-at-a-time path (``seed_path.py``), asserting
  first that both produce identical rankings,
* incremental seed-postings candidate generation against the seed
  revision's full scan over every windowed pair,
* the sharded scatter-gather engine (serial and process backends, shard
  counts 1/2/4) against the single engine — rankings asserted
  bit-identical first, then ingest+evaluation documents/second,
* the cost of durability: the batch replay with ``save_checkpoint`` on a
  fixed cadence versus without (the CLI's ``--checkpoint-every``),
* the cost of running N parallel query plans with and without sharing the
  expensive upstream operators (entity tagging + statistics), and
* exact windowed counting versus the Count-Min sketch synopsis.

Absolute numbers are not comparable to the paper's Java system; the claims
being reproduced are the *relative* benefits of sharing, batching and
postings-based pruning.  Run ``PYTHONPATH=src python -m
benchmarks.bench_throughput`` from the repo root to re-record the machine
baseline in ``BENCH_throughput.json``; ``--section sharding`` (or
``checkpointing``) re-records just that section — CI uses the former to
refresh the sharded scaling rows on a multi-core runner.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import statistics
import tempfile
import time
from pathlib import Path

import pytest

from benchmarks.conftest import HOUR, live_config
from benchmarks.seed_path import SeedPathEngine
from repro.core.engine import EnBlogue
from repro.core.tracker import CorrelationTracker
from repro.observability import (
    Observability,
    parse_prometheus_families,
    render_prometheus,
)
from repro.faults import FaultPlan
from repro.persistence.resume import load_engine
from repro.sharding import (
    ProcessBackend,
    RetryPolicy,
    ShardedEnBlogue,
    SupervisedBackend,
)
from repro.sharding.backends import ThreadBackend
from repro.datasets.synthetic import SyntheticStreamGenerator
from repro.datasets.twitter import TweetStreamGenerator
from repro.datasets.vocabulary import TagVocabulary
from repro.entity.tagger import EntityTaggingOperator
from repro.evaluation.reporting import format_table
from repro.sketches.countmin import WindowedCountMinSketch
from repro.streams.operators import StatisticsOperator, TagNormalizerOperator
from repro.streams.plan import PlanExecutor, QueryPlan
from repro.streams.sources import DocumentStreamSource
from repro.windows.aggregates import TagFrequencyWindow

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"


@pytest.fixture(scope="module")
def small_tweets():
    corpus, _ = TweetStreamGenerator(hours=24, tweets_per_hour=50, seed=43).generate()
    return corpus


@pytest.fixture(scope="module")
def heavy_tweets():
    """The 24h twitter stream at heavy-traffic rate for the batching claims."""
    corpus, _ = TweetStreamGenerator(hours=24, tweets_per_hour=400, seed=43).generate()
    return list(corpus)


def throughput_config(name: str):
    """Configuration of the batch-vs-seed comparison.

    High-rate streams make a support threshold meaningful: pairs that
    co-occur fewer than five times in a 24h window are noise, and sampling
    them would dominate the evaluation regardless of ingestion speed.
    """
    return live_config(name=name, min_pair_support=5, num_seeds=15)


def ranking_signature(engine):
    return [
        (ranking.timestamp, [(topic.pair, topic.score) for topic in ranking])
        for ranking in engine.ranking_history()
    ]


def replay_seed_path(docs):
    engine = SeedPathEngine(throughput_config("seed-path"))
    for document in docs:
        engine.process(document)
    return engine


def replay_single(docs):
    engine = EnBlogue(throughput_config("single"))
    engine.process_many(docs)
    return engine


def replay_batch(docs):
    engine = EnBlogue(throughput_config("batch"))
    engine.process_batch(docs)
    return engine


def replay_batch_observed(docs):
    """The batch replay with the full observability layer enabled."""
    engine = EnBlogue(throughput_config("batch"),
                      observability=Observability())
    engine.process_batch(docs)
    return engine


def replay_batch_disabled(docs):
    """The batch replay through an explicitly disabled bundle.

    Every instrumentation call site still executes — counters, spans,
    log emits, SLO ticks — but against the shared no-op singletons.
    This is the path a deployment that opts out of observability pays.
    """
    engine = EnBlogue(throughput_config("batch"),
                      observability=Observability(enabled=False))
    engine.process_batch(docs)
    return engine


def replay_batch_profiled(docs):
    """The observed replay with the sampling profiler running at 100Hz.

    The heaviest configuration the serving stack supports: metrics,
    tracing, structured logging and SLO accounting live, plus a
    background thread walking every stack ten times per replay.
    """
    observability = Observability()
    observability.profiler.start(interval=0.01)
    try:
        engine = EnBlogue(throughput_config("batch"),
                          observability=observability)
        engine.process_batch(docs)
    finally:
        observability.close()
    return engine


def replay_sharded(docs, num_shards, backend):
    """Replay through the scatter-gather engine (batch path, like ``batch``).

    The process backend runs under the "fork" start method here: the
    benchmark measures steady-state ingest+evaluation scaling, and the
    pinned "spawn" default would spend ~0.5s per worker booting a fresh
    interpreter — longer than the whole replay, drowning the signal.  A
    long-running deployment amortizes that boot cost to nothing.
    """
    if backend == "process":
        backend = ProcessBackend(start_method="fork")
    engine = ShardedEnBlogue(
        throughput_config("batch"), num_shards=num_shards, backend=backend,
    )
    try:
        engine.process_batch(docs)
    finally:
        engine.close()
    return engine


#: Checkpoint cadence of the durability scenario: one ``save_checkpoint``
#: per CHECKPOINT_EVERY chunks of CHUNK_DOCS documents.
CHUNK_DOCS = 256
CHECKPOINT_EVERY = 4

#: Re-base cadence of the delta-mode contestant (the CLI's --full-every):
#: every K-th cadence tick writes a full base, the others append journal
#: segments.  Larger than the ~9 ticks of one replay, so the measured
#: steady state is one base plus deltas — the shape a deployment pays.
FULL_EVERY = 16


def replay_batch_checkpointed(docs, checkpoint_dir=None, mode="full",
                              full_every=FULL_EVERY):
    """The batch replay in CHUNK_DOCS chunks, checkpointing on a cadence.

    With ``checkpoint_dir`` unset this is the plain chunked batch path —
    the "off" contestant, paying the same chunking as the "on" one so the
    measured delta is purely the durability cost.  ``mode`` mirrors the
    CLI's ``--checkpoint-mode``: ``"full"`` re-serializes the window every
    tick, ``"delta"`` writes a base on the first (and every
    ``full_every``-th) tick and appends journal segments otherwise.
    """
    engine = EnBlogue(throughput_config("batch"))
    chunks = 0
    written = 0
    if checkpoint_dir is not None and mode == "delta":
        # The chain's base is the (near-empty) stream-start state — the
        # CLI does the same — so every cadence tick below appends a
        # journal segment and the full-window serialization is paid only
        # at the re-base cadence, not inside the steady state.
        engine.save_checkpoint(checkpoint_dir, track_deltas=True)
        written = 1
    for start in range(0, len(docs), CHUNK_DOCS):
        engine.process_batch(docs[start:start + CHUNK_DOCS])
        chunks += 1
        if checkpoint_dir is not None and chunks % CHECKPOINT_EVERY == 0:
            if mode == "full":
                engine.save_checkpoint(checkpoint_dir)
            elif written % full_every == 0:
                engine.save_checkpoint(checkpoint_dir, track_deltas=True)
            else:
                engine.save_delta_checkpoint(checkpoint_dir)
            written += 1
    return engine


def interleaved_medians(runners, rounds):
    """Median seconds per runner, measured in interleaved rounds.

    Interleaving spreads machine noise (frequency scaling, background load)
    evenly over the contestants instead of penalising whoever runs last.
    """
    samples = {name: [] for name, _ in runners}
    for _ in range(rounds):
        for name, fn in runners:
            start = time.perf_counter()
            fn()
            samples[name].append(time.perf_counter() - start)
    return {name: statistics.median(times) for name, times in samples.items()}


def interleaved_minima(runners, rounds):
    """Best seconds per runner over interleaved rounds, after a warm-up.

    For sub-100ms contestants the median still carries frequency-scaling
    noise worth tens of percent — a contestant that sleeps (the sampling
    profiler between ticks) lets the core downclock and taxes whoever
    runs next.  Noise only ever *adds* time, so the per-contestant
    minimum is the robust estimator for the tight overhead gates; the
    discarded first round absorbs cold caches.
    """
    samples = {name: [] for name, _ in runners}
    for round_index in range(rounds + 1):
        for name, fn in runners:
            start = time.perf_counter()
            fn()
            if round_index > 0:
                samples[name].append(time.perf_counter() - start)
    return {name: min(times) for name, times in samples.items()}


# -- batched ingestion vs the seed path --------------------------------------


def test_batch_path_matches_seed_path_rankings(heavy_tweets):
    """The refactor is behaviour-preserving: all three paths agree exactly."""
    seed = ranking_signature(replay_seed_path(heavy_tweets))
    single = ranking_signature(replay_single(heavy_tweets))
    batch = ranking_signature(replay_batch(heavy_tweets))
    assert seed == single == batch
    assert len(seed) == 23


def test_batch_vs_seed_path_throughput(heavy_tweets):
    """Documents/second: batched+indexed pipeline vs the seed revision."""
    medians = interleaved_medians(
        [
            ("seed-path", lambda: replay_seed_path(heavy_tweets)),
            ("single", lambda: replay_single(heavy_tweets)),
            ("batch", lambda: replay_batch(heavy_tweets)),
        ],
        rounds=5,
    )
    rows = [
        {
            "path": name,
            "docs/s": round(len(heavy_tweets) / seconds),
            "ms/replay": round(seconds * 1000, 1),
            "speedup vs seed": round(medians["seed-path"] / seconds, 2),
        }
        for name, seconds in medians.items()
    ]
    print()
    print(format_table(rows, title="PERF-1 — 24h twitter stream, "
                                   "batched vs seed-revision ingestion"))
    # The recorded baseline (BENCH_throughput.json) shows >= 1.5x; under a
    # noisy CI runner we only insist the batch path actually wins.
    assert medians["batch"] < medians["seed-path"]


# -- sharded scatter-gather engine vs the single engine ----------------------


def test_sharded_rankings_bit_identical_to_single_engine(heavy_tweets):
    """Shard counts 1/2/4, serial and process backends: same rankings."""
    reference = ranking_signature(replay_batch(heavy_tweets))
    for num_shards in (1, 2, 4):
        sharded = replay_sharded(heavy_tweets, num_shards, "serial")
        assert ranking_signature(sharded) == reference
    process = replay_sharded(heavy_tweets, 4, "process")
    assert ranking_signature(process) == reference


def test_sharded_vs_single_throughput(heavy_tweets):
    """Ingest+evaluation documents/second across shard counts and backends."""
    medians = interleaved_medians(
        [
            ("single", lambda: replay_batch(heavy_tweets)),
            ("serial-4", lambda: replay_sharded(heavy_tweets, 4, "serial")),
            ("process-4", lambda: replay_sharded(heavy_tweets, 4, "process")),
        ],
        rounds=3,
    )
    rows = [
        {
            "engine": name,
            "docs/s": round(len(heavy_tweets) / seconds),
            "ms/replay": round(seconds * 1000, 1),
            "vs single": round(medians["single"] / seconds, 2),
        }
        for name, seconds in medians.items()
    ]
    print()
    print(format_table(rows, title="PERF-2 — 24h twitter stream, "
                                   "sharded scatter-gather vs single engine"))
    # No speedup assertion: on a small per-evaluation pair population the
    # scatter-gather overhead (routing + IPC) can dominate; the recorded
    # baseline captures where the crossover lies on this machine.
    assert all(seconds > 0 for seconds in medians.values())


# -- observability overhead ---------------------------------------------------


#: Absolute slack of the observability overhead gate, in seconds.  A 24h
#: replay finishes in ~100ms here, where a single scheduler hiccup is a
#: multi-percent swing; the relative bound carries the actual claim.
OBSERVABILITY_GATE_SLACK_S = 0.005


def observability_within_gate(on_seconds: float, off_seconds: float) -> bool:
    """The <=2% contract: enabled instrumentation stays within two percent
    of the uninstrumented replay (plus a fixed noise allowance)."""
    return on_seconds <= off_seconds * 1.02 + OBSERVABILITY_GATE_SLACK_S


#: Absolute slack of the profiling gates, in seconds.  The bench replay
#: finishes in under 100ms, so the 100Hz sampler lands fewer than ten
#: samples per run — one sample walking every stack is a multi-percent
#: swing at this scale.  The relative bounds carry the claim on the
#: runs that matter (a production replay is minutes, not milliseconds).
PROFILING_GATE_SLACK_S = 0.010


def profiling_disabled_within_gate(disabled_seconds: float,
                                   off_seconds: float) -> bool:
    """The disabled contract: a bundle built with ``enabled=False`` may
    cost at most half a percent over no bundle at all (plus the fixed
    noise allowance) — opting out must be effectively free."""
    return disabled_seconds <= off_seconds * 1.005 + PROFILING_GATE_SLACK_S


def profiling_enabled_within_gate(profiled_seconds: float,
                                  enabled_seconds: float) -> bool:
    """The profiled contract: the 100Hz sampler plus structured logging
    may cost at most five percent over plain enabled instrumentation
    (plus the fixed noise allowance)."""
    return profiled_seconds <= enabled_seconds * 1.05 \
        + PROFILING_GATE_SLACK_S


def test_profiling_and_logging_overhead_within_gate(heavy_tweets):
    """The PR-10 gates: disabled <=0.5% over bare, profiled <=5% over enabled.

    Results first — the profiled replay's rankings must equal the plain
    replay's exactly; a sampling profiler reads stacks, it must never
    perturb the math.  Then the two cost contracts, measured interleaved
    so machine noise spreads over all four contestants.
    """
    plain = replay_batch(heavy_tweets)
    profiled = replay_batch_profiled(heavy_tweets)
    assert ranking_signature(profiled) == ranking_signature(plain)

    medians = interleaved_minima(
        [
            ("off", lambda: replay_batch(heavy_tweets)),
            ("disabled", lambda: replay_batch_disabled(heavy_tweets)),
            ("enabled", lambda: replay_batch_observed(heavy_tweets)),
            ("profiled-100hz", lambda: replay_batch_profiled(heavy_tweets)),
        ],
        rounds=5,
    )
    print()
    print(format_table(
        [
            {"configuration": name,
             "docs/s": round(len(heavy_tweets) / seconds),
             "ms/replay": round(seconds * 1000, 1)}
            for name, seconds in medians.items()
        ],
        title="PERF-6 — profiling + logging overhead",
    ))
    assert profiling_disabled_within_gate(
        medians["disabled"], medians["off"]), (
        f"disabled bundle costs "
        f"{(medians['disabled'] / medians['off'] - 1.0):+.2%} "
        "over no bundle, breaking the <=0.5% gate"
    )
    assert profiling_enabled_within_gate(
        medians["profiled-100hz"], medians["enabled"]), (
        f"profiler+logging cost "
        f"{(medians['profiled-100hz'] / medians['enabled'] - 1.0):+.2%} "
        "over plain instrumentation, breaking the <=5% gate"
    )


def test_observability_overhead_within_two_percent(heavy_tweets):
    """Full instrumentation on vs off: bit-identical rankings, <=2% cost.

    Results first: the instrumented replay's rankings must equal the
    plain replay's exactly — observing the pipeline must not perturb it.
    Then the gate: counters, histograms and span tracing together may
    cost at most two percent of replay wall time (plus a fixed slack
    absorbing scheduler noise on sub-second replays).
    """
    plain = replay_batch(heavy_tweets)
    observed = replay_batch_observed(heavy_tweets)
    assert ranking_signature(observed) == ranking_signature(plain)
    # The scrape the instrumented replay leaves behind must be valid
    # exposition text covering the evaluation path it actually took.
    families = parse_prometheus_families(
        render_prometheus(observed.observability.registry))
    assert "repro_core_evaluation_seconds" in families

    medians = interleaved_medians(
        [
            ("off", lambda: replay_batch(heavy_tweets)),
            ("on", lambda: replay_batch_observed(heavy_tweets)),
        ],
        rounds=5,
    )
    overhead = medians["on"] / medians["off"] - 1.0
    print()
    print(format_table(
        [
            {"instrumentation": name,
             "docs/s": round(len(heavy_tweets) / seconds),
             "ms/replay": round(seconds * 1000, 1)}
            for name, seconds in medians.items()
        ],
        title=f"PERF-5 — observability overhead ({overhead:+.1%})",
    ))
    assert observability_within_gate(medians["on"], medians["off"]), (
        f"observability overhead {overhead:+.1%} breaks the <=2% gate "
        f"(on={medians['on'] * 1000:.1f}ms off={medians['off'] * 1000:.1f}ms)"
    )


# -- checkpoint overhead ------------------------------------------------------


def test_checkpoint_overhead(heavy_tweets, tmp_path):
    """Documents/second with --checkpoint-every on vs. off.

    Durability must not change results: the checkpointed replay's rankings
    are asserted identical first.  No hard overhead bound — the recorded
    baseline (``checkpointing`` section) tracks the cost in the
    trajectory; a noisy CI runner only has to finish both replays.
    """
    plain = replay_batch_checkpointed(heavy_tweets)
    checkpointed = replay_batch_checkpointed(heavy_tweets,
                                             checkpoint_dir=tmp_path)
    assert ranking_signature(plain) == ranking_signature(checkpointed)

    medians = interleaved_medians(
        [
            ("checkpoint-off",
             lambda: replay_batch_checkpointed(heavy_tweets)),
            ("checkpoint-on",
             lambda: replay_batch_checkpointed(heavy_tweets,
                                               checkpoint_dir=tmp_path)),
        ],
        rounds=3,
    )
    overhead = medians["checkpoint-on"] / medians["checkpoint-off"] - 1.0
    rows = [
        {
            "path": name,
            "docs/s": round(len(heavy_tweets) / seconds),
            "ms/replay": round(seconds * 1000, 1),
        }
        for name, seconds in medians.items()
    ]
    checkpoint_bytes = sum(
        path.stat().st_size for path in tmp_path.iterdir()
    )
    print()
    print(format_table(
        rows,
        title=f"PERF-3 — checkpoint every {CHECKPOINT_EVERY * CHUNK_DOCS} "
              f"docs ({checkpoint_bytes / 1024:.0f} KiB on disk, "
              f"overhead {overhead:+.1%})",
    ))
    assert all(seconds > 0 for seconds in medians.values())


def test_delta_checkpoint_overhead(heavy_tweets, tmp_path):
    """Delta-mode cadence vs full-mode vs off: journaling must be cheaper.

    Results first: the delta-checkpointed replay's rankings are asserted
    identical to the plain replay, and the final base+journal directory
    must restore into a state equal to the live engine's snapshot.  Then
    docs/s for off / full-mode / delta-mode, asserting only the ordering
    (delta cheaper than full) — the recorded ``checkpointing_delta``
    baseline section carries the measured percentages.
    """
    from repro.persistence import read_checkpoint

    plain = replay_batch_checkpointed(heavy_tweets)
    delta_dir = tmp_path / "delta"
    delta = replay_batch_checkpointed(heavy_tweets, checkpoint_dir=delta_dir,
                                      mode="delta")
    assert ranking_signature(plain) == ranking_signature(delta)
    # The cadence stopped before the trailing partial chunk; append one
    # more segment so the directory describes the live engine exactly.
    delta.save_delta_checkpoint(delta_dir)
    _, merged = read_checkpoint(delta_dir)
    assert merged == delta.snapshot()

    full_dir = tmp_path / "full"
    medians = interleaved_medians(
        [
            ("off", lambda: replay_batch_checkpointed(heavy_tweets)),
            ("full", lambda: replay_batch_checkpointed(
                heavy_tweets, checkpoint_dir=full_dir)),
            ("delta", lambda: replay_batch_checkpointed(
                heavy_tweets, checkpoint_dir=delta_dir, mode="delta")),
        ],
        rounds=3,
    )
    rows = [
        {
            "path": name,
            "docs/s": round(len(heavy_tweets) / seconds),
            "overhead": f"{medians[name] / medians['off'] - 1.0:+.1%}",
        }
        for name, seconds in medians.items()
    ]
    print()
    print(format_table(rows, title="PERF-3 — full vs delta checkpoint "
                                   f"cadence (every "
                                   f"{CHECKPOINT_EVERY * CHUNK_DOCS} docs)"))
    assert medians["delta"] < medians["full"]


# -- the async serving layer ---------------------------------------------------


def serve_replay(docs, checkpoint_dir=None, lockstep=False,
                 chunk=CHUNK_DOCS):
    """Replay ``docs`` through the asyncio serving layer.

    Free-running mode submits chunks as fast as the bounded queue accepts
    them — the serving docs/s figure.  ``lockstep`` instead drains the
    service after every submit and records, for each chunk that produced
    rankings, the seconds from ``submit`` to the frames being pushed to
    the subscriber — the ingest→ranking-push latency (with a checkpoint
    cadence this includes the journal segment written on the same tick,
    which is exactly what a served cadence tick costs).

    Returns ``(engine, frames, latencies, seconds)``.
    """
    from repro.persistence import CheckpointCadence
    from repro.serving import DetectionService

    async def scenario():
        engine = EnBlogue(throughput_config("batch"))
        cadence = None
        if checkpoint_dir is not None:
            cadence = CheckpointCadence(
                engine, directory=checkpoint_dir, every=CHECKPOINT_EVERY,
                mode="delta", full_every=FULL_EVERY,
            )
        service = DetectionService(engine, cadence=cadence)
        await service.start()
        subscription = service.subscribe(buffer_limit=1 << 16)
        latencies = []
        started = time.perf_counter()
        pushed = 0
        for start in range(0, len(docs), chunk):
            submit_at = time.perf_counter()
            await service.submit(docs[start:start + chunk])
            if lockstep:
                await service.drain()
                if service.stats.rankings_published > pushed:
                    latencies.append(time.perf_counter() - submit_at)
                    pushed = service.stats.rankings_published
        await service.stop()
        elapsed = time.perf_counter() - started
        frames = []
        while (message := await subscription.next_message()) is not None:
            frames.append(message.payload)
        return engine, frames, latencies, elapsed

    return asyncio.run(scenario())


def test_served_rankings_match_batch_replay(heavy_tweets):
    """The serving path is behaviour-preserving: pushed frames == replay."""
    reference = replay_batch(heavy_tweets)
    engine, frames, _, _ = serve_replay(heavy_tweets)
    assert engine.ranking_history() == reference.ranking_history()
    assert frames == reference.ranking_history()


def test_serving_push_latency_and_checkpoint_overhead(heavy_tweets, tmp_path):
    """Ingest→push latency with and without a concurrent delta cadence.

    Results first: the delta-checkpointed serve's frames equal the plain
    serve's.  No hard latency bound — the recorded ``serving`` baseline
    section carries the measured milliseconds; a noisy CI runner only has
    to produce positive latencies and a journal on disk.
    """
    _, plain_frames, plain_latencies, _ = serve_replay(
        heavy_tweets, lockstep=True)
    _, delta_frames, delta_latencies, _ = serve_replay(
        heavy_tweets, checkpoint_dir=tmp_path, lockstep=True)
    assert delta_frames == plain_frames
    assert plain_latencies and delta_latencies
    assert list(tmp_path.glob("*.delta")), \
        "the serve-time delta cadence wrote no journal segments"
    rows = [
        {"path": name,
         "p50 ingest->push ms": round(
             statistics.median(values) * 1000, 1)}
        for name, values in (("serve", plain_latencies),
                             ("serve + delta ckpt", delta_latencies))
    ]
    print()
    print(format_table(rows, title="PERF-4 — serving push latency "
                                   f"({CHUNK_DOCS}-doc batches)"))
    assert all(value > 0 for value in plain_latencies + delta_latencies)


# -- count-history maintenance (micro) ----------------------------------------


def seed_record_count_history(history, snapshot, history_length):
    """The pre-deque implementation: rescan and slice every tag per tick."""
    for tag, count in snapshot.items():
        history.setdefault(tag, []).append(count)
    for tag in list(history):
        if tag not in snapshot:
            history[tag].append(0)
        if len(history[tag]) > history_length:
            del history[tag][: -history_length]


def test_count_history_deques_vs_seed_slicing():
    """Bounded deques vs the seed rescan-and-slice, same evolution.

    Every evaluation used to copy the key list and re-slice every tag's
    series; with deque(maxlen) the append is the whole trim.  Equivalence
    is asserted first over a tag population with churn (appearing and
    disappearing tags), then both maintenance loops are timed.
    """
    from repro.core.tracker import record_count_history

    tags = [f"tag{i:04d}" for i in range(2000)]
    rows = [
        {tag: (step + index) % 7 + 1
         for index, tag in enumerate(tags)
         if (step + index) % 3}          # a third of the tags churn out
        for step in range(48)
    ]
    history_length = 24

    lists: dict = {}
    deques: dict = {}
    for row in rows:
        seed_record_count_history(lists, row, history_length)
        record_count_history(deques, row, history_length)
    assert {tag: list(series) for tag, series in deques.items()} == lists

    def run_seed():
        history: dict = {}
        for row in rows:
            seed_record_count_history(history, row, history_length)

    def run_deques():
        history: dict = {}
        for row in rows:
            record_count_history(history, row, history_length)

    medians = interleaved_medians(
        [("rescan+slice (seed)", run_seed), ("bounded deques", run_deques)],
        rounds=5,
    )
    per_eval = {name: seconds / len(rows) * 1e6
                for name, seconds in medians.items()}
    print()
    print(format_table(
        [
            {"method": name, "us/evaluation": round(value, 1)}
            for name, value in per_eval.items()
        ],
        title=f"PERF-3 — count-history maintenance over {len(tags)} tags",
    ))
    assert medians["bounded deques"] < medians["rescan+slice (seed)"]


# -- striped count-history maintenance under reader threads (micro) ----------


def test_striped_count_history_contention():
    """Striped vs single-stripe count history under concurrent readers.

    The threads-backend coordinator records count-history rows while the
    metrics endpoint and the evaluation path read tag series concurrently.
    Equivalence is asserted first: the striped structure evolves exactly
    like the shared ``record_count_history`` rule.  Then the same
    write+read workload runs against one stripe (a single global lock)
    and eight stripes; with stripes, readers touch one lock at a time so
    the writer rarely blocks behind a whole-table scan.
    """
    import threading

    from repro.core.tracker import record_count_history
    from repro.windows.striped import StripedCountHistory

    tags = [f"tag{i:04d}" for i in range(2000)]
    rows = [
        {tag: (step + index) % 7 + 1
         for index, tag in enumerate(tags)
         if (step + index) % 3}
        for step in range(48)
    ]
    history_length = 24

    plain: dict = {}
    striped_check = StripedCountHistory(history_length, stripes=8)
    for row in rows:
        record_count_history(plain, row, history_length)
        striped_check.record_row(row)
    assert {tag: list(series) for tag, series in striped_check.items()} \
        == {tag: list(series) for tag, series in plain.items()}

    def contended_run(stripes):
        history = StripedCountHistory(history_length, stripes=stripes)
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                for _, series in history.items():
                    len(series)

        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in readers:
            thread.start()
        try:
            for row in rows:
                history.record_row(row)
        finally:
            stop.set()
            for thread in readers:
                thread.join()

    medians = interleaved_medians(
        [
            ("1 stripe (global lock)", lambda: contended_run(1)),
            ("8 stripes", lambda: contended_run(8)),
        ],
        rounds=5,
    )
    print()
    print(format_table(
        [
            {"layout": name,
             "ms/48-row replay": round(seconds * 1000, 1)}
            for name, seconds in medians.items()
        ],
        title=f"PERF-2 — count-history writes over {len(tags)} tags "
              "with 2 reader threads",
    ))
    # No strict ordering assert: on a saturated CI runner the GIL flattens
    # the difference; the recorded table carries the machine numbers.
    assert all(seconds > 0 for seconds in medians.values())


# -- indexed vs scanned candidate generation ---------------------------------


def _candidate_workload():
    """A tag-rich stream where the window holds far more pairs than any seed
    set touches — the regime the postings index exists for."""
    vocabulary = TagVocabulary(
        {"tail": [f"tag{i:04d}" for i in range(1200)]}
    )
    generator = SyntheticStreamGenerator(
        vocabulary=vocabulary, docs_per_step=300, tags_per_doc=(2, 4),
        step=HOUR, seed=47,
    )
    tracker = CorrelationTracker(window_horizon=24 * HOUR, min_pair_support=2)
    for batch in generator.iter_batches(24):
        tracker.observe_many(
            (doc.timestamp, doc.tags, ()) for doc in batch
        )
    seeds = [tag for tag, _ in tracker.tag_window.top_tags(15)]
    return tracker, seeds


def seed_scan_candidates(pair_counts, seeds, min_support):
    """The seed revision's candidate generation: scan every windowed pair."""
    seed_set = set(seeds)
    if not seed_set:
        return []
    candidates = []
    for pair, count in pair_counts.items():
        if count < min_support:
            continue
        if pair.first in seed_set:
            candidates.append((pair, pair.first))
        elif pair.second in seed_set:
            candidates.append((pair, pair.second))
    candidates.sort(key=lambda item: item[0])
    return candidates


def test_indexed_vs_scan_candidate_generation():
    """Seed-postings union vs the seed revision's full pair scan."""
    tracker, seeds = _candidate_workload()
    index = tracker.candidate_index
    # The seed revision kept a flat {pair: count} mapping; rebuild it so the
    # scan baseline pays exactly the cost it paid then.
    flat_counts = dict(index.items())
    assert tracker.candidate_pairs(seeds) \
        == seed_scan_candidates(flat_counts, seeds, index.min_support) \
        == index.scan_candidates(seeds)

    # Time what each pipeline actually runs per evaluation: the seed path
    # scanned and sorted every windowed pair; the new path unions the seed
    # postings unsorted (ordering is applied by the ranking, not here).
    repetitions = 200
    medians = interleaved_medians(
        [
            ("scan", lambda: [seed_scan_candidates(flat_counts, seeds,
                                                   index.min_support)
                              for _ in range(repetitions)]),
            ("indexed", lambda: [index.iter_candidates(seeds)
                                 for _ in range(repetitions)]),
        ],
        rounds=5,
    )
    scan_us = medians["scan"] / repetitions * 1e6
    indexed_us = medians["indexed"] / repetitions * 1e6
    print()
    print(format_table(
        [
            {"method": "scan (seed)", "us/evaluation": round(scan_us, 1)},
            {"method": "indexed", "us/evaluation": round(indexed_us, 1),
             "speedup": round(scan_us / indexed_us, 2)},
        ],
        title=f"PERF-1 — candidate generation over {len(index)} live pairs, "
              f"{len(seeds)} seeds",
    ))
    assert indexed_us < scan_us


# -- operator sharing and sketches (unchanged claims) ------------------------


def test_single_plan_throughput(benchmark, small_tweets):
    """Documents/second through normalizer -> entity tagging -> enBlogue."""

    def replay():
        engine = EnBlogue(live_config(name="throughput"))
        executor = PlanExecutor()
        source = DocumentStreamSource(small_tweets, source_name="twitter")
        executor.register(QueryPlan(
            "single", source,
            [TagNormalizerOperator(), EntityTaggingOperator()],
            engine.as_sink()))
        executor.run()
        return engine

    engine = benchmark(replay)
    assert engine.documents_processed == len(small_tweets)


def test_batched_plan_throughput(benchmark, small_tweets):
    """The same DAG replayed through the batch protocol (256-item chunks)."""

    def replay():
        engine = EnBlogue(live_config(name="throughput-batch"))
        executor = PlanExecutor()
        source = DocumentStreamSource(small_tweets, source_name="twitter")
        executor.register(QueryPlan(
            "batched", source,
            [TagNormalizerOperator(), EntityTaggingOperator()],
            engine.as_sink()))
        executor.run(batch_size=256)
        return engine

    engine = benchmark(replay)
    assert engine.documents_processed == len(small_tweets)


@pytest.mark.parametrize("plans", [1, 2, 4])
@pytest.mark.parametrize("shared", [True, False], ids=["shared", "unshared"])
def test_parallel_plans_with_and_without_sharing(benchmark, small_tweets, plans, shared):
    """N parameter settings over one stream: shared vs. private upstream operators."""

    def replay():
        executor = PlanExecutor()
        source = DocumentStreamSource(small_tweets, source_name="twitter")
        engines = []
        if shared:
            upstream = [
                executor.shared_operator("normalize", TagNormalizerOperator),
                executor.shared_operator("stats", StatisticsOperator),
                executor.shared_operator("entities", EntityTaggingOperator),
            ]
        for index in range(plans):
            engine = EnBlogue(live_config(
                name=f"plan-{index}", top_k=10,
                predictor="ewma" if index % 2 == 0 else "moving_average"))
            engines.append(engine)
            operators = upstream if shared else [
                TagNormalizerOperator(), StatisticsOperator(), EntityTaggingOperator(),
            ]
            executor.register(QueryPlan(f"plan-{index}", source, operators,
                                        engine.as_sink()))
        executor.run()
        return engines

    engines = benchmark.pedantic(replay, rounds=2, iterations=1)
    assert all(engine.documents_processed == len(small_tweets) for engine in engines)


def test_exact_vs_sketch_counting(benchmark, small_tweets):
    """Windowed tag counting: exact TagFrequencyWindow vs. Count-Min panes."""

    def count_with_both():
        exact = TagFrequencyWindow(24 * HOUR)
        sketch = WindowedCountMinSketch(horizon=24 * HOUR, panes=8, width=512, depth=4)
        for document in small_tweets:
            exact.add_document(document.timestamp, document.tags)
            for tag in document.tags:
                sketch.add(document.timestamp, tag)
        return exact, sketch

    exact, sketch = benchmark.pedantic(count_with_both, rounds=1, iterations=1)

    rows = []
    overestimates = []
    for tag, true_count in exact.top_tags(10):
        estimate = sketch.estimate(tag)
        overestimates.append(estimate - true_count)
        rows.append({"tag": tag, "exact": true_count, "count-min": estimate,
                     "overestimate": estimate - true_count})
    print()
    print(format_table(rows, title="PERF-1 — exact vs. Count-Min windowed counts "
                                   "(top-10 tags, last 24h)"))
    # The sketch never undercounts and stays close on the heavy hitters.
    assert all(delta >= 0 for delta in overestimates)
    assert max(overestimates) <= 0.2 * max(count for _, count in exact.top_tags(1))


# -- baseline recording ------------------------------------------------------


def _bench_docs():
    corpus, _ = TweetStreamGenerator(hours=24, tweets_per_hour=400,
                                     seed=43).generate()
    return list(corpus)


def _cpu_cores():
    # Sharded/checkpoint numbers are only meaningful relative to the cores
    # the recording machine actually had: on one core the process backend
    # can't beat the single engine by construction.
    return len(os.sched_getaffinity(0)) \
        if hasattr(os, "sched_getaffinity") else os.cpu_count()


def _measure_sharding_section(docs, rounds: int) -> dict:
    """The ``sharding`` section: scaling rows vs the single engine."""
    reference = ranking_signature(replay_batch(docs))
    for num_shards in (1, 2, 4):
        assert ranking_signature(replay_sharded(docs, num_shards, "serial")) \
            == reference
    assert ranking_signature(replay_sharded(docs, 4, "threads")) == reference
    assert ranking_signature(replay_sharded(docs, 4, "process")) == reference
    # The single engine runs inside the same interleaved rounds as the
    # sharded contestants so the recorded speedups compare like conditions
    # (interleaving exists to cancel machine drift between runners).
    sharded_medians = interleaved_medians(
        [
            ("single", lambda: replay_batch(docs)),
            ("serial-1", lambda: replay_sharded(docs, 1, "serial")),
            ("serial-2", lambda: replay_sharded(docs, 2, "serial")),
            ("serial-4", lambda: replay_sharded(docs, 4, "serial")),
            ("threads-4", lambda: replay_sharded(docs, 4, "threads")),
            ("process-4", lambda: replay_sharded(docs, 4, "process")),
        ],
        rounds=rounds,
    )
    return {
        "rankings_identical": True,
        "recorded": time.strftime("%Y-%m-%d"),
        "cpu_cores": _cpu_cores(),
        **{
            f"{name}_docs_per_s": round(len(docs) / seconds)
            for name, seconds in sharded_medians.items()
        },
        "threads_4_vs_single_speedup": round(
            sharded_medians["single"] / sharded_medians["threads-4"], 2),
        "process_4_vs_single_speedup": round(
            sharded_medians["single"] / sharded_medians["process-4"], 2),
    }


#: Evaluations timed per measurement round of the vectorized-evaluation
#: section (each advances stream time by one second, so state mutation is
#: realistic but the window barely moves across a whole measurement).
EVALUATION_REPETITIONS = 20


def _measure_evaluation_vectorized_section(rounds: int) -> dict:
    """The ``evaluation_vectorized`` section: scalar vs numpy-batched.

    Times ``evaluate_now`` — candidate sampling, shift scoring and top-k —
    on identically-ingested engines whose only difference is the
    evaluation path, at three candidate-set scales (the stream rate grows
    the windowed pair count, which grows the per-seed candidate set).
    Rankings are asserted bit-identical before anything is timed.
    """
    section = {
        "rankings_identical": True,
        "recorded": time.strftime("%Y-%m-%d"),
        "evaluations_per_round": EVALUATION_REPETITIONS,
    }
    for scale, rate in (("1x", 100), ("4x", 400), ("16x", 1600)):
        corpus, _ = TweetStreamGenerator(
            hours=24, tweets_per_hour=rate, seed=43
        ).generate()
        docs = list(corpus)
        scalar_engine = EnBlogue(
            throughput_config("eval-scalar"), vectorize=False)
        batched_engine = EnBlogue(
            throughput_config("eval-vectorized"), vectorize=True)
        assert scalar_engine.evaluation_path == "scalar"
        assert batched_engine.evaluation_path == "vectorized"
        scalar_engine.process_batch(docs)
        batched_engine.process_batch(docs)
        assert ranking_signature(scalar_engine) \
            == ranking_signature(batched_engine)

        clocks = {"scalar": docs[-1].timestamp,
                  "vectorized": docs[-1].timestamp}

        def evaluate(engine, name):
            timestamp = clocks[name]
            for _ in range(EVALUATION_REPETITIONS):
                timestamp += 1.0
                engine.evaluate_now(timestamp)
            clocks[name] = timestamp

        medians = interleaved_medians(
            [
                ("scalar", lambda: evaluate(scalar_engine, "scalar")),
                ("vectorized",
                 lambda: evaluate(batched_engine, "vectorized")),
            ],
            rounds=rounds,
        )
        candidates = len(batched_engine.tracker.candidate_index
                         .iter_candidates(batched_engine.current_seeds))
        scalar_us = medians["scalar"] / EVALUATION_REPETITIONS * 1e6
        vectorized_us = medians["vectorized"] / EVALUATION_REPETITIONS * 1e6
        section[f"scale_{scale}"] = {
            "tweets_per_hour": rate,
            "candidates_per_evaluation": candidates,
            "scalar_us_per_evaluation": round(scalar_us, 1),
            "vectorized_us_per_evaluation": round(vectorized_us, 1),
            "vectorized_vs_scalar_speedup": round(
                scalar_us / vectorized_us, 2),
        }
    return section


def _measure_checkpointing_section(docs, rounds: int) -> dict:
    """The ``checkpointing`` section: the docs/s cost of durability."""
    with tempfile.TemporaryDirectory() as raw_dir:
        directory = Path(raw_dir)
        assert ranking_signature(replay_batch_checkpointed(docs)) \
            == ranking_signature(
                replay_batch_checkpointed(docs, checkpoint_dir=directory))
        medians = interleaved_medians(
            [
                ("off", lambda: replay_batch_checkpointed(docs)),
                ("on", lambda: replay_batch_checkpointed(
                    docs, checkpoint_dir=directory)),
            ],
            rounds=rounds,
        )
        checkpoint_bytes = sum(
            path.stat().st_size for path in directory.iterdir()
        )
    checkpoints = (len(docs) // CHUNK_DOCS) // CHECKPOINT_EVERY
    return {
        "rankings_identical": True,
        "recorded": time.strftime("%Y-%m-%d"),
        "checkpoint_every_docs": CHECKPOINT_EVERY * CHUNK_DOCS,
        "checkpoints_per_replay": checkpoints,
        "checkpoint_bytes": checkpoint_bytes,
        "off_docs_per_s": round(len(docs) / medians["off"]),
        "on_docs_per_s": round(len(docs) / medians["on"]),
        # The replay-relative overhead is brutal by construction (a 24h
        # stream replays in ~100ms); the per-checkpoint milliseconds are
        # the number a deployment actually pays per cadence tick.
        "overhead_pct": round(
            (medians["on"] / medians["off"] - 1.0) * 100, 1),
        "checkpoint_ms": round(
            (medians["on"] - medians["off"]) / max(checkpoints, 1) * 1000, 1),
    }


def _measure_checkpointing_delta_section(docs, rounds: int) -> dict:
    """The ``checkpointing_delta`` section: journaled vs full durability.

    Same cadence as the ``checkpointing`` section (a checkpoint every
    CHECKPOINT_EVERY * CHUNK_DOCS documents), but the contestant writes a
    base plus journal segments.  Besides the docs/s comparison the section
    records that the delta-checkpointed rankings equal the plain replay's
    and that the final base+journal folds back into the live snapshot.
    """
    from repro.persistence import read_checkpoint

    with tempfile.TemporaryDirectory() as raw_dir:
        directory = Path(raw_dir)
        delta_engine = replay_batch_checkpointed(
            docs, checkpoint_dir=directory, mode="delta")
        assert ranking_signature(replay_batch_checkpointed(docs)) \
            == ranking_signature(delta_engine)
        # One extra segment covers the trailing partial chunk, so the
        # fold-back check compares like with like.
        delta_engine.save_delta_checkpoint(directory)
        _, merged = read_checkpoint(directory)
        assert merged == delta_engine.snapshot()
        medians = interleaved_medians(
            [
                ("off", lambda: replay_batch_checkpointed(docs)),
                ("on", lambda: replay_batch_checkpointed(
                    docs, checkpoint_dir=directory, mode="delta")),
            ],
            rounds=rounds,
        )
        # Base state files only — MANIFEST.json is chain metadata, not
        # snapshot payload.
        base_bytes = sum(
            path.stat().st_size
            for pattern in ("engine-*.json", "shard-*.json")
            for path in directory.glob(pattern))
        journal_bytes = sum(
            path.stat().st_size for path in directory.glob("*.delta"))
        segments = len(list(directory.glob("engine-*.delta")))
    checkpoints = (len(docs) // CHUNK_DOCS) // CHECKPOINT_EVERY
    return {
        "rankings_identical": True,
        "journal_restores_live_snapshot": True,
        "recorded": time.strftime("%Y-%m-%d"),
        "checkpoint_every_docs": CHECKPOINT_EVERY * CHUNK_DOCS,
        "full_every_ticks": FULL_EVERY,
        "checkpoints_per_replay": checkpoints,
        "journal_segments_per_replay": segments,
        "base_bytes": base_bytes,
        "journal_bytes": journal_bytes,
        "off_docs_per_s": round(len(docs) / medians["off"]),
        "on_docs_per_s": round(len(docs) / medians["on"]),
        "overhead_pct": round(
            (medians["on"] / medians["off"] - 1.0) * 100, 1),
        # +1: the replay also writes the chain's initial (near-empty)
        # base, so the total overhead spreads over checkpoints+1 writes.
        "checkpoint_ms": round(
            (medians["on"] - medians["off"]) / (checkpoints + 1) * 1000, 1),
    }


def _measure_serving_section(docs, rounds: int) -> dict:
    """The ``serving`` section: the asyncio layer vs the bare batch path.

    Records serving docs/s (free-running producer over the bounded queue)
    with and without a concurrent delta checkpoint cadence, plus the
    median ingest→ranking-push latency measured in lockstep (submit, wait
    for the frames).  Frames are asserted identical to the plain batch
    replay before anything is timed.
    """
    reference = ranking_signature(replay_batch(docs))
    engine, frames, _, _ = serve_replay(docs)
    assert ranking_signature(engine) == reference
    assert [
        (ranking.timestamp, [(topic.pair, topic.score) for topic in ranking])
        for ranking in frames
    ] == reference

    with tempfile.TemporaryDirectory() as raw_dir:
        directory = Path(raw_dir)
        medians = interleaved_medians(
            [
                ("replay", lambda: replay_batch(docs)),
                ("serve", lambda: serve_replay(docs)),
                ("serve-delta-ckpt", lambda: serve_replay(
                    docs, checkpoint_dir=directory)),
            ],
            rounds=rounds,
        )
        _, _, plain_latencies, _ = serve_replay(docs, lockstep=True)
        with tempfile.TemporaryDirectory() as latency_dir:
            _, _, ckpt_latencies, _ = serve_replay(
                docs, checkpoint_dir=Path(latency_dir), lockstep=True)
    return {
        "rankings_identical": True,
        "recorded": time.strftime("%Y-%m-%d"),
        "cpu_cores": _cpu_cores(),
        "chunk_docs": CHUNK_DOCS,
        "checkpoint_every_rankings": CHECKPOINT_EVERY,
        "replay_docs_per_s": round(len(docs) / medians["replay"]),
        "serve_docs_per_s": round(len(docs) / medians["serve"]),
        "serve_delta_ckpt_docs_per_s": round(
            len(docs) / medians["serve-delta-ckpt"]),
        "serve_vs_replay_overhead_pct": round(
            (medians["serve"] / medians["replay"] - 1.0) * 100, 1),
        "delta_ckpt_overhead_pct": round(
            (medians["serve-delta-ckpt"] / medians["serve"] - 1.0) * 100, 1),
        "push_latency_ms_p50": round(
            statistics.median(plain_latencies) * 1000, 2),
        "push_latency_ms_p50_with_delta_ckpt": round(
            statistics.median(ckpt_latencies) * 1000, 2),
    }


def _measure_observability_section(docs, rounds: int) -> dict:
    """The ``observability`` section: the docs/s cost of instrumentation.

    Rankings are asserted bit-identical with the full metrics+tracing
    layer enabled before anything is timed; the recorded overhead is held
    to the <=2% gate (plus the fixed sub-second-replay slack) — the same
    predicate ``test_observability_overhead_within_two_percent`` enforces
    in CI.
    """
    plain = replay_batch(docs)
    observed = replay_batch_observed(docs)
    assert ranking_signature(observed) == ranking_signature(plain)
    families = parse_prometheus_families(
        render_prometheus(observed.observability.registry))
    medians = interleaved_medians(
        [
            ("off", lambda: replay_batch(docs)),
            ("on", lambda: replay_batch_observed(docs)),
        ],
        rounds=rounds,
    )
    return {
        "rankings_identical": True,
        "recorded": time.strftime("%Y-%m-%d"),
        "metric_families": len(families),
        "off_docs_per_s": round(len(docs) / medians["off"]),
        "on_docs_per_s": round(len(docs) / medians["on"]),
        "overhead_pct": round(
            (medians["on"] / medians["off"] - 1.0) * 100, 1),
        "gate": "on <= off * 1.02 + 5ms",
        "within_gate": observability_within_gate(
            medians["on"], medians["off"]),
    }


def _measure_observability_profiling_section(docs, rounds: int) -> dict:
    """The ``observability_profiling`` section: profiler + logging cost.

    Four contestants replayed interleaved: no bundle, a disabled bundle
    (no-op singletons at every call site), the enabled bundle, and the
    enabled bundle with the 100Hz sampling profiler running.  Rankings
    are asserted bit-identical under the heaviest configuration before
    anything is timed; the recorded numbers are held to the same two
    gates ``test_profiling_and_logging_overhead_within_gate`` enforces.
    """
    plain = replay_batch(docs)
    profiled = replay_batch_profiled(docs)
    assert ranking_signature(profiled) == ranking_signature(plain)

    # One instrumented run counts what the subsystems actually did.
    observability = Observability()
    observability.profiler.start(interval=0.01)
    try:
        engine = EnBlogue(throughput_config("batch"),
                          observability=observability)
        engine.process_batch(docs)
        samples = observability.profiler.samples_total
        log_records = observability.log.sequence
    finally:
        observability.close()

    medians = interleaved_minima(
        [
            ("off", lambda: replay_batch(docs)),
            ("disabled", lambda: replay_batch_disabled(docs)),
            ("enabled", lambda: replay_batch_observed(docs)),
            ("profiled-100hz", lambda: replay_batch_profiled(docs)),
        ],
        rounds=rounds,
    )
    return {
        "rankings_identical": True,
        "recorded": time.strftime("%Y-%m-%d"),
        "profiler_hz": 100,
        "profiler_samples_per_replay": int(samples),
        "log_records_per_replay": int(log_records),
        "off_docs_per_s": round(len(docs) / medians["off"]),
        "disabled_docs_per_s": round(len(docs) / medians["disabled"]),
        "enabled_docs_per_s": round(len(docs) / medians["enabled"]),
        "profiled_docs_per_s": round(
            len(docs) / medians["profiled-100hz"]),
        "disabled_overhead_pct": round(
            (medians["disabled"] / medians["off"] - 1.0) * 100, 2),
        "profiled_overhead_pct": round(
            (medians["profiled-100hz"] / medians["enabled"] - 1.0) * 100, 2),
        "gates": "disabled <= off * 1.005 + 10ms; "
                 "profiled <= enabled * 1.05 + 10ms",
        "within_disabled_gate": profiling_disabled_within_gate(
            medians["disabled"], medians["off"]),
        "within_profiled_gate": profiling_enabled_within_gate(
            medians["profiled-100hz"], medians["enabled"]),
    }


# -- approximate tracking: the two-tier tracker at 100x cardinality ----------

#: Tag universe of the approximate-tracking workload: 100x the 1,200-tag
#: universe of the candidate-generation workload, so exact tracking pays
#: the quadratic pair blow-up the sketch tier exists to bound.
APPROXIMATE_TAGS = 120_000
APPROXIMATE_STEPS = 72
APPROXIMATE_THRESHOLDS = (2, 3, 4)
#: The promote-support row the acceptance gates are asserted on.
APPROXIMATE_HEADLINE_SUPPORT = 2


def _approximate_docs():
    """Deterministic high-cardinality synthetic stream (14,400 documents).

    A Zipf tail over 120,000 tags keeps most pairs cold — the regime where
    admission filtering pays — while the hourly step and three-day span
    give the engine ~71 evaluation boundaries to rank at.
    """
    vocabulary = TagVocabulary(
        {"tail": [f"tag{i:06d}" for i in range(APPROXIMATE_TAGS)]})
    generator = SyntheticStreamGenerator(
        vocabulary=vocabulary, docs_per_step=200, tags_per_doc=(2, 4),
        step=HOUR, seed=51)
    return [doc for batch in generator.iter_batches(APPROXIMATE_STEPS)
            for doc in batch]


def _approximate_config(name: str, promote_support: int = 0):
    overrides = dict(name=name, min_pair_support=5, num_seeds=15)
    if promote_support >= 2:
        overrides.update(tracking="tiered", promote_support=promote_support)
    return live_config(**overrides)


def _replay_approximate(docs, promote_support: int = 0, sample_every: int = 512):
    """Replay ``docs``; return ``(engine, peak live pairs, seconds)``.

    The peak is sampled between ``sample_every``-document chunks — live
    pairs rise and fall with window eviction, so the end-of-stream count
    alone would understate what the exact tracker had to hold.
    """
    engine = EnBlogue(_approximate_config(
        "approx-tiered" if promote_support >= 2 else "approx-exact",
        promote_support))
    peak = 0
    start = time.perf_counter()
    for begin in range(0, len(docs), sample_every):
        engine.process_batch(docs[begin:begin + sample_every])
        peak = max(peak, len(engine.tracker.candidate_index))
    return engine, peak, time.perf_counter() - start


def _topk_agreement(exact_engine, tiered_engine):
    """Micro-averaged (precision, recall) of tiered top-k vs exact top-k."""
    exact_total = tiered_total = intersection = 0
    for exact_ranking, tiered_ranking in zip(
            exact_engine.ranking_history(), tiered_engine.ranking_history()):
        exact_pairs = {topic.pair for topic in exact_ranking}
        tiered_pairs = {topic.pair for topic in tiered_ranking}
        exact_total += len(exact_pairs)
        tiered_total += len(tiered_pairs)
        intersection += len(exact_pairs & tiered_pairs)
    recall = intersection / exact_total if exact_total else 1.0
    precision = intersection / tiered_total if tiered_total else 1.0
    return precision, recall


def _tracker_state_bytes(engine):
    """``(pair-specific bytes, total bytes)`` of the tracker's JSON snapshot.

    Pair-specific state — pair events, the candidate index, pair histories,
    plus the sketch tier when present — is what admission filtering bounds;
    tag-level state (tag window, count history) scales with the tag
    population identically in both modes.
    """
    tracker = engine.snapshot()["tracker"]
    pair_bytes = sum(len(json.dumps(tracker[part]))
                     for part in ("pair_events", "candidates", "histories"))
    if tracker.get("tier") is not None:
        pair_bytes += len(json.dumps(tracker["tier"]))
    return pair_bytes, len(json.dumps(tracker))


def _approximate_resume_identical(docs, reference_engine, promote_support):
    """Checkpoint a tiered 2-shard replay mid-stream, resume into 4 shards.

    Returns whether the resumed rankings match the uninterrupted single
    tiered engine's — which covers both the sharded/single parity and the
    N->M re-partitioning of the coordinator-owned tier state.
    """
    half = len(docs) // 2
    config = _approximate_config("approx-tiered", promote_support)
    with tempfile.TemporaryDirectory() as raw_dir:
        first = ShardedEnBlogue(config, num_shards=2, backend="serial")
        try:
            first.process_batch(docs[:half])
            first.save_checkpoint(raw_dir)
        finally:
            first.close()
        resumed, _ = load_engine(raw_dir, num_shards=4)
        try:
            resumed.process_batch(docs[half:])
            return ranking_signature(resumed) \
                == ranking_signature(reference_engine)
        finally:
            resumed.close()


def test_tiered_tracking_meets_approximate_gates():
    """The acceptance gates of the two-tier tracker, on the 100x stream.

    At the headline threshold the tier must cut the exact tracker's peak
    live-pair count by >= 5x while keeping >= 0.9 recall of the exact
    top-k — including across a mid-stream checkpoint and a 2->4 shard
    resume.  Everything here is deterministic (synthetic stream, blake2b
    hashing), so the gate cannot flake with machine load.
    """
    docs = _approximate_docs()
    exact_engine, exact_peak, _ = _replay_approximate(docs)
    tiered_engine, tiered_peak, _ = _replay_approximate(
        docs, APPROXIMATE_HEADLINE_SUPPORT)
    precision, recall = _topk_agreement(exact_engine, tiered_engine)
    reduction = exact_peak / tiered_peak
    print()
    print(format_table(
        [
            {"tracking": "exact", "peak live pairs": exact_peak,
             "precision": 1.0, "recall": 1.0},
            {"tracking": f"tiered K={APPROXIMATE_HEADLINE_SUPPORT}",
             "peak live pairs": tiered_peak,
             "precision": round(precision, 3), "recall": round(recall, 3)},
        ],
        title=f"PERF-3 — two-tier tracking over {APPROXIMATE_TAGS} tags "
              f"({reduction:.1f}x live-pair reduction)",
    ))
    assert reduction >= 5.0
    assert recall >= 0.9
    assert _approximate_resume_identical(
        docs, tiered_engine, APPROXIMATE_HEADLINE_SUPPORT)


def _measure_approximate_section(rounds: int) -> dict:
    """The ``approximate`` section: memory/accuracy of the sketch tier.

    One exact and three tiered replays of the 100x-cardinality stream,
    recording peak live pairs, snapshot state size, top-k agreement and
    tier counters per promote-support threshold; ingest rates come from
    interleaved timing of the exact and headline contestants.  The
    headline gates (>= 5x live-pair reduction at >= 0.9 recall, rankings
    preserved across a mid-stream 2->4 shard resume) are asserted before
    the section is returned, so a recorded baseline always satisfies them.
    """
    docs = _approximate_docs()
    exact_engine, exact_peak, _ = _replay_approximate(docs)
    exact_pair_bytes, exact_total_bytes = _tracker_state_bytes(exact_engine)
    section = {
        "recorded": time.strftime("%Y-%m-%d"),
        "workload": {
            "stream": "SyntheticStreamGenerator(120000-tag Zipf tail, "
                      "docs_per_step=200, tags_per_doc=(2, 4), step=1h, "
                      "seed=51) x 72 steps",
            "documents": len(docs),
            "tags": APPROXIMATE_TAGS,
            "config": "live_config(min_pair_support=5, num_seeds=15)",
            "evaluations": len(exact_engine.ranking_history()),
        },
        "exact": {
            "peak_live_pairs": exact_peak,
            "pair_state_kb": round(exact_pair_bytes / 1024),
            "tracker_state_kb": round(exact_total_bytes / 1024),
        },
    }
    headline_engine = None
    headline_row = None
    for support in APPROXIMATE_THRESHOLDS:
        tiered_engine, tiered_peak, _ = _replay_approximate(docs, support)
        precision, recall = _topk_agreement(exact_engine, tiered_engine)
        pair_bytes, total_bytes = _tracker_state_bytes(tiered_engine)
        tier = tiered_engine.tracker.tier
        row = {
            "peak_live_pairs": tiered_peak,
            "live_pair_reduction": round(exact_peak / tiered_peak, 1),
            "pair_state_kb": round(pair_bytes / 1024),
            "tracker_state_kb": round(total_bytes / 1024),
            "precision": round(precision, 3),
            "recall": round(recall, 3),
            "promotions": tier.promotions,
            "filtered": tier.filtered,
        }
        section[f"promote_support_{support}"] = row
        if support == APPROXIMATE_HEADLINE_SUPPORT:
            headline_engine = tiered_engine
            headline_row = row

    medians = interleaved_medians(
        [
            ("exact", lambda: _replay_approximate(docs)),
            ("tiered", lambda: _replay_approximate(
                docs, APPROXIMATE_HEADLINE_SUPPORT)),
        ],
        rounds=rounds,
    )
    section["exact"]["docs_per_s"] = round(len(docs) / medians["exact"])
    headline_row["docs_per_s"] = round(len(docs) / medians["tiered"])

    resume_identical = _approximate_resume_identical(
        docs, headline_engine, APPROXIMATE_HEADLINE_SUPPORT)
    section["headline"] = {
        "promote_support": APPROXIMATE_HEADLINE_SUPPORT,
        "live_pair_reduction": headline_row["live_pair_reduction"],
        "recall": headline_row["recall"],
        "resume_rankings_identical": resume_identical,
        "gate": "reduction >= 5x, recall >= 0.9, rankings preserved "
                "across a 2->4 shard mid-stream resume",
    }
    assert headline_row["live_pair_reduction"] >= 5.0
    assert headline_row["recall"] >= 0.9
    assert resume_identical
    return section


def replay_supervised(docs, plan=None, observability=None):
    """The batch replay through the self-healing supervised threads pool.

    ``plan`` scripts worker deaths mid-stream (a fresh plan per run — the
    occurrence counters are stateful); the near-zero backoff base keeps
    the measured dip the *recovery* cost, not configured sleeping.
    """
    backend = SupervisedBackend(
        ThreadBackend(),
        policy=RetryPolicy(max_retries=3, backoff_base=0.001),
    )
    if plan is not None:
        backend.bind_fault_plan(plan)
    engine = ShardedEnBlogue(
        throughput_config("batch"), num_shards=2, backend=backend,
        observability=observability,
    )
    try:
        engine.process_batch(docs)
    finally:
        engine.close()
    return engine


def _measure_fault_recovery_section(docs, rounds: int) -> dict:
    """The ``fault_recovery`` section: the docs/s cost of losing a worker.

    A scripted kill takes one of two shard workers down mid-stream; the
    supervisor rebuilds it from base + operation-log replay.  Rankings
    are asserted bit-identical to the undisturbed replay before anything
    is timed — recovery is exact, the only price is wall clock.
    """
    reference = ranking_signature(replay_batch(docs))
    faulted = replay_supervised(
        docs, plan=FaultPlan().kill_worker(1, after_batches=2))
    assert ranking_signature(faulted) == reference
    assert faulted.supervision_info()["recoveries"] == 1

    medians = interleaved_medians(
        [
            ("supervised", lambda: replay_supervised(docs)),
            ("supervised-faulted", lambda: replay_supervised(
                docs, plan=FaultPlan().kill_worker(1, after_batches=2))),
        ],
        rounds=rounds,
    )

    # One instrumented run reads the recovery latency off the histogram
    # the supervisor feeds (the same family /metrics scrapes).
    observability = Observability()
    replay_supervised(
        docs, plan=FaultPlan().kill_worker(1, after_batches=2),
        observability=observability,
    )
    histogram = observability.registry.histogram(
        "repro_sharding_recovery_seconds")
    recoveries = max(1, int(histogram.count))

    return {
        "rankings_identical": True,
        "recorded": time.strftime("%Y-%m-%d"),
        "cpu_cores": _cpu_cores(),
        "shards": 2,
        "backend": "supervised[threads]",
        "fault": "kill worker 1 after its 2nd ingest dispatch",
        "supervised_docs_per_s": round(len(docs) / medians["supervised"]),
        "faulted_docs_per_s": round(
            len(docs) / medians["supervised-faulted"]),
        "recovery_dip_pct": round(
            (medians["supervised-faulted"] / medians["supervised"] - 1.0)
            * 100, 1),
        "recovery_ms_mean": round(
            histogram.sum / recoveries * 1000, 2),
        "recoveries_per_run": recoveries,
    }


def update_sections(sections, rounds: int = 3) -> dict:
    """Re-record only ``sections`` of an existing ``BENCH_throughput.json``.

    CI uses ``sharding`` and ``checkpointing_delta`` here: the full
    baseline was recorded in a 1-core container where the process backend
    can only lose, so the scaling rows are refreshed on the multi-core CI
    runner and uploaded as an artifact alongside the journaled-durability
    numbers.
    """
    baseline = json.loads(BASELINE_PATH.read_text())
    docs = _bench_docs()
    for section in sections:
        if section == "sharding":
            baseline["sharding"] = _measure_sharding_section(docs, rounds)
        elif section == "checkpointing":
            baseline["checkpointing"] = _measure_checkpointing_section(
                docs, rounds)
        elif section == "checkpointing_delta":
            baseline["checkpointing_delta"] = \
                _measure_checkpointing_delta_section(docs, rounds)
        elif section == "serving":
            baseline["serving"] = _measure_serving_section(docs, rounds)
        elif section == "evaluation_vectorized":
            baseline["evaluation_vectorized"] = \
                _measure_evaluation_vectorized_section(rounds)
        elif section == "observability":
            baseline["observability"] = _measure_observability_section(
                docs, rounds)
        elif section == "observability_profiling":
            baseline["observability_profiling"] = \
                _measure_observability_profiling_section(docs, rounds)
        elif section == "approximate":
            baseline["approximate"] = _measure_approximate_section(rounds)
        elif section == "fault_recovery":
            baseline["fault_recovery"] = _measure_fault_recovery_section(
                docs, rounds)
        else:
            raise SystemExit(f"unknown section {section!r}")
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    return baseline


def record_baseline(rounds: int = 9) -> dict:
    """Measure the machine baseline and write ``BENCH_throughput.json``."""
    docs = _bench_docs()
    assert ranking_signature(replay_seed_path(docs)) \
        == ranking_signature(replay_single(docs)) \
        == ranking_signature(replay_batch(docs))

    medians = interleaved_medians(
        [
            ("seed-path", lambda: replay_seed_path(docs)),
            ("single", lambda: replay_single(docs)),
            ("batch", lambda: replay_batch(docs)),
        ],
        rounds=rounds,
    )

    tracker, seeds = _candidate_workload()
    index = tracker.candidate_index
    flat_counts = dict(index.items())
    assert tracker.candidate_pairs(seeds) \
        == seed_scan_candidates(flat_counts, seeds, index.min_support)
    repetitions = 200
    candidate_medians = interleaved_medians(
        [
            ("scan", lambda: [seed_scan_candidates(flat_counts, seeds,
                                                   index.min_support)
                              for _ in range(repetitions)]),
            ("indexed", lambda: [index.iter_candidates(seeds)
                                 for _ in range(repetitions)]),
        ],
        rounds=5,
    )

    baseline = {
        "benchmark": "PERF-1 throughput",
        "recorded": time.strftime("%Y-%m-%d"),
        "workload": {
            "stream": "TweetStreamGenerator(hours=24, tweets_per_hour=400, seed=43)",
            "documents": len(docs),
            "config": "live_config(min_pair_support=5, num_seeds=15)",
            "rounds": rounds,
            "cpu_cores": _cpu_cores(),
        },
        "ingestion": {
            "seed_path_docs_per_s": round(len(docs) / medians["seed-path"]),
            "single_docs_per_s": round(len(docs) / medians["single"]),
            "batch_docs_per_s": round(len(docs) / medians["batch"]),
            "batch_vs_seed_speedup": round(
                medians["seed-path"] / medians["batch"], 2),
            "rankings_identical": True,
        },
        "candidate_generation": {
            "live_pairs": len(index),
            "seeds": len(seeds),
            "scan_us_per_evaluation": round(
                candidate_medians["scan"] / repetitions * 1e6, 1),
            "indexed_us_per_evaluation": round(
                candidate_medians["indexed"] / repetitions * 1e6, 1),
            "indexed_vs_scan_speedup": round(
                candidate_medians["scan"] / candidate_medians["indexed"], 2),
        },
        "sharding": _measure_sharding_section(docs, max(3, rounds // 3)),
        "checkpointing": _measure_checkpointing_section(
            docs, max(3, rounds // 3)),
        "checkpointing_delta": _measure_checkpointing_delta_section(
            docs, max(3, rounds // 3)),
        "serving": _measure_serving_section(docs, max(3, rounds // 3)),
        "evaluation_vectorized": _measure_evaluation_vectorized_section(
            max(3, rounds // 3)),
        "observability": _measure_observability_section(
            docs, max(3, rounds // 3)),
        "observability_profiling": _measure_observability_profiling_section(
            docs, max(3, rounds // 3)),
        "approximate": _measure_approximate_section(max(3, rounds // 3)),
        "fault_recovery": _measure_fault_recovery_section(
            docs, max(3, rounds // 3)),
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    return baseline


if __name__ == "__main__":
    arguments = argparse.ArgumentParser(
        description="record the machine baseline in BENCH_throughput.json")
    arguments.add_argument(
        "--section", action="append",
        choices=("sharding", "checkpointing", "checkpointing_delta",
                 "serving", "evaluation_vectorized", "observability",
                 "observability_profiling", "approximate", "fault_recovery"),
        help="re-record only this section of the existing baseline "
             "(repeatable); default: record everything")
    arguments.add_argument("--rounds", type=int, default=None,
                           help="interleaved measurement rounds")
    parsed = arguments.parse_args()
    if parsed.section:
        recorded = update_sections(parsed.section, rounds=parsed.rounds or 3)
        print(json.dumps(recorded, indent=2))
    else:
        recorded = record_baseline(rounds=parsed.rounds or 9)
        print(json.dumps(recorded, indent=2))
        speedup = recorded["ingestion"]["batch_vs_seed_speedup"]
        if speedup < 1.5:
            raise SystemExit(
                f"batch path speedup {speedup} below the 1.5x target")
