"""PERF-1: engine throughput, operator sharing and sketch-based counting.

Section 4.1 claims a push-based architecture where "overlapping parts, like
data sources, sketching operators, entity tagging, and statistics operators
are shared for efficiency" across parallel query plans.  The benchmark
measures

* raw detection throughput (documents/second through the full pipeline),
* the cost of running N parallel query plans with and without sharing the
  expensive upstream operators (entity tagging + statistics), and
* exact windowed counting versus the Count-Min sketch synopsis.

Absolute numbers are not comparable to the paper's Java system; the claim
being reproduced is the *relative* benefit of sharing.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import HOUR, live_config
from repro.core.engine import EnBlogue
from repro.datasets.twitter import TweetStreamGenerator
from repro.entity.tagger import EntityTaggingOperator
from repro.evaluation.reporting import format_table
from repro.sketches.countmin import WindowedCountMinSketch
from repro.streams.operators import StatisticsOperator, TagNormalizerOperator
from repro.streams.plan import PlanExecutor, QueryPlan
from repro.streams.sources import DocumentStreamSource
from repro.windows.aggregates import TagFrequencyWindow


@pytest.fixture(scope="module")
def small_tweets():
    corpus, _ = TweetStreamGenerator(hours=24, tweets_per_hour=50, seed=43).generate()
    return corpus


def test_single_plan_throughput(benchmark, small_tweets):
    """Documents/second through normalizer -> entity tagging -> enBlogue."""

    def replay():
        engine = EnBlogue(live_config(name="throughput"))
        executor = PlanExecutor()
        source = DocumentStreamSource(small_tweets, source_name="twitter")
        executor.register(QueryPlan(
            "single", source,
            [TagNormalizerOperator(), EntityTaggingOperator()],
            engine.as_sink()))
        executor.run()
        return engine

    engine = benchmark(replay)
    assert engine.documents_processed == len(small_tweets)


@pytest.mark.parametrize("plans", [1, 2, 4])
@pytest.mark.parametrize("shared", [True, False], ids=["shared", "unshared"])
def test_parallel_plans_with_and_without_sharing(benchmark, small_tweets, plans, shared):
    """N parameter settings over one stream: shared vs. private upstream operators."""

    def replay():
        executor = PlanExecutor()
        source = DocumentStreamSource(small_tweets, source_name="twitter")
        engines = []
        if shared:
            upstream = [
                executor.shared_operator("normalize", TagNormalizerOperator),
                executor.shared_operator("stats", StatisticsOperator),
                executor.shared_operator("entities", EntityTaggingOperator),
            ]
        for index in range(plans):
            engine = EnBlogue(live_config(
                name=f"plan-{index}", top_k=10,
                predictor="ewma" if index % 2 == 0 else "moving_average"))
            engines.append(engine)
            operators = upstream if shared else [
                TagNormalizerOperator(), StatisticsOperator(), EntityTaggingOperator(),
            ]
            executor.register(QueryPlan(f"plan-{index}", source, operators,
                                        engine.as_sink()))
        executor.run()
        return engines

    engines = benchmark.pedantic(replay, rounds=2, iterations=1)
    assert all(engine.documents_processed == len(small_tweets) for engine in engines)


def test_exact_vs_sketch_counting(benchmark, small_tweets):
    """Windowed tag counting: exact TagFrequencyWindow vs. Count-Min panes."""

    def count_with_both():
        exact = TagFrequencyWindow(24 * HOUR)
        sketch = WindowedCountMinSketch(horizon=24 * HOUR, panes=8, width=512, depth=4)
        for document in small_tweets:
            exact.add_document(document.timestamp, document.tags)
            for tag in document.tags:
                sketch.add(document.timestamp, tag)
        return exact, sketch

    exact, sketch = benchmark.pedantic(count_with_both, rounds=1, iterations=1)

    rows = []
    overestimates = []
    for tag, true_count in exact.top_tags(10):
        estimate = sketch.estimate(tag)
        overestimates.append(estimate - true_count)
        rows.append({"tag": tag, "exact": true_count, "count-min": estimate,
                     "overestimate": estimate - true_count})
    print()
    print(format_table(rows, title="PERF-1 — exact vs. Count-Min windowed counts "
                                   "(top-10 tags, last 24h)"))
    # The sketch never undercounts and stays close on the heavy hitters.
    assert all(delta >= 0 for delta in overestimates)
    assert max(overestimates) <= 0.2 * max(count for _, count in exact.top_tags(1))
