"""SC-1: Show case 1 — revisiting historic events on the NYT-style archive.

The demo replays the annotated New York Times archive and shows how
enBlogue ranks emergent topics within pre-selected categories (US
elections, hurricanes, sport events) and for user-chosen time ranges.  The
benchmark replays the synthetic archive, prints the detection table for the
scripted historic events, the per-category rankings, and the effect of
narrowing the time range.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import DAY, archive_config
from repro.core.engine import EnBlogue
from repro.core.types import TagPair
from repro.datasets.nyt import nyt_vocabulary
from repro.evaluation.ground_truth import GroundTruthMatcher
from repro.evaluation.harness import run_detector
from repro.evaluation.metrics import RankingComparison
from repro.evaluation.reporting import format_table


def replay_archive(corpus):
    engine = EnBlogue(archive_config())
    run = run_detector(engine, corpus, name="enblogue")
    return engine, run


def test_showcase1_historic_events(benchmark, nyt_archive):
    corpus, schedule = nyt_archive
    engine, run = benchmark.pedantic(replay_archive, args=(corpus,),
                                     rounds=1, iterations=1)

    matcher = GroundTruthMatcher(schedule, k=10)
    outcomes = matcher.outcomes(run.rankings)

    rows = []
    for outcome in outcomes:
        rows.append({
            "event": outcome.event.name,
            "category": outcome.event.category,
            "pair": str(TagPair.from_tuple(outcome.event.pair)),
            "onset (day)": round(outcome.event.start / DAY, 1),
            "detected": "yes" if outcome.detected else "no",
            "latency (days)": (round(outcome.latency / DAY, 1)
                               if outcome.latency is not None else None),
            "best rank": outcome.best_rank,
        })
    print()
    print(format_table(rows, title="Show case 1 — scripted historic events"))
    print(f"\nrecall@10 = {matcher.recall(run.rankings):.2f}, "
          f"precision@10 during events = {matcher.precision(run.rankings):.2f}, "
          f"documents = {run.documents}, throughput = {run.throughput:.0f} docs/s")

    # Per-category view: the demo pre-selects categories like hurricanes.
    vocabulary = nyt_vocabulary()
    final = run.final_ranking()
    category_rows = []
    for category in ("us elections", "hurricanes", "sports"):
        tags = set(vocabulary.tags(category))
        matching = [t for t in final if set(t.pair.as_tuple()) & tags]
        category_rows.append({
            "category": category,
            "topics in final top-10": len(matching),
            "best": str(matching[0].pair) if matching else None,
        })
    print()
    print(format_table(category_rows, title="Final ranking sliced by category"))

    # Time-range view: users can specify their own time ranges.
    start, end = corpus.time_range()
    midpoint = (start + end) / 2
    first_half = EnBlogue(archive_config(name="first-half"))
    first_half.process_many(corpus.between(start, midpoint))
    second_half = EnBlogue(archive_config(name="second-half"))
    second_half.process_many(corpus.between(midpoint + 1, end))
    comparison = RankingComparison.compare(
        first_half.evaluate_now(), second_half.evaluate_now(), k=10)
    print(f"\ntop-10 overlap between first and second archive half: "
          f"{comparison.overlap:.2f}")

    # -- shape assertions -------------------------------------------------------
    assert matcher.recall(run.rankings) >= 0.6
    assert any(outcome.detected and outcome.latency <= 7 * DAY for outcome in outcomes)
    assert comparison.overlap < 1.0
