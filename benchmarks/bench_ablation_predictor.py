"""ABL-1b: ablation of the shift predictor (stage iii design choice).

"We say that a shift is sudden if it cannot be predicted using the previous
correlation values."  Which predictor supplies that expectation is a design
choice; the benchmark compares the implemented ones on the same workload.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import HOUR, live_config
from repro.core.engine import EnBlogue
from repro.datasets.synthetic import correlation_shift_stream
from repro.evaluation.harness import run_experiment
from repro.evaluation.reporting import format_table
from repro.timeseries.predictors import available_predictors


@pytest.fixture(scope="module")
def shift_workload():
    return correlation_shift_stream(num_events=4, num_steps=72, shift_start=40, seed=23)


def test_ablation_predictors(benchmark, shift_workload):
    corpus, schedule = shift_workload

    def run_all():
        results = {}
        for predictor in available_predictors():
            engine = EnBlogue(live_config(
                predictor=predictor, min_pair_support=2, min_history=3,
                predictor_window=5, name=predictor))
            results[predictor] = run_experiment(engine, corpus, schedule,
                                                name=predictor, k=10)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for predictor, result in results.items():
        summary = result.summary()
        rows.append({
            "predictor": predictor,
            "recall@10": summary["recall"],
            "precision@10": summary["precision"],
            "mean latency (h)": (round(summary["mean_latency"] / HOUR, 1)
                                 if summary["mean_latency"] is not None else None),
        })
    print()
    print(format_table(rows, title="ABL-1b — shift predictor ablation"))

    assert set(results) == set(available_predictors())
    # The smoothing predictors used by the presets detect the shifts.
    assert results["moving_average"].recall >= 0.75
    assert results["ewma"].recall >= 0.75
