"""A faithful replica of the seed revision's single-document hot path.

The batched, index-backed pipeline refactor is behaviour-preserving, so the
only honest way to benchmark it is against what the code did before: one
document at a time through the engine, per-pair counters updated pair by
pair, candidate generation as a full scan over every windowed pair, and
correlation histories trimmed by rebuilding the whole series.  This module
reconstructs that hot path on top of the current data structures (the
surrounding stages — seed selection, correlation measures, ranking — are
unchanged and shared).

``SeedPathEngine`` must produce *identical* rankings to the current engine
on the same stream; ``bench_throughput.py`` asserts this before timing
anything, so the comparison can never silently drift apart from the real
pipeline.
"""

from __future__ import annotations

from repro.core.correlation import PairCounts
from repro.core.engine import EnBlogue
from repro.core.shift import ShiftScore
from repro.core.tracker import CorrelationTracker, PairObservation
from repro.core.types import TagPair
from repro.windows.decay import DecayedMaximum
from repro.windows.timeseries import TimeSeries


class SeedPathTracker(CorrelationTracker):
    """Seed-revision tracker: per-document counters, full-scan candidates."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # The seed revision kept one flat Counter of windowed pair counts.
        from collections import Counter
        self._seed_pair_counts = Counter()

    def observe(self, timestamp, tags, entities=()):
        if self._latest is not None and timestamp < self._latest:
            raise ValueError(
                f"out-of-order document: {timestamp} < {self._latest}"
            )
        effective = set(tags)
        if self.use_entities:
            effective |= {entity.lower() for entity in entities}
        effective = {tag for tag in effective if tag}
        self._tag_window.add_document(timestamp, effective)
        ordered = sorted(effective)
        pairs = tuple(
            TagPair(ordered[i], ordered[j])
            for i in range(len(ordered))
            for j in range(i + 1, len(ordered))
        )
        self._pair_events.append((timestamp, pairs))
        counts = self._seed_pair_counts
        for pair in pairs:
            counts[pair] += 1
        self._documents_seen += 1
        self._latest = timestamp
        self._seed_evict(timestamp)

    def _seed_evict(self, now):
        cutoff = now - self.window_horizon
        counts = self._seed_pair_counts
        while self._pair_events and self._pair_events[0][0] <= cutoff:
            _, pairs = self._pair_events.popleft()
            for pair in pairs:
                counts[pair] -= 1
                if counts[pair] <= 0:
                    del counts[pair]

    def advance_to(self, timestamp):
        self._tag_window.advance_to(timestamp)
        self._latest = timestamp
        self._seed_evict(timestamp)

    def candidate_pairs(self, seeds):
        seed_set = set(seeds)
        if not seed_set:
            return []
        candidates = []
        for pair, count in self._seed_pair_counts.items():
            if count < self.min_pair_support:
                continue
            if pair.first in seed_set:
                candidates.append((pair, pair.first))
            elif pair.second in seed_set:
                candidates.append((pair, pair.second))
        candidates.sort(key=lambda item: item[0])
        return candidates

    def evaluate(self, timestamp, seeds):
        self.advance_to(timestamp)
        self._record_count_history()
        observations = []
        for pair, seed_tag in self.candidate_pairs(seeds):
            counts = PairCounts(
                count_a=self.tag_count(pair.first),
                count_b=self.tag_count(pair.second),
                count_both=self._seed_pair_counts.get(pair, 0),
                total_documents=self.document_count(),
            )
            value = max(0.0, self.measure.value(counts, None, None))
            history = self._histories.setdefault(pair, TimeSeries())
            history.append(timestamp, value)
            # Seed-revision trimming: rebuild the whole series.
            if len(history) > self.history_length:
                trimmed = TimeSeries()
                for point_ts, point_value in list(history)[-self.history_length:]:
                    trimmed.append(point_ts, point_value)
                self._histories[pair] = trimmed
            observations.append(PairObservation(
                pair=pair, timestamp=timestamp, correlation=value,
                counts=counts, seed_tag=seed_tag,
            ))
        return observations


class SeedPathEngine(EnBlogue):
    """Seed-revision engine loop: one document at a time, no batching."""

    def __init__(self, config):
        super().__init__(config)
        self.tracker = SeedPathTracker(
            window_horizon=config.window_horizon,
            measure=self.tracker.measure,
            min_pair_support=config.min_pair_support,
            history_length=config.history_length,
            use_entities=config.use_entities,
        )

    def process(self, document):
        timestamp = float(getattr(document, "timestamp"))
        tags = [str(tag).lower() for tag in getattr(document, "tags", ()) or ()]
        entities = list(getattr(document, "entities", ()) or ())
        if self._next_evaluation is None:
            self._next_evaluation = timestamp + self.config.evaluation_interval
        ranking = None
        while timestamp >= self._next_evaluation:
            ranking = self._seed_evaluate(self._next_evaluation)
            self._next_evaluation += self.config.evaluation_interval
        self.tracker.observe(timestamp, tags, entities)
        self._documents_processed += 1
        return ranking

    def _seed_evaluate(self, timestamp):
        window = self.tracker.tag_window
        self._current_seeds = self.seed_selector.select(
            window, history=self.tracker.count_history()
        )
        observations = self.tracker.evaluate(timestamp, self._current_seeds)
        shift_scores = []
        for observation in observations:
            # Seed-revision detector usage: the predictor runs twice (once
            # for the forecast, once inside the error) over copied histories.
            history = list(self.tracker.history(observation.pair).values)
            previous = history[:-1]
            predicted = self.detector.predict(previous)
            error = self.detector.prediction_error(previous, observation.correlation)
            score_tracker = self.detector._scores.setdefault(
                observation.pair, DecayedMaximum(self.detector.decay)
            )
            score = score_tracker.update(observation.timestamp, error)
            shift_scores.append(ShiftScore(
                pair=observation.pair, timestamp=observation.timestamp,
                correlation=observation.correlation, predicted=predicted,
                error=error, score=score, seed_tag=observation.seed_tag,
            ))
        ranking = self.ranking_builder.build(
            timestamp, shift_scores, detector=self.detector,
            label=self.config.name,
        )
        self._rankings.append(ranking)
        for listener in self._listeners:
            listener(ranking)
        return ranking
