"""SC-3: Show case 3 — personalization.

The demo registers user profiles (continuous keyword queries or pre-defined
topic categories) and shows that each user is "presented with a list
containing completely different or just differently ordered emergent
topics".  The benchmark replays the live stream once, personalizes the
final ranking for three different profiles and quantifies how much the
lists differ (overlap and Kendall tau against the global ranking).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import live_config
from repro.core.engine import EnBlogue
from repro.core.personalization import UserProfile
from repro.datasets.twitter import twitter_vocabulary
from repro.evaluation.metrics import RankingComparison, kendall_tau
from repro.evaluation.reporting import format_table

PROFILES = [
    UserProfile(
        user_id="database-researcher",
        keywords=("sigmod", "databases", "datascience", "athens"),
        boost=4.0,
    ),
    UserProfile(
        user_id="traveller",
        keywords=("travel", "iceland", "europe"),
        boost=4.0,
    ),
    UserProfile(
        user_id="sports-only",
        categories=("sports",),
        category_tags={"sports": tuple(twitter_vocabulary().tags("sports"))},
        boost=2.0,
        filter_only=True,
    ),
]


def replay_with_profiles(tweets):
    engine = EnBlogue(live_config(top_k=15, name="personalized"))
    for profile in PROFILES:
        engine.register_user(profile)
    engine.process_many(tweets)
    engine.evaluate_now()
    return engine


def test_showcase3_personalization(benchmark, tweet_stream):
    tweets, _ = tweet_stream
    engine = benchmark.pedantic(replay_with_profiles, args=(tweets,),
                                rounds=1, iterations=1)

    global_ranking = engine.current_ranking()
    print()
    print(global_ranking.describe(k=5))

    rows = []
    views = {}
    for profile in PROFILES:
        personalized = engine.ranking_for_user(profile.user_id, top_k=10)
        views[profile.user_id] = personalized
        comparison = RankingComparison.compare(global_ranking, personalized, k=10)
        rows.append({
            "user": profile.user_id,
            "profile": ", ".join(profile.keywords or profile.categories),
            "top-1": str(personalized[0].pair) if len(personalized) else None,
            "topics": len(personalized),
            "overlap vs global": round(comparison.overlap, 2),
            "kendall tau vs global": round(comparison.tau, 2),
        })
    print()
    print(format_table(rows, title="Show case 3 — personalized rankings per user"))

    for user_id, view in views.items():
        print()
        print(view.describe(k=5))

    # -- shape assertions ---------------------------------------------------------
    researcher = views["database-researcher"]
    traveller = views["traveller"]
    sports = views["sports-only"]
    # Different profiles produce different orderings (or different lists).
    assert researcher.pairs() != traveller.pairs()
    # The filter-only profile restricts the list to matching topics.
    assert len(sports) <= len(global_ranking)
    allowed = set(twitter_vocabulary().tags("sports"))
    for topic in sports:
        assert set(topic.pair.as_tuple()) & allowed
    # Re-ranking keeps the same topic pool for boosting profiles: every
    # personalized pair exists in the global ranking.
    assert set(researcher.pairs()) <= set(global_ranking.pairs())
