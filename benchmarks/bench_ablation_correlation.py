"""ABL-1a: ablation of the correlation measure (stage ii design choice).

The paper notes "there are multiple ways how to calculate a correlation
measure that reflects some notion of interestingness".  The benchmark runs
the same replay with each implemented measure and reports recall, precision
and detection latency on the Figure-1-style workload.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import HOUR, live_config
from repro.core.correlation import available_measures
from repro.core.engine import EnBlogue
from repro.datasets.synthetic import correlation_shift_stream
from repro.evaluation.harness import run_experiment
from repro.evaluation.reporting import format_table


@pytest.fixture(scope="module")
def shift_workload():
    return correlation_shift_stream(num_events=4, num_steps=72, shift_start=40, seed=17)


def run_with_measure(corpus, schedule, measure):
    engine = EnBlogue(live_config(
        correlation_measure=measure, min_pair_support=2, min_history=3,
        predictor="moving_average", predictor_window=5, name=measure))
    return run_experiment(engine, corpus, schedule, name=measure, k=10)


def test_ablation_correlation_measures(benchmark, shift_workload):
    corpus, schedule = shift_workload

    def run_all():
        return {
            measure: run_with_measure(corpus, schedule, measure)
            for measure in available_measures()
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for measure, result in results.items():
        summary = result.summary()
        rows.append({
            "measure": measure,
            "recall@10": summary["recall"],
            "precision@10": summary["precision"],
            "mean latency (h)": (round(summary["mean_latency"] / HOUR, 1)
                                 if summary["mean_latency"] is not None else None),
        })
    print()
    print(format_table(rows, title="ABL-1a — correlation measure ablation"))

    # Every measure is exercised; the set-overlap measures (the paper's
    # default family) find the injected shifts.
    assert set(results) == set(available_measures())
    assert results["jaccard"].recall >= 0.75
    assert results["cosine"].recall >= 0.75
