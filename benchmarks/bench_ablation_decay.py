"""ABL-1d: ablation of the exponential-decay half-life (stage iii).

The paper dampens past prediction errors "using an exponential decline
factor with a half life of approximately 2 days".  The benchmark sweeps the
half-life and reports how long a detected topic stays in the top-k after its
shift ends (persistence) and whether detection quality changes, exposing the
trade-off the two-day default strikes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import DAY, HOUR, live_config
from repro.core.engine import EnBlogue
from repro.core.types import TagPair
from repro.datasets.synthetic import correlation_shift_stream
from repro.evaluation.harness import run_detector, score_run
from repro.evaluation.reporting import format_table

HALF_LIVES = {
    "6 hours": 6 * HOUR,
    "1 day": 1 * DAY,
    "2 days (paper)": 2 * DAY,
    "7 days": 7 * DAY,
}


@pytest.fixture(scope="module")
def shift_workload():
    # Shifts end well before the stream does, so persistence is observable.
    return correlation_shift_stream(num_events=3, num_steps=96, shift_start=30,
                                    shift_length=12, seed=37)


def persistence_steps(rankings, pair, end_time):
    """Evaluations after the event end during which the pair stays in the top-k."""
    count = 0
    for ranking in rankings:
        if ranking.timestamp <= end_time:
            continue
        if ranking.contains_pair(pair):
            count += 1
    return count


def test_ablation_decay_half_life(benchmark, shift_workload):
    corpus, schedule = shift_workload

    def run_all():
        results = {}
        for label, half_life in HALF_LIVES.items():
            engine = EnBlogue(live_config(
                decay_half_life=half_life, min_pair_support=2, min_history=3,
                predictor="moving_average", predictor_window=5, name=label))
            run = run_detector(engine, corpus, name=label)
            results[label] = (engine, run, score_run(run, schedule, k=10))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    event = schedule.events()[0]
    pair = TagPair.from_tuple(event.pair)
    rows = []
    final_scores = {}
    for label, (engine, run, scored) in results.items():
        stays = persistence_steps(run.rankings, pair, event.end)
        final_scores[label] = engine.topic_score(*event.pair)
        summary = scored.summary()
        rows.append({
            "half-life": label,
            "recall@10": summary["recall"],
            "precision@10": summary["precision"],
            "evaluations event #0 stays in top-10 after its end": stays,
            "score of event #0 at end of replay": round(final_scores[label], 4),
        })
    print()
    print(format_table(rows, title="ABL-1d — decay half-life ablation"))

    # A longer half-life retains more of a finished topic's score: the final
    # decayed score of event #0 is monotone in the half-life.
    ordered = [final_scores[label] for label in HALF_LIVES]
    assert all(a <= b + 1e-9 for a, b in zip(ordered, ordered[1:]))
    # The paper's two-day default still detects every event.
    assert results["2 days (paper)"][2].recall >= 0.75
