"""SC-2: Show case 2 — live data with the audience-injected SIGMOD topic.

The demo consumes live Twitter and RSS streams, offers a time-lapse view
over the past couple of days, and invites the audience to push a
"SIGMOD + Athens" topic into the ranking.  The benchmark replays the
synthetic tweet stream merged with the synthetic RSS feeds through the
stream engine and the portal, prints how the ranking evolves, and tracks
the rank trajectory of the injected SIGMOD/Athens topic.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import HOUR, live_config
from repro.core.engine import EnBlogue
from repro.core.types import TagPair
from repro.datasets.rss import RssFeedGenerator
from repro.evaluation.ground_truth import GroundTruthMatcher
from repro.evaluation.reporting import format_series, format_table
from repro.portal.server import Portal
from repro.streams.operators import TagNormalizerOperator
from repro.streams.plan import PlanExecutor, QueryPlan
from repro.streams.sources import DocumentStreamSource, MergedSource


def replay_live(tweets):
    """Merge tweets + RSS feeds and push them through engine + portal."""
    feeds = RssFeedGenerator(hours=72, posts_per_hour=5, seed=37).generate_all()
    sources = [DocumentStreamSource(tweets, source_name="twitter")]
    for name, corpus in feeds.items():
        sources.append(DocumentStreamSource(corpus, source_name=name))
    merged = MergedSource(sources, name="live-feeds")

    engine = EnBlogue(live_config(name="live"))
    portal = Portal(engine)
    session = portal.connect("demo-browser")

    executor = PlanExecutor()
    executor.register(QueryPlan(
        "live-monitoring", merged, [TagNormalizerOperator()], engine.as_sink()))
    executor.run()
    engine.evaluate_now()
    return engine, portal, session


def test_showcase2_live_monitoring(benchmark, tweet_stream):
    tweets, schedule = tweet_stream
    engine, portal, session = benchmark.pedantic(
        replay_live, args=(tweets,), rounds=1, iterations=1)

    rankings = engine.ranking_history()
    sigmod = next(e for e in schedule if e.name == "sigmod-athens")
    pair = TagPair.from_tuple(sigmod.pair)

    # Rank trajectory of the injected topic (the audience experiment).
    trajectory = []
    for ranking in rankings:
        position = ranking.position_of(pair)
        trajectory.append(float(position) if position is not None else float("nan"))
    hours = [round(r.timestamp / HOUR, 1) for r in rankings]
    print()
    print(format_series(
        {"rank of (athens, sigmod)": [
            t if t == t else -1.0 for t in trajectory]},  # NaN -> -1 (absent)
        x_values=hours,
        title="Show case 2 — rank of the injected SIGMOD/Athens topic "
              "(-1 = not in ranking, x = hours)",
        precision=0,
    ))

    # Snapshot rankings at a few points of the time-lapse view.
    rows = []
    for fraction in (0.25, 0.5, 0.75, 1.0):
        ranking = rankings[min(len(rankings) - 1, int(fraction * len(rankings)) - 1)]
        rows.append({
            "hour": round(ranking.timestamp / HOUR, 1),
            "top-1": str(ranking[0].pair) if len(ranking) > 0 else None,
            "top-2": str(ranking[1].pair) if len(ranking) > 1 else None,
            "top-3": str(ranking[2].pair) if len(ranking) > 2 else None,
        })
    print()
    print(format_table(rows, title="Time-lapse view of the evolving ranking"))

    status = portal.status()
    print(f"\nportal: {status['messages_published']} ranking updates pushed to "
          f"{status['sessions']} session(s) without polling "
          f"({len(session.messages())} received by the demo browser)")

    # -- shape assertions -----------------------------------------------------------
    matcher = GroundTruthMatcher(schedule, k=10)
    outcomes = {o.event.name: o for o in matcher.outcomes(rankings)}
    assert outcomes["sigmod-athens"].detected
    assert outcomes["sigmod-athens"].latency <= 12 * HOUR
    best_rank = outcomes["sigmod-athens"].best_rank
    assert best_rank is not None and best_rank < 5
    # The push layer delivered every ranking to the connected session.
    assert len(session.messages()) == len(rankings)
