"""ABL-1c: ablation of the seed-tag criterion (stage i design choice).

"Seed tags can be determined based on different criteria, such as popularity
and volatility.  We choose seed tags to be popular tags."  The benchmark
compares popularity, volatility and the hybrid criterion, and also sweeps
the number of seeds, since fewer seeds means fewer candidate pairs (the
efficiency/recall trade-off stage (i) exists to manage).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import HOUR, live_config
from repro.core.engine import EnBlogue
from repro.datasets.synthetic import correlation_shift_stream
from repro.evaluation.harness import run_experiment
from repro.evaluation.reporting import format_table


@pytest.fixture(scope="module")
def shift_workload():
    return correlation_shift_stream(num_events=4, num_steps=72, shift_start=40, seed=31)


def test_ablation_seed_criterion(benchmark, shift_workload):
    corpus, schedule = shift_workload

    def run_all():
        results = {}
        for criterion in ("popularity", "volatility", "hybrid"):
            engine = EnBlogue(live_config(
                seed_criterion=criterion, min_pair_support=2, min_history=3,
                predictor="moving_average", predictor_window=5, name=criterion))
            results[criterion] = run_experiment(engine, corpus, schedule,
                                                name=criterion, k=10)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for criterion, result in results.items():
        summary = result.summary()
        rows.append({
            "seed criterion": criterion,
            "recall@10": summary["recall"],
            "precision@10": summary["precision"],
            "mean latency (h)": (round(summary["mean_latency"] / HOUR, 1)
                                 if summary["mean_latency"] is not None else None),
        })
    print()
    print(format_table(rows, title="ABL-1c — seed criterion ablation"))

    # The paper's choice (popularity) detects the shifts: every event pair
    # contains one steadily popular tag, which is exactly the rationale.
    assert results["popularity"].recall >= 0.75


def test_ablation_number_of_seeds(benchmark, shift_workload):
    corpus, schedule = shift_workload

    def run_all():
        results = {}
        for num_seeds in (5, 10, 20, 40):
            engine = EnBlogue(live_config(
                num_seeds=num_seeds, min_pair_support=2, min_history=3,
                predictor="moving_average", predictor_window=5,
                name=f"seeds-{num_seeds}"))
            results[num_seeds] = run_experiment(engine, corpus, schedule,
                                                name=f"seeds-{num_seeds}", k=10)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for num_seeds, result in sorted(results.items()):
        summary = result.summary()
        rows.append({
            "num_seeds": num_seeds,
            "recall@10": summary["recall"],
            "precision@10": summary["precision"],
            "docs/s": summary["throughput_docs_per_s"],
        })
    print()
    print(format_table(rows, title="ABL-1c — number of seed tags"))

    # Moderate seed counts detect the events; the table exposes the trade-off
    # that more seeds admit more candidate pairs (more noise in the top-k and
    # more work per evaluation) without improving recall on this workload.
    assert results[10].recall >= 0.75
    assert results[20].recall >= 0.75
    assert all(result.recall >= 0.5 for result in results.values())
