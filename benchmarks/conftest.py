"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one artefact of the paper (Figure 1, one of the
three demonstration show cases, the related-work contrast, the engine
throughput claims, or an ablation of a design choice) and prints the
corresponding rows/series.  Run with ``pytest benchmarks/ --benchmark-only``;
add ``-s`` to see the printed tables.
"""

from __future__ import annotations

import pytest

from repro.core.config import EnBlogueConfig
from repro.datasets.nyt import NytArchiveGenerator
from repro.datasets.twitter import TweetStreamGenerator

HOUR = 3600.0
DAY = 86400.0


def archive_config(**overrides) -> EnBlogueConfig:
    """Daily-granularity configuration used for the NYT-style archive."""
    defaults = dict(
        window_horizon=7 * DAY, evaluation_interval=DAY,
        num_seeds=20, min_seed_count=2, min_pair_support=2, min_history=3,
        predictor="moving_average", predictor_window=5,
        decay_half_life=2 * DAY, top_k=10, name="nyt-archive",
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


def live_config(**overrides) -> EnBlogueConfig:
    """Hourly-granularity configuration used for tweet/RSS streams."""
    defaults = dict(
        window_horizon=24 * HOUR, evaluation_interval=HOUR,
        num_seeds=20, min_seed_count=1, min_pair_support=1, min_history=2,
        predictor="ewma", decay_half_life=2 * DAY, top_k=10, name="live",
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


@pytest.fixture(scope="session")
def nyt_archive():
    """A compressed NYT-style archive shared by the archive benchmarks."""
    return NytArchiveGenerator(years=0.5, articles_per_day=16, seed=19).generate()


@pytest.fixture(scope="session")
def tweet_stream():
    """A three-day synthetic tweet stream shared by the live benchmarks."""
    return TweetStreamGenerator(hours=72, tweets_per_hour=40, seed=29).generate()
