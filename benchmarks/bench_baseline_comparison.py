"""CMP-1: enBlogue vs. burst detection vs. popularity ranking.

Sections 2 and 3 of the paper contrast shift detection with TwitterMonitor's
bursty-keyword approach: "unlike looking solely for bursty tags, we detect
shifts in tag correlations as they dynamically arise" — and with plain
popularity: "spotting such trends is very different from identifying popular
topics".  The benchmark runs all three detectors over two workloads:

* the frequency-conserving correlation-shift stream, where only enBlogue
  should score (no tag ever bursts, the shifting pairs never become the most
  popular pairs), and
* the NYT-style archive, whose scripted events are bursty as well as
  correlated, so the burst baseline catches up — showing the advantage is
  specific to non-bursty shifts rather than a blanket win.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import DAY, HOUR, archive_config, live_config
from repro.baselines.popularity import PopularityBaseline
from repro.baselines.twitter_monitor import TwitterMonitorBaseline
from repro.core.engine import EnBlogue
from repro.datasets.synthetic import correlation_shift_stream
from repro.evaluation.harness import run_experiment
from repro.evaluation.reporting import format_table


def build_detectors(window, interval):
    return {
        "enblogue": EnBlogue(live_config(
            window_horizon=window, evaluation_interval=interval,
            min_pair_support=2, min_history=3,
            predictor="moving_average", predictor_window=5, name="enblogue")),
        "twitter-monitor": TwitterMonitorBaseline(
            window_horizon=window, evaluation_interval=interval, top_k=10),
        "popularity": PopularityBaseline(
            window_horizon=window, evaluation_interval=interval, top_k=10),
    }


def compare_on(corpus, schedule, window, interval):
    results = {}
    for name, detector in build_detectors(window, interval).items():
        results[name] = run_experiment(detector, corpus, schedule, name=name, k=10)
    return results


def summarise(results, unit):
    rows = []
    for name, result in results.items():
        summary = result.summary()
        latency = summary["mean_latency"]
        rows.append({
            "detector": name,
            "recall@10": summary["recall"],
            "precision@10": summary["precision"],
            f"mean latency ({unit})": (round(latency / (DAY if unit == 'days' else HOUR), 1)
                                       if latency is not None else None),
            "docs/s": summary["throughput_docs_per_s"],
        })
    return rows


def test_baseline_comparison_on_pure_correlation_shifts(benchmark):
    corpus, schedule = correlation_shift_stream(
        num_events=4, num_steps=72, shift_start=40, seed=17)
    results = benchmark.pedantic(
        compare_on, args=(corpus, schedule, 24 * HOUR, HOUR), rounds=1, iterations=1)

    print()
    print(format_table(
        summarise(results, "hours"),
        title="CMP-1a — non-bursty correlation shifts "
              "(constant per-tag frequencies)"))

    enblogue = results["enblogue"]
    monitor = results["twitter-monitor"]
    popularity = results["popularity"]
    # The paper's qualitative claim: correlation shifts without bursts are
    # found by enBlogue and missed by both baselines.
    assert enblogue.recall >= 0.75
    assert monitor.recall <= 0.25
    assert popularity.recall <= 0.25
    assert enblogue.recall > monitor.recall
    assert enblogue.recall > popularity.recall


def test_baseline_comparison_on_bursty_archive_events(benchmark, nyt_archive):
    corpus, schedule = nyt_archive

    def run_all():
        results = {}
        for name, detector in {
            "enblogue": EnBlogue(archive_config()),
            "twitter-monitor": TwitterMonitorBaseline(
                window_horizon=7 * DAY, evaluation_interval=DAY, top_k=10),
            "popularity": PopularityBaseline(
                window_horizon=7 * DAY, evaluation_interval=DAY, top_k=10),
        }.items():
            results[name] = run_experiment(detector, corpus, schedule, name=name, k=10)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(format_table(
        summarise(results, "days"),
        title="CMP-1b — bursty archive events (NYT-style, injected documents)"))

    # Bursty events are found by enBlogue and by the burst baseline alike.
    assert results["enblogue"].recall >= 0.75
    assert results["twitter-monitor"].recall >= 0.5
