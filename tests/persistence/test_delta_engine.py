"""Engine-level delta checkpointing: chains, guards, bit-identical resume.

The contract under test is two-layered: ``delta_since`` folded onto the
base snapshot reproduces ``snapshot()`` exactly (the dict-level
equivalence the store's reader relies on), and a base + journal directory
resumes into a continuation bit-identical to an uninterrupted run — for
the single engine and for the sharded one on both backends, including a
restore into a different shard count.
"""

import pytest

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.datasets.documents import Document
from repro.persistence import load_engine, read_checkpoint
from repro.persistence.snapshot import SnapshotMismatchError
from repro.sharding import ProcessBackend, ShardedEnBlogue


def config(**overrides):
    base = EnBlogueConfig(
        window_horizon=100.0,
        evaluation_interval=25.0,
        num_seeds=6,
        min_seed_count=1,
        min_pair_support=1,
        min_history=2,
        predictor="moving_average",
        predictor_window=3,
        history_length=6,
    )
    return base.with_overrides(**overrides) if overrides else base


def stream(count=240, seed=11):
    import random

    rng = random.Random(seed)
    tags = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]
    docs = []
    timestamp = 0.0
    for index in range(count):
        timestamp += rng.random() * 3.0
        docs.append(Document(
            timestamp=timestamp,
            doc_id=f"doc-{index}",
            tags=frozenset(rng.sample(tags, rng.randint(0, 4))),
        ))
    return docs


def signature(engine):
    return [
        (ranking.timestamp, ranking.topics)
        for ranking in engine.ranking_history()
    ]


@pytest.fixture(scope="module")
def docs():
    return stream()


@pytest.fixture(scope="module")
def reference(docs):
    engine = EnBlogue(config())
    engine.process_many(docs)
    return signature(engine)


def drive_chain(engine, docs, directory, cuts):
    """Base at ``cuts[0]``, one journal segment per further cut."""
    engine.process_many(docs[: cuts[0]])
    engine.save_checkpoint(directory, track_deltas=True)
    for previous, cut in zip(cuts, cuts[1:]):
        engine.process_many(docs[previous:cut])
        engine.save_delta_checkpoint(directory)
    return cuts[-1]


class TestSingleEngineChain:
    CUTS = (60, 100, 150, 180)

    def test_merged_state_equals_live_snapshot(self, docs, tmp_path):
        engine = EnBlogue(config())
        drive_chain(engine, docs, tmp_path, self.CUTS)
        _, merged = read_checkpoint(tmp_path)
        assert merged == engine.snapshot()

    def test_resume_continue_bit_identical(self, docs, reference, tmp_path):
        engine = EnBlogue(config())
        cut = drive_chain(engine, docs, tmp_path, self.CUTS)
        resumed, _ = load_engine(tmp_path)
        resumed.process_many(docs[cut:])
        assert signature(resumed) == reference

    def test_empty_delta_tick_round_trips(self, docs, tmp_path):
        # A cadence tick with no new documents writes a (tiny) segment
        # that must still fold cleanly.
        engine = EnBlogue(config())
        engine.process_many(docs[:60])
        engine.save_checkpoint(tmp_path, track_deltas=True)
        engine.save_delta_checkpoint(tmp_path)
        _, merged = read_checkpoint(tmp_path)
        assert merged == engine.snapshot()

    def test_policy_mutation_mid_chain_survives(self, docs, tmp_path):
        # min_pair_support and the ranking policy are mutable between
        # evaluations; the journal must carry the latest values.
        engine = EnBlogue(config())
        engine.process_many(docs[:60])
        engine.save_checkpoint(tmp_path, track_deltas=True)
        engine.tracker.min_pair_support = 3
        engine.ranking_builder.top_k = 5
        engine.process_many(docs[60:100])
        engine.save_delta_checkpoint(tmp_path)
        _, merged = read_checkpoint(tmp_path)
        assert merged == engine.snapshot()
        resumed, _ = load_engine(tmp_path)
        assert resumed.tracker.min_pair_support == 3
        assert resumed.ranking_builder.top_k == 5


class TestChainGuards:
    def test_delta_without_baseline_rejected(self, docs, tmp_path):
        engine = EnBlogue(config())
        engine.process_many(docs[:40])
        with pytest.raises(SnapshotMismatchError, match="baseline"):
            engine.save_delta_checkpoint(tmp_path)

    def test_delta_into_a_different_directory_rejected(self, docs, tmp_path):
        engine = EnBlogue(config())
        engine.process_many(docs[:40])
        engine.save_checkpoint(tmp_path / "a", track_deltas=True)
        with pytest.raises(SnapshotMismatchError, match="base chain"):
            engine.save_delta_checkpoint(tmp_path / "b")

    def test_full_save_without_tracking_ends_the_chain(self, docs, tmp_path):
        engine = EnBlogue(config())
        engine.process_many(docs[:40])
        engine.save_checkpoint(tmp_path, track_deltas=True)
        engine.save_checkpoint(tmp_path)
        with pytest.raises(SnapshotMismatchError, match="baseline"):
            engine.save_delta_checkpoint(tmp_path)

    def test_restore_invalidates_the_chain(self, docs, tmp_path):
        engine = EnBlogue(config())
        engine.process_many(docs[:40])
        engine.save_checkpoint(tmp_path, track_deltas=True)
        engine.restore(engine.snapshot())
        with pytest.raises(SnapshotMismatchError, match="baseline"):
            engine.save_delta_checkpoint(tmp_path)

    def test_detector_reset_rejected_while_recording(self, docs, tmp_path):
        engine = EnBlogue(config())
        engine.process_many(docs[:40])
        engine.save_checkpoint(tmp_path, track_deltas=True)
        with pytest.raises(RuntimeError, match="re-base"):
            engine.detector.reset()

    def test_failed_append_disarms_the_chain(self, docs, tmp_path):
        # save_delta_checkpoint drains the component buffers before the
        # store write; if the write then fails, that tick can never be
        # re-journaled, so the chain must disarm — a blind retry would
        # commit a segment with a silent hole.
        import repro.persistence.snapshot as snapshot_module

        engine = EnBlogue(config())
        engine.process_many(docs[:40])
        engine.save_checkpoint(tmp_path, track_deltas=True)
        engine.process_many(docs[40:60])
        (tmp_path / "MANIFEST.json").unlink()   # make the append fail
        with pytest.raises(snapshot_module.SnapshotError):
            engine.save_delta_checkpoint(tmp_path)
        with pytest.raises(SnapshotMismatchError, match="baseline"):
            engine.save_delta_checkpoint(tmp_path)
        # Re-basing with a full checkpoint recovers cleanly.
        engine.save_checkpoint(tmp_path, track_deltas=True)
        engine.process_many(docs[60:80])
        engine.save_delta_checkpoint(tmp_path)
        _, merged = read_checkpoint(tmp_path)
        assert merged == engine.snapshot()


class TestShardedChains:
    CUTS = (60, 110, 160)

    @pytest.mark.parametrize("checkpoint_shards,resume_shards",
                             [(1, 1), (2, 2), (2, 4), (4, 1)])
    def test_serial_chain_resumes_bit_identical(
        self, docs, reference, tmp_path, checkpoint_shards, resume_shards
    ):
        with ShardedEnBlogue(config(), num_shards=checkpoint_shards,
                             backend="serial", chunk_size=7) as engine:
            cut = drive_chain(engine, docs, tmp_path, self.CUTS)
            _, merged = read_checkpoint(tmp_path)
            assert merged == engine.snapshot()
        resumed, _ = load_engine(tmp_path, num_shards=resume_shards)
        with resumed:
            resumed.process_many(docs[cut:])
            assert signature(resumed) == reference

    def test_process_backend_chain_resumes_resharded(
        self, docs, reference, tmp_path
    ):
        with ShardedEnBlogue(config(), num_shards=2,
                             backend=ProcessBackend(start_method="fork"),
                             chunk_size=7) as engine:
            cut = drive_chain(engine, docs, tmp_path, self.CUTS)
            _, merged = read_checkpoint(tmp_path)
            assert merged == engine.snapshot()
        resumed, _ = load_engine(
            tmp_path, num_shards=4,
            backend=ProcessBackend(start_method="fork"),
        )
        with resumed:
            resumed.process_many(docs[cut:])
            assert signature(resumed) == reference

    def test_chain_spanning_a_reshard_resumes_bit_identical(
        self, docs, reference, tmp_path
    ):
        # Chain A written by 2 shards, resumed into 4 (compaction +
        # re-partition), chain B written by the 4-shard engine, resumed
        # into 1 — the delta format composes with re-sharding end to end.
        with ShardedEnBlogue(config(), num_shards=2, backend="serial",
                             chunk_size=7) as engine:
            drive_chain(engine, docs, tmp_path, (60, 100))
        middle, _ = load_engine(tmp_path, num_shards=4)
        with middle:
            middle.process_many(docs[100:140])
            middle.save_checkpoint(tmp_path, track_deltas=True)
            middle.process_many(docs[140:180])
            middle.save_delta_checkpoint(tmp_path)
        final, _ = load_engine(tmp_path, num_shards=1)
        with final:
            final.process_many(docs[180:])
            assert signature(final) == reference


class TestCoordinatorTagInterning:
    """The coordinator's tag events use a per-delta string table.

    Sharded deltas reference every tag by index into one ``tags`` table
    (version 2 of the ``sharded-enblogue-delta`` payload) — the same lean
    encoding the tracker uses for its events — so a cadence tick's
    coordinator segment is sized by the *distinct* tags in the window,
    not by every document repeating its tag strings.
    """

    def test_tag_events_reference_the_string_table(self, docs, tmp_path):
        with ShardedEnBlogue(config(), num_shards=2, backend="serial",
                             chunk_size=7) as engine:
            engine.process_many(docs[:60])
            engine.save_checkpoint(tmp_path, track_deltas=True)
            engine.process_many(docs[60:140])
            delta = engine.delta_since(2)
        assert delta["version"] == 2
        assert delta["tag_events"], "the window of docs must append events"
        table = delta["tags"]
        assert all(isinstance(tag, str) for tag in table)
        assert len(set(table)) == len(table)  # each tag interned once
        for _timestamp, indices in delta["tag_events"]:
            assert all(isinstance(index, int) for index in indices)
            assert all(0 <= index < len(table) for index in indices)

    def test_size_regression_vs_raw_string_encoding(self, docs, tmp_path):
        import json

        with ShardedEnBlogue(config(), num_shards=2, backend="serial",
                             chunk_size=7) as engine:
            engine.process_many(docs[:60])
            engine.save_checkpoint(tmp_path, track_deltas=True)
            engine.process_many(docs[60:140])
            delta = engine.delta_since(2)
        table = delta["tags"]
        raw_events = [
            [timestamp, [table[index] for index in indices]]
            for timestamp, indices in delta["tag_events"]
        ]
        interned_bytes = len(json.dumps(
            {"tags": table, "tag_events": delta["tag_events"]}
        ).encode())
        raw_bytes = len(json.dumps({"tag_events": raw_events}).encode())
        # The pin: interning must actually shrink the coordinator events
        # (each distinct tag is paid once, every reference is an index).
        assert interned_bytes < raw_bytes

    def test_version_1_journals_are_rejected_not_misread(self, docs, tmp_path):
        from repro.persistence.delta import apply_engine_delta
        from repro.persistence.snapshot import SnapshotVersionError

        with ShardedEnBlogue(config(), num_shards=2, backend="serial",
                             chunk_size=7) as engine:
            engine.process_many(docs[:60])
            base = engine.snapshot()
            engine.save_checkpoint(tmp_path, track_deltas=True)
            engine.process_many(docs[60:100])
            delta = engine.delta_since(2)
        legacy = dict(delta)
        legacy["version"] = 1  # a pre-interning journal's envelope
        with pytest.raises(SnapshotVersionError):
            apply_engine_delta(base, legacy)

    def test_interned_delta_still_folds_bit_identically(self, docs, tmp_path):
        # Belt over the chain suites: the fold of an interned delta
        # reproduces snapshot() exactly through the public reader.
        with ShardedEnBlogue(config(), num_shards=2, backend="serial",
                             chunk_size=7) as engine:
            engine.process_many(docs[:60])
            engine.save_checkpoint(tmp_path, track_deltas=True)
            engine.process_many(docs[60:140])
            engine.save_delta_checkpoint(tmp_path)
            _, merged = read_checkpoint(tmp_path)
            assert merged == engine.snapshot()
